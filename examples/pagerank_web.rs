//! Distributed PageRank over InfiniBand with the communication aggregator.
//!
//! PageRank is the paper's bandwidth-bound application: every relaxation
//! pushes contributions along every edge, and on an 8-node InfiniBand
//! cluster those fine-grained messages would drown in per-message
//! overhead. The aggregator bundles them per destination; this example
//! contrasts eager (WAIT_TIME = 4) and batched (WAIT_TIME = 32) modes
//! against unaggregated sends.
//!
//! ```bash
//! cargo run --release --example pagerank_web
//! ```

use std::sync::Arc;

use atos::apps::pagerank::run_pagerank;
use atos::core::{AtosConfig, CommMode};
use atos::graph::generators::rmat;
use atos::graph::partition::Partition;
use atos::graph::reference;
use atos::sim::Fabric;

const ALPHA: f64 = 0.85;
const EPS: f64 = 1e-6;

fn main() {
    // A web-crawl-like scale-free graph.
    let graph = Arc::new(rmat(15, 500_000, (0.6, 0.19, 0.16, 0.05), 3));
    let partition = Arc::new(Partition::bfs_grow(&graph, 8, 1));
    println!(
        "web graph: {} vertices, {} edges on 8 IB-connected nodes (edge cut {:.1}%)",
        graph.n_vertices(),
        graph.n_edges(),
        partition.edge_cut(&graph) * 100.0
    );

    let reference_rank = reference::pagerank_push(&graph, ALPHA, EPS).rank;

    let configs: [(&str, AtosConfig); 3] = [
        (
            "unaggregated (32-task messages)",
            AtosConfig {
                comm: CommMode::Direct { group: 32 },
                ..AtosConfig::ib_pagerank()
            },
        ),
        (
            "aggregator, eager (WAIT_TIME=4)",
            AtosConfig {
                comm: CommMode::Aggregated {
                    batch_bytes: 1 << 20,
                    wait_time: 4,
                },
                ..AtosConfig::ib_pagerank()
            },
        ),
        ("aggregator, batched (WAIT_TIME=32)", AtosConfig::ib_pagerank()),
    ];

    println!(
        "\n{:<38}{:>12}{:>12}{:>16}{:>14}",
        "communication mode", "time (ms)", "messages", "mean msg bytes", "wire MB"
    );
    for (name, cfg) in configs {
        let run = run_pagerank(
            graph.clone(),
            partition.clone(),
            ALPHA,
            EPS,
            Fabric::ib_cluster(8),
            cfg,
        );
        // Every mode converges to the same ranks.
        let err = reference::rank_l1(&run.rank, &reference_rank) / graph.n_vertices() as f64;
        assert!(err < 1e-3, "per-vertex L1 {err}");
        println!(
            "{:<38}{:>12.3}{:>12}{:>16.0}{:>14.2}",
            name,
            run.stats.elapsed_ms(),
            run.stats.messages,
            run.stats.mean_message_bytes(),
            run.stats.wire_bytes as f64 / 1e6
        );
    }

    println!("\nAggregation trades message latency for bandwidth: the batched");
    println!("mode sends orders of magnitude fewer, larger messages — the right");
    println!("trade for bandwidth-bound PageRank (the paper uses WAIT_TIME=32).");
}
