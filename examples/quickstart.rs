//! Quickstart: run asynchronous BFS on a 4-GPU NVLink system in a few
//! lines, and check the result against a serial reference.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use atos::apps::bfs::run_bfs;
use atos::core::AtosConfig;
use atos::graph::generators::rmat;
use atos::graph::partition::Partition;
use atos::graph::reference;
use atos::sim::Fabric;

fn main() {
    // 1. A scale-free graph: 2^14 vertices, 300k edges.
    let graph = Arc::new(rmat(14, 300_000, (0.57, 0.19, 0.19, 0.05), 7));
    let source = (0..graph.n_vertices() as u32)
        .max_by_key(|&v| graph.degree(v))
        .unwrap();

    // 2. Partition it across 4 GPUs (METIS-like BFS-grown min-cut).
    let partition = Arc::new(Partition::bfs_grow(&graph, 4, 1));
    println!(
        "graph: {} vertices, {} edges; edge cut {:.1}%",
        graph.n_vertices(),
        graph.n_edges(),
        partition.edge_cut(&graph) * 100.0
    );

    // 3. Run Atos BFS on the DGX-Station NVLink topology with the paper's
    //    standard-queue + persistent-kernel configuration.
    let run = run_bfs(
        graph.clone(),
        partition,
        source,
        Fabric::daisy(4),
        AtosConfig::standard_persistent(),
    );

    // 4. Inspect the results.
    println!("virtual runtime: {:.3} ms", run.stats.elapsed_ms());
    println!(
        "visited {} vertices ({} reachable): normalized workload {:.3}",
        run.stats.total_tasks(),
        run.reachable,
        run.normalized_workload()
    );
    println!(
        "communication: {} messages, {} payload bytes, mean {:.0} B/message",
        run.stats.messages,
        run.stats.payload_bytes,
        run.stats.mean_message_bytes()
    );

    // 5. Asynchronous execution converges to exact shortest depths.
    let want = reference::bfs(&graph, source);
    assert_eq!(run.depth, want, "depths match the serial reference");
    println!("depths verified against serial BFS ✓");
}
