//! Road-network BFS: the paper's latency-bound scenario.
//!
//! High-diameter mesh graphs starve level-synchronous frameworks: thousands
//! of thin frontiers mean thousands of kernel launches and synchronizations.
//! This example traverses a road network on 4 NVLink GPUs with the four
//! Table II schedulers and prints the runtime, workload, and traffic
//! burstiness of each.
//!
//! ```bash
//! cargo run --release --example bfs_road
//! ```

use std::sync::Arc;

use atos::apps::bfs::run_bfs;
use atos::baselines::{bsp_bfs, groute_bfs};
use atos::core::AtosConfig;
use atos::graph::generators::road_network;
use atos::graph::partition::Partition;
use atos::graph::reference;
use atos::graph::stats::estimate_diameter;
use atos::sim::Fabric;

fn main() {
    let graph = Arc::new(road_network(256, 256, 5));
    let source = 0u32;
    let partition = Arc::new(Partition::bfs_grow(&graph, 4, 9));
    println!(
        "road network: {} vertices, {} edges, diameter ≈ {}, edge cut {:.2}%",
        graph.n_vertices(),
        graph.n_edges(),
        estimate_diameter(&graph),
        partition.edge_cut(&graph) * 100.0
    );

    let want = reference::bfs(&graph, source);
    println!(
        "\n{:<42}{:>12}{:>12}{:>14}{:>12}",
        "scheduler", "time (ms)", "kernels", "messages", "burstiness"
    );

    // Gunrock-like BSP.
    let bsp = bsp_bfs(graph.clone(), partition.clone(), source, Fabric::daisy(4));
    assert_eq!(bsp.depth, want);
    print_row("Gunrock-like (BSP)", &bsp.stats);

    // Groute-like (async, CPU control path).
    let groute = groute_bfs(graph.clone(), partition.clone(), source, Fabric::daisy(4));
    assert_eq!(groute.depth, want);
    print_row("Groute-like (async, CPU control)", &groute.stats);

    // Atos, both configurations.
    for cfg in [
        AtosConfig::standard_persistent(),
        AtosConfig::priority_discrete(),
    ] {
        let run = run_bfs(
            graph.clone(),
            partition.clone(),
            source,
            Fabric::daisy(4),
            cfg,
        );
        assert_eq!(run.depth, want);
        print_row(&cfg.label(), &run.stats);
    }

    println!(
        "\nAll four schedulers produced identical depths; the persistent-kernel"
    );
    println!("Atos configuration wins because the mesh's {} levels never pay a", estimate_diameter(&graph));
    println!("kernel launch, and its one-sided pushes cross GPU boundaries at");
    println!("NVLink latency instead of a CPU round trip.");
}

fn print_row(name: &str, stats: &atos::core::RunStats) {
    println!(
        "{:<42}{:>12.3}{:>12}{:>14}{:>12}",
        name,
        stats.elapsed_ms(),
        stats.steps_per_pe.iter().sum::<u64>(),
        stats.messages,
        stats
            .burstiness
            .map(|b| format!("{b:.2}"))
            .unwrap_or_else(|| "-".into())
    );
}
