//! Delta-stepping SSSP: the priority queue earning its keep.
//!
//! The paper's `DistributedPriorityQueues` (threshold + threshold_delta)
//! is delta-stepping's bucket structure. This example sweeps the bucket
//! width Δ for shortest paths on a weighted road network and shows the
//! classic trade-off the priority queue controls: small Δ approaches
//! Dijkstra's work efficiency but exposes little parallelism; large Δ
//! (or FIFO scheduling) floods the machine with speculative relaxations.
//!
//! ```bash
//! cargo run --release --example sssp_delta
//! ```

use std::sync::Arc;

use atos::apps::sssp::run_sssp;
use atos::core::{AtosConfig, KernelMode, QueueMode};
use atos::graph::generators::road_network;
use atos::graph::partition::Partition;
use atos::graph::weights::{dijkstra, EdgeWeights};
use atos::sim::Fabric;

fn main() {
    let graph = Arc::new(road_network(192, 192, 8));
    let weights = Arc::new(EdgeWeights::random(&graph, 64, 3));
    let partition = Arc::new(Partition::bfs_grow(&graph, 4, 2));
    let source = 0u32;
    println!(
        "weighted road network: {} vertices, {} edges, weights 1..={}",
        graph.n_vertices(),
        graph.n_edges(),
        weights.max()
    );

    let exact = dijkstra(&graph, &weights, source);

    println!(
        "\n{:<28}{:>12}{:>16}{:>16}",
        "scheduler", "time (ms)", "relaxations", "work efficiency"
    );
    // FIFO baseline.
    let fifo = run_sssp(
        graph.clone(),
        weights.clone(),
        partition.clone(),
        source,
        1,
        Fabric::daisy(4),
        AtosConfig::standard_persistent(),
    );
    assert_eq!(fifo.dist, exact);
    println!(
        "{:<28}{:>12.3}{:>16}{:>16.3}",
        "FIFO (standard queue)",
        fifo.stats.elapsed_ms(),
        fifo.stats.total_tasks(),
        fifo.work_efficiency()
    );

    // Priority queue across a sweep of Δ.
    for delta in [1u64, 4, 16, 64, 256, 1024] {
        let cfg = AtosConfig {
            kernel: KernelMode::Discrete,
            queue: QueueMode::Priority {
                threshold: 1,
                threshold_delta: 1,
            },
            ..AtosConfig::standard_persistent()
        };
        let run = run_sssp(
            graph.clone(),
            weights.clone(),
            partition.clone(),
            source,
            delta,
            Fabric::daisy(4),
            cfg,
        );
        assert_eq!(run.dist, exact, "delta={delta}");
        println!(
            "{:<28}{:>12.3}{:>16}{:>16.3}",
            format!("priority, delta = {delta}"),
            run.stats.elapsed_ms(),
            run.stats.total_tasks(),
            run.work_efficiency()
        );
    }

    println!("\nAll schedules produce exact Dijkstra distances; the priority");
    println!("queue trades speculation (relaxations above the ideal 1.0) against");
    println!("bucket-level parallelism — the knob the paper's distributed");
    println!("priority queue exposes as threshold_delta.");
}
