//! Host-side stress of the paper's concurrent queue (real threads, real
//! atomics — no simulation).
//!
//! Spawns producers and consumers against the counter-publication queue,
//! then prints a Figure 1-style side-by-side of all five queue
//! configurations under the pop-and-push workload.
//!
//! ```bash
//! cargo run --release --example queue_stress
//! ```

use std::sync::Arc;
use std::time::Instant;

use atos::queue::sync::{AtomicU64, Ordering};

use atos::queue::bench_harness::{run, Experiment, QueueKind};
use atos::queue::counter::CounterQueue;
use atos::queue::PopState;

fn main() {
    // Part 1: a hand-rolled producer/consumer pipeline on the counter
    // queue, checking conservation under real contention.
    let producers = 4;
    let consumers = 4;
    let per = 250_000u64;
    let q: Arc<CounterQueue<u64>> =
        Arc::new(CounterQueue::with_capacity((producers * per) as usize));
    let consumed = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..producers {
            let q = Arc::clone(&q);
            s.spawn(move || {
                let mut group = [0u64; 32];
                let mut i = 0;
                while i < per {
                    let n = 32.min((per - i) as usize);
                    for (k, g) in group[..n].iter_mut().enumerate() {
                        *g = t * per + i + k as u64;
                    }
                    q.push_group(&group[..n]).expect("sized for workload");
                    i += n as u64;
                }
            });
        }
        for _ in 0..consumers {
            let q = Arc::clone(&q);
            let consumed = Arc::clone(&consumed);
            let checksum = Arc::clone(&checksum);
            s.spawn(move || {
                let goal = producers * per;
                let mut h = PopState::new();
                let mut buf = Vec::with_capacity(64);
                let mut local_sum = 0u64;
                let mut local_count = 0u64;
                loop {
                    buf.clear();
                    let got = q.pop_group(&mut h, 64, &mut buf);
                    if got == 0 {
                        if q.published() == goal && q.is_empty() {
                            h.abandon();
                            break;
                        }
                        std::hint::spin_loop();
                        continue;
                    }
                    local_count += got as u64;
                    local_sum = local_sum.wrapping_add(buf.iter().sum::<u64>());
                }
                consumed.fetch_add(local_count, Ordering::Relaxed);
                checksum.fetch_add(local_sum, Ordering::Relaxed);
            });
        }
    });
    let total = producers * per;
    let elapsed = t0.elapsed();
    let expect_sum: u64 = (0..total).sum();
    assert_eq!(consumed.load(Ordering::Relaxed), total);
    assert_eq!(checksum.load(Ordering::Relaxed), expect_sum);
    println!(
        "counter queue: {} items through {}P/{}C in {:.1} ms ({:.1} M items/s), checksum ok",
        total,
        producers,
        consumers,
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64() / 1e6
    );

    // Part 2: Figure 1-style comparison at one contention point.
    let n = 1 << 15;
    println!("\npop-and-push, {n} virtual threads x 10 ops:");
    for kind in QueueKind::ALL {
        let s = run(kind, Experiment::ConcurrentPopPush, n);
        println!("  {:<18}{:>10.3} ms", kind.label(), s.elapsed.as_secs_f64() * 1e3);
    }
}
