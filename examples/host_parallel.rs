//! The Atos model on real threads: host-backend BFS plus the Listing 4
//! `DistributedQueues` launch API.
//!
//! Everything in this example executes with genuine parallelism — shared
//! atomic depth arrays, lock-free counter-publication queues, one-sided
//! pushes into other PEs' receive queues — no simulator involved.
//!
//! ```bash
//! cargo run --release --example host_parallel
//! ```

use std::sync::Arc;

use atos::queue::sync::{AtomicU64, Ordering};

use atos::apps::host_bfs::host_bfs;
use atos::core::DistributedQueues;
use atos::graph::generators::rmat;
use atos::graph::partition::Partition;
use atos::graph::reference;

fn main() {
    // Part 1: parallel BFS through the high-level API.
    let graph = Arc::new(rmat(15, 600_000, (0.57, 0.19, 0.19, 0.05), 4));
    let source = (0..graph.n_vertices() as u32)
        .max_by_key(|&v| graph.degree(v))
        .unwrap();
    let partition = Arc::new(Partition::bfs_grow(&graph, 4, 1));
    println!(
        "host-parallel BFS: {} vertices, {} edges across 4 PEs",
        graph.n_vertices(),
        graph.n_edges()
    );
    let run = host_bfs(graph.clone(), partition, source, None);
    let want = reference::bfs(&graph, source);
    assert_eq!(run.depth, want);
    println!(
        "  wall time {:.2} ms, {} tasks, {} one-sided remote pushes — depths exact ✓",
        run.stats.elapsed.as_secs_f64() * 1e3,
        run.stats.tasks_per_pe.iter().sum::<u64>(),
        run.stats.remote_pushes
    );

    // Part 2: the paper's Listing 4 API directly — a task-parallel
    // Fibonacci-style fan-out where f1 generates work for other PEs.
    let processed = AtomicU64::new(0);
    let queues = DistributedQueues::init(4, 1 << 22, 1 << 22);
    let stats = queues.launch_cta(
        /* persistent */ true,
        /* workers per PE */ 2,
        vec![vec![(20u32, 7u32)], vec![], vec![], vec![]],
        |_pe, (depth, salt), push| {
            processed.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                // Binary fan-out, children hashed to owner PEs.
                for i in 0..2u32 {
                    let child_salt = salt.wrapping_mul(1664525).wrapping_add(i);
                    push.remote((depth - 1, child_salt), (child_salt % 4) as usize);
                }
            }
        },
        |_pe| {},
    );
    let total = processed.load(Ordering::Relaxed);
    println!(
        "\nListing-4 fan-out: {} tasks in {:.2} ms ({} crossed PEs)",
        total,
        stats.elapsed.as_secs_f64() * 1e3,
        stats.remote_pushes
    );
    assert_eq!(total, (1u64 << 21) - 1, "complete binary tree of depth 20");
    println!("binary-tree task count exact ✓");
}
