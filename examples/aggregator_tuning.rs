//! Ablation: sweep the aggregator's BATCH_SIZE and WAIT_TIME for BFS and
//! PageRank on an InfiniBand cluster — the design-space exploration behind
//! the paper's chosen settings (BFS: 1 MiB + WAIT_TIME 4; PageRank: 1 MiB
//! + WAIT_TIME 32).
//!
//! ```bash
//! cargo run --release --example aggregator_tuning
//! ```

use std::sync::Arc;

use atos::apps::bfs::run_bfs;
use atos::apps::pagerank::run_pagerank;
use atos::core::{AtosConfig, CommMode, KernelMode, QueueMode, WorkerConfig};
use atos::graph::generators::{rmat, road_network};
use atos::graph::partition::Partition;
use atos::sim::Fabric;

fn cfg(batch_bytes: u64, wait_time: u32) -> AtosConfig {
    AtosConfig {
        kernel: KernelMode::Persistent,
        queue: QueueMode::Standard,
        worker: WorkerConfig::cta512(),
        comm: CommMode::Aggregated {
            batch_bytes,
            wait_time,
        },
        lb: atos::core::LoadBalance::Owner,
    }
}

fn main() {
    let n_nodes = 8;
    let batches: [u64; 4] = [1 << 14, 1 << 17, 1 << 20, 1 << 23];
    let waits: [u32; 4] = [4, 32, 256, 2048];

    // Latency-bound: BFS on a mesh.
    let mesh = Arc::new(road_network(160, 160, 2));
    let mesh_part = Arc::new(Partition::bfs_grow(&mesh, n_nodes, 1));
    println!(
        "BFS on road mesh ({} vertices) over {n_nodes} IB nodes — ms per (BATCH_SIZE x WAIT_TIME):",
        mesh.n_vertices()
    );
    print!("{:<14}", "batch \\ wait");
    for w in waits {
        print!("{w:>10}");
    }
    println!();
    for b in batches {
        print!("{:<14}", format!("{} KiB", b >> 10));
        for w in waits {
            let run = run_bfs(
                mesh.clone(),
                mesh_part.clone(),
                0,
                Fabric::ib_cluster(n_nodes),
                cfg(b, w),
            );
            print!("{:>10.2}", run.stats.elapsed_ms());
        }
        println!();
    }

    // Bandwidth-bound: PageRank on a scale-free graph.
    let web = Arc::new(rmat(14, 400_000, (0.6, 0.19, 0.16, 0.05), 4));
    let web_part = Arc::new(Partition::bfs_grow(&web, n_nodes, 1));
    println!(
        "\nPageRank on scale-free graph ({} edges) over {n_nodes} IB nodes:",
        web.n_edges()
    );
    print!("{:<14}", "batch \\ wait");
    for w in waits {
        print!("{w:>10}");
    }
    println!();
    for b in batches {
        print!("{:<14}", format!("{} KiB", b >> 10));
        for w in waits {
            let run = run_pagerank(
                web.clone(),
                web_part.clone(),
                0.85,
                1e-6,
                Fabric::ib_cluster(n_nodes),
                cfg(b, w),
            );
            print!("{:>10.2}", run.stats.elapsed_ms());
        }
        println!();
    }

    println!("\nLatency-bound BFS prefers eager flushing (small WAIT_TIME);");
    println!("bandwidth-bound PageRank tolerates batching. The paper's choices");
    println!("(1 MiB + 4 for BFS, 1 MiB + 32 for PR) sit on the knee of each curve.");
}
