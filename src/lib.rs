//! Atos — facade crate re-exporting the workspace.
//!
//! A Rust reproduction of *Scalable Irregular Parallelism with GPUs: Getting
//! CPUs Out of the Way* (SC 2022). See the README and DESIGN.md for the
//! system inventory; each sub-crate carries its own module docs.

#![warn(missing_docs)]

pub use atos_apps as apps;
pub use atos_baselines as baselines;
pub use atos_core as core;
pub use atos_graph as graph;
pub use atos_queue as queue;
pub use atos_sim as sim;
pub use atos_trace as trace;
