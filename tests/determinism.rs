//! Whole-stack determinism: a run is a pure function of its inputs.
//!
//! The DESIGN.md guarantee — (time, sequence)-ordered events, seeded
//! generators — means two identical configurations must produce
//! byte-identical results, and *different* seeds must actually change the
//! inputs.

use std::sync::Arc;

use atos::apps::bfs::run_bfs;
use atos::apps::pagerank::run_pagerank;
use atos::core::AtosConfig;
use atos::graph::generators::{rmat, Preset, Scale};
use atos::graph::partition::Partition;
use atos::sim::Fabric;

#[test]
fn identical_runs_are_bit_identical() {
    let p = Preset::by_name("twitter_s").unwrap();
    let g = Arc::new(p.build(Scale::Tiny));
    let src = p.bfs_source(&g);
    let part = Arc::new(Partition::random(g.n_vertices(), 4, 3));
    let go = |cfg: AtosConfig, fabric: Fabric| run_bfs(g.clone(), part.clone(), src, fabric, cfg);

    for cfg in [
        AtosConfig::standard_persistent(),
        AtosConfig::priority_discrete(),
    ] {
        let a = go(cfg, Fabric::daisy(4));
        let b = go(cfg, Fabric::daisy(4));
        assert_eq!(a.stats.elapsed_ns, b.stats.elapsed_ns);
        assert_eq!(a.stats.messages, b.stats.messages);
        assert_eq!(a.stats.payload_bytes, b.stats.payload_bytes);
        assert_eq!(a.stats.tasks_per_pe, b.stats.tasks_per_pe);
        assert_eq!(a.depth, b.depth);
    }

    let a = go(AtosConfig::ib_bfs(), Fabric::ib_cluster(4));
    let b = go(AtosConfig::ib_bfs(), Fabric::ib_cluster(4));
    assert_eq!(a.stats.elapsed_ns, b.stats.elapsed_ns);
    assert_eq!(a.stats.wire_bytes, b.stats.wire_bytes);
}

#[test]
fn pagerank_runs_are_bit_identical() {
    let g = Arc::new(rmat(9, 4000, (0.57, 0.19, 0.19, 0.05), 1));
    let part = Arc::new(Partition::bfs_grow(&g, 3, 2));
    let go = || {
        run_pagerank(
            g.clone(),
            part.clone(),
            0.85,
            1e-6,
            Fabric::daisy(3),
            AtosConfig::standard_persistent(),
        )
    };
    let a = go();
    let b = go();
    assert_eq!(a.rank, b.rank, "float results identical, not just close");
    assert_eq!(a.stats.elapsed_ns, b.stats.elapsed_ns);
}

#[test]
fn seeds_change_graphs_but_not_invariants() {
    let a = rmat(10, 8000, (0.57, 0.19, 0.19, 0.05), 1);
    let b = rmat(10, 8000, (0.57, 0.19, 0.19, 0.05), 2);
    assert_ne!(a, b, "different seeds → different graphs");
    assert_eq!(a.n_vertices(), b.n_vertices());

    // Partitions are seed-deterministic too.
    let pa = Partition::bfs_grow(&a, 4, 7);
    let pb = Partition::bfs_grow(&a, 4, 7);
    assert_eq!(pa, pb);
    let pc = Partition::bfs_grow(&a, 4, 8);
    assert_ne!(pa, pc);
}

#[test]
fn gpu_count_changes_time_but_not_results() {
    let p = Preset::by_name("hollywood_2009_s").unwrap();
    let g = Arc::new(p.build(Scale::Tiny));
    let src = p.bfs_source(&g);
    let mut depths = Vec::new();
    for n in [1usize, 2, 3, 4] {
        let part = if n == 1 {
            Arc::new(Partition::single(g.n_vertices()))
        } else {
            Arc::new(Partition::bfs_grow(&g, n, 5))
        };
        let run = run_bfs(
            g.clone(),
            part,
            src,
            Fabric::daisy(n),
            AtosConfig::standard_persistent(),
        );
        depths.push(run.depth);
    }
    for d in &depths[1..] {
        assert_eq!(d, &depths[0]);
    }
}
