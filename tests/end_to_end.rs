//! Cross-crate integration: every scheduler, every fabric, same answers.
//!
//! These tests exercise the full stack — generators → partitioners →
//! simulator → runtime/baselines → reference validation — at test scale.

use std::sync::Arc;

use atos::apps::bfs::run_bfs;
use atos::apps::pagerank::run_pagerank;
use atos::baselines::{bsp_bfs, bsp_pagerank, galois_bfs, galois_pagerank, groute_bfs, groute_pagerank};
use atos::core::AtosConfig;
use atos::graph::generators::{Preset, Scale};
use atos::graph::partition::Partition;
use atos::graph::reference;
use atos::sim::Fabric;

const ALPHA: f64 = 0.85;
const EPS: f64 = 1e-6;

/// Every framework on every preset agrees with serial BFS (4 GPUs,
/// NVLink for the single-node frameworks, IB for Galois).
#[test]
fn all_frameworks_agree_on_bfs() {
    for p in Preset::ALL {
        let g = Arc::new(p.build(Scale::Tiny));
        let src = p.bfs_source(&g);
        let part = Arc::new(Partition::bfs_grow(&g, 4, 11));
        let want = reference::bfs(&g, src);

        let gunrock = bsp_bfs(g.clone(), part.clone(), src, Fabric::daisy(4));
        assert_eq!(gunrock.depth, want, "Gunrock {}", p.name);

        let groute = groute_bfs(g.clone(), part.clone(), src, Fabric::daisy(4));
        assert_eq!(groute.depth, want, "Groute {}", p.name);

        let galois = galois_bfs(g.clone(), part.clone(), src, Fabric::ib_cluster(4));
        assert_eq!(galois.depth, want, "Galois {}", p.name);

        for cfg in [
            AtosConfig::standard_persistent(),
            AtosConfig::priority_discrete(),
            AtosConfig::ib_bfs(),
        ] {
            let fabric = match cfg.comm {
                atos::core::CommMode::Aggregated { .. } => Fabric::ib_cluster(4),
                _ => Fabric::daisy(4),
            };
            let run = run_bfs(g.clone(), part.clone(), src, fabric, cfg);
            assert_eq!(run.depth, want, "Atos {:?} {}", cfg.label(), p.name);
        }
    }
}

/// Every framework converges PageRank to the same fixed point.
#[test]
fn all_frameworks_agree_on_pagerank() {
    let p = Preset::by_name("soc-LiveJournal1_s").unwrap();
    let g = Arc::new(p.build(Scale::Tiny));
    let part = Arc::new(Partition::bfs_grow(&g, 4, 12));
    let want = reference::pagerank_push(&g, ALPHA, EPS).rank;
    let n = g.n_vertices() as f64;
    let check = |rank: &[f64], who: &str| {
        let err = reference::rank_l1(rank, &want) / n;
        assert!(err < 1e-3, "{who}: per-vertex L1 {err}");
    };

    check(
        &bsp_pagerank(g.clone(), part.clone(), ALPHA, EPS, Fabric::daisy(4)).rank,
        "Gunrock",
    );
    check(
        &groute_pagerank(g.clone(), part.clone(), ALPHA, EPS, Fabric::daisy(4)).rank,
        "Groute",
    );
    check(
        &galois_pagerank(g.clone(), part.clone(), ALPHA, EPS, Fabric::ib_cluster(4)).rank,
        "Galois",
    );
    check(
        &run_pagerank(
            g.clone(),
            part.clone(),
            ALPHA,
            EPS,
            Fabric::daisy(4),
            AtosConfig::standard_persistent(),
        )
        .rank,
        "Atos persistent",
    );
    check(
        &run_pagerank(
            g.clone(),
            part,
            ALPHA,
            EPS,
            Fabric::ib_cluster(4),
            AtosConfig::ib_pagerank(),
        )
        .rank,
        "Atos IB aggregated",
    );
}

/// The paper's headline qualitative results hold at test scale.
#[test]
fn paper_shapes_hold() {
    // 1. Mesh BFS: Atos-persistent beats the BSP baseline badly.
    let p = Preset::by_name("osm_eur_s").unwrap();
    let g = Arc::new(p.build(Scale::Tiny));
    let src = p.bfs_source(&g);
    let part = Arc::new(Partition::bfs_grow(&g, 4, 1));
    let bsp = bsp_bfs(g.clone(), part.clone(), src, Fabric::daisy(4));
    let atos = run_bfs(
        g.clone(),
        part.clone(),
        src,
        Fabric::daisy(4),
        AtosConfig::standard_persistent(),
    );
    assert!(
        atos.stats.elapsed_ns * 3 < bsp.stats.elapsed_ns,
        "mesh: Atos {} ms vs BSP {} ms",
        atos.stats.elapsed_ms(),
        bsp.stats.elapsed_ms()
    );

    // 2. Gunrock anti-scales on mesh BFS; Atos does not degrade as much.
    let single = Arc::new(Partition::single(g.n_vertices()));
    let bsp1 = bsp_bfs(g.clone(), single.clone(), src, Fabric::daisy(1));
    assert!(
        bsp.stats.elapsed_ns > bsp1.stats.elapsed_ns,
        "BSP should slow down with more GPUs on mesh"
    );

    // 3. Atos communication is smoother (less bursty) than BSP's.
    if let (Some(ba), Some(bb)) = (atos.stats.burstiness, bsp.stats.burstiness) {
        assert!(ba < bb, "Atos burstiness {ba} vs BSP {bb}");
    }

    // 4. On IB, Galois pays for bulk rounds: slower than Atos on mesh.
    let galois = galois_bfs(g.clone(), part.clone(), src, Fabric::ib_cluster(4));
    let atos_ib = run_bfs(
        g.clone(),
        part,
        src,
        Fabric::ib_cluster(4),
        AtosConfig::ib_bfs(),
    );
    assert!(
        atos_ib.stats.elapsed_ns < galois.stats.elapsed_ns,
        "IB mesh: Atos {} ms vs Galois {} ms",
        atos_ib.stats.elapsed_ms(),
        galois.stats.elapsed_ms()
    );
}

/// Facade re-exports are usable as documented in the README.
#[test]
fn facade_paths_compile_and_run() {
    let g = Arc::new(atos::graph::generators::grid_2d(8, 8));
    let part = Arc::new(atos::graph::Partition::single(g.n_vertices()));
    let run = atos::apps::bfs::run_bfs(
        g,
        part,
        0,
        atos::sim::Fabric::daisy(1),
        atos::core::AtosConfig::standard_persistent(),
    );
    assert_eq!(run.reachable, 64);
}
