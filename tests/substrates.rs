//! Integration tests for the supporting substrates through the facade:
//! file IO round trips, distributed sharding, weighted SSSP on the
//! simulator, CC on InfiniBand, and the host backend via the facade.

use std::sync::Arc;

use atos::apps::cc::run_cc;
use atos::apps::host_bfs::host_bfs;
use atos::apps::sssp::run_sssp;
use atos::core::AtosConfig;
use atos::graph::distributed::DistGraph;
use atos::graph::generators::{road_network, rmat, Preset, Scale};
use atos::graph::io::{read_matrix_market, write_dimacs, write_matrix_market, read_dimacs};
use atos::graph::partition::Partition;
use atos::graph::weights::{connected_components, dijkstra, EdgeWeights};
use atos::graph::reference;
use atos::sim::Fabric;

#[test]
fn io_roundtrip_through_files() {
    let g = rmat(9, 3000, (0.57, 0.19, 0.19, 0.05), 12);
    let dir = std::env::temp_dir().join("atos-io-test");
    std::fs::create_dir_all(&dir).unwrap();

    let mm = dir.join("graph.mtx");
    write_matrix_market(&g, std::fs::File::create(&mm).unwrap()).unwrap();
    let back = read_matrix_market(std::fs::File::open(&mm).unwrap()).unwrap();
    assert_eq!(back, g);

    let gr = dir.join("graph.gr");
    write_dimacs(&g, std::fs::File::create(&gr).unwrap()).unwrap();
    let back = read_dimacs(std::fs::File::open(&gr).unwrap()).unwrap();
    assert_eq!(back, g);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn imported_graph_runs_the_full_pipeline() {
    // Export a preset, reimport it, shard it, BFS it on the simulator and
    // on the host backend — all answers agree.
    let p = Preset::by_name("hollywood_2009_s").unwrap();
    let g0 = p.build(Scale::Tiny);
    let mut buf = Vec::new();
    write_matrix_market(&g0, &mut buf).unwrap();
    let g = Arc::new(read_matrix_market(&buf[..]).unwrap());
    assert_eq!(*g, g0);

    let part = Arc::new(Partition::bfs_grow(&g, 3, 4));
    let dist = DistGraph::build(&g, &part);
    assert!(dist.validate_against(&g, &part));

    let src = p.bfs_source(&g);
    let want = reference::bfs(&g, src);
    let sim = atos::apps::bfs::run_bfs(
        g.clone(),
        part.clone(),
        src,
        Fabric::daisy(3),
        AtosConfig::standard_persistent(),
    );
    assert_eq!(sim.depth, want);
    let host = host_bfs(g, part, src, None);
    assert_eq!(host.depth, want);
}

#[test]
fn weighted_sssp_on_ib_with_aggregator() {
    let g = Arc::new(road_network(40, 40, 6));
    let w = Arc::new(EdgeWeights::random(&g, 32, 2));
    let part = Arc::new(Partition::block(g.n_vertices(), 4));
    let run = run_sssp(
        g.clone(),
        w.clone(),
        part,
        0,
        8,
        Fabric::ib_cluster(4),
        AtosConfig::ib_bfs(),
    );
    assert_eq!(run.dist, dijkstra(&g, &w, 0));
    assert!(run.stats.messages > 0, "aggregated bundles flowed");
}

#[test]
fn cc_on_ib_cluster() {
    let p = Preset::by_name("soc-LiveJournal1_s").unwrap();
    let g = Arc::new(p.build(Scale::Tiny).symmetrize());
    let part = Arc::new(Partition::random(g.n_vertices(), 6, 3));
    let run = run_cc(
        g.clone(),
        part,
        Fabric::ib_cluster(6),
        AtosConfig::ib_bfs(),
    );
    assert_eq!(run.label, connected_components(&g));
}

#[test]
fn worker_cost_models_order_correctly() {
    use atos::core::{WorkerConfig, WorkerSize};
    let thread = WorkerConfig {
        size: WorkerSize::Thread,
        fetch: 1,
        num_workers: 160,
    }
    .cost_model();
    let warp = WorkerConfig {
        size: WorkerSize::Warp,
        fetch: 32,
        num_workers: 160,
    }
    .cost_model();
    let cta = WorkerConfig::cta512().cost_model();
    assert!(thread.edge_ns > warp.edge_ns);
    assert!(warp.edge_ns > cta.edge_ns);
}
