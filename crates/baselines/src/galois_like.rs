//! Galois/Gluon-like bulk-asynchronous baseline.
//!
//! Galois's distributed-GPU execution (D-Galois with the Gluon
//! communication substrate) is *bulk-asynchronous*: each host/GPU drains
//! its available worklist in rounds, then Gluon synchronizes the boundary
//! state — for every peer, it ships update metadata (which masters/mirrors
//! changed, as bitvectors and offset arrays) plus the values themselves,
//! all orchestrated by the CPU. The paper (Table V discussion): "The
//! primary difference between Galois and Atos is much more communication
//! overhead for Galois, which reduces its ability to fully utilize all
//! communication bandwidth."
//!
//! Model on the shared runtime: discrete kernels (one per round), CPU
//! control path, one bulk payload per destination per round, plus a
//! per-round metadata broadcast proportional to the owned vertex range —
//! the per-round, per-peer cost that makes Galois *slower* with more GPUs
//! on latency-bound inputs (Table V BFS road_usa: 4.4 s on 1 GPU,
//! 65 s on 8).
//!
//! Per the artifact appendix we compare against Galois's push-BFS and
//! push-PageRank lonestar-distributed variants, so the algorithms are the
//! same as Atos's; only the framework differs.

use std::sync::Arc;

use atos_apps::bfs::{BfsApp, BfsRun};
use atos_apps::pagerank::{PageRankApp, PageRankRun, PrTask};
use atos_core::{AtosConfig, CommMode, KernelMode, QueueMode, Runtime, RuntimeTuning, WorkerConfig};
use atos_graph::csr::{Csr, VertexId};
use atos_graph::partition::Partition;
use atos_sim::{ControlPath, Fabric, GpuCostModel};

fn galois_config() -> AtosConfig {
    AtosConfig {
        // One discrete kernel per bulk-asynchronous round.
        kernel: KernelMode::Discrete,
        queue: QueueMode::Standard,
        worker: WorkerConfig::cta512(),
        // One bulk message per destination per round.
        comm: CommMode::Direct { group: usize::MAX },
        lb: atos_core::LoadBalance::Owner,
    }
}

fn galois_tuning(graph: &Csr, _n_pes: usize) -> RuntimeTuning {
    // Gluon per-round metadata: bitvectors and offset arrays over the
    // masters+mirrors id space (which spans the whole graph under the
    // random/edge-cut partitions used here), packed and unpacked on the
    // host. ~n/8 bytes per peer per communicating round, at a host
    // serialization throughput of ~60 MB/s effective (pack + MPI stack +
    // unpack), which is the measured Gluon overhead regime.
    RuntimeTuning {
        control: ControlPath::cpu_mediated(),
        in_kernel_comm: false,
        round_metadata_bytes: (graph.n_vertices() as u64 / 8).max(64),
        metadata_cpu_ns_per_byte: 16.0,
    }
}

/// Galois-like bulk-asynchronous push BFS.
pub fn galois_bfs(
    graph: Arc<Csr>,
    partition: Arc<Partition>,
    source: VertexId,
    fabric: Fabric,
) -> BfsRun {
    assert_eq!(partition.n_parts(), fabric.n_pes());
    let tuning = galois_tuning(&graph, fabric.n_pes());
    let app = BfsApp::new(graph, partition.clone(), source);
    let mut rt = Runtime::with_tuning(app, fabric, galois_config(), GpuCostModel::v100(), tuning);
    rt.seed(partition.owner(source), [(source, 0u32)]);
    let stats = rt.run();
    let app = rt.into_app();
    let reachable = app.reached() as u64;
    BfsRun {
        stats,
        depth: app.depth,
        reachable,
    }
}

/// Galois-like bulk-asynchronous push PageRank.
pub fn galois_pagerank(
    graph: Arc<Csr>,
    partition: Arc<Partition>,
    alpha: f64,
    epsilon: f64,
    fabric: Fabric,
) -> PageRankRun {
    assert_eq!(partition.n_parts(), fabric.n_pes());
    let tuning = galois_tuning(&graph, fabric.n_pes());
    let app = PageRankApp::new(graph, partition.clone(), alpha, epsilon);
    let mut rt = Runtime::with_tuning(app, fabric, galois_config(), GpuCostModel::v100(), tuning);
    for pe in 0..partition.n_parts() {
        let seeds: Vec<PrTask> = partition
            .vertices_of(pe)
            .into_iter()
            .map(PrTask::Relax)
            .collect();
        rt.seed(pe, seeds);
    }
    let stats = rt.run();
    let relaxations = stats.total_tasks();
    let app = rt.into_app();
    PageRankRun {
        stats,
        rank: app.rank,
        relaxations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atos_apps::bfs::run_bfs;
    use atos_apps::pagerank::run_pagerank;
    use atos_graph::generators::{Preset, Scale};
    use atos_graph::reference;

    #[test]
    fn galois_bfs_matches_reference() {
        for p in Preset::ALL {
            let g = Arc::new(p.build(Scale::Tiny));
            let src = p.bfs_source(&g);
            let part = Arc::new(Partition::random(g.n_vertices(), 4, 6));
            let run = galois_bfs(g.clone(), part, src, Fabric::ib_cluster(4));
            assert_eq!(run.depth, reference::bfs(&g, src), "{}", p.name);
        }
    }

    #[test]
    fn galois_pagerank_matches_reference() {
        let p = Preset::by_name("hollywood_2009_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        let part = Arc::new(Partition::random(g.n_vertices(), 4, 2));
        let run = galois_pagerank(g.clone(), part, 0.85, 1e-6, Fabric::ib_cluster(4));
        let want = reference::pagerank_push(&g, 0.85, 1e-6).rank;
        let per_vertex = reference::rank_l1(&run.rank, &want) / g.n_vertices() as f64;
        assert!(per_vertex < 1e-3, "per-vertex L1 {per_vertex}");
    }

    #[test]
    fn atos_beats_galois_on_ib(){
        // Table V: Atos wins on every dataset, hugely on mesh.
        let p = Preset::by_name("road_usa_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        let src = p.bfs_source(&g);
        let part = Arc::new(Partition::bfs_grow(&g, 4, 1));
        let atos = run_bfs(
            g.clone(),
            part.clone(),
            src,
            Fabric::ib_cluster(4),
            AtosConfig::ib_bfs(),
        );
        let galois = galois_bfs(g, part, src, Fabric::ib_cluster(4));
        assert_eq!(atos.depth, galois.depth);
        assert!(
            galois.stats.elapsed_ns > 3 * atos.stats.elapsed_ns,
            "Atos {} ms vs Galois {} ms",
            atos.stats.elapsed_ms(),
            galois.stats.elapsed_ms()
        );
    }

    #[test]
    fn galois_pagerank_loses_to_atos_on_ib() {
        let p = Preset::by_name("soc-LiveJournal1_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        let part = Arc::new(Partition::random(g.n_vertices(), 4, 3));
        let atos = run_pagerank(
            g.clone(),
            part.clone(),
            0.85,
            1e-6,
            Fabric::ib_cluster(4),
            AtosConfig::ib_pagerank(),
        );
        let galois = galois_pagerank(g, part, 0.85, 1e-6, Fabric::ib_cluster(4));
        assert!(
            galois.stats.elapsed_ns > atos.stats.elapsed_ns,
            "Atos {} ms vs Galois {} ms",
            atos.stats.elapsed_ms(),
            galois.stats.elapsed_ms()
        );
    }

    #[test]
    fn galois_metadata_inflates_traffic() {
        let p = Preset::by_name("road_usa_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        let src = p.bfs_source(&g);
        let part = Arc::new(Partition::bfs_grow(&g, 4, 1));
        let atos = run_bfs(
            g.clone(),
            part.clone(),
            src,
            Fabric::ib_cluster(4),
            AtosConfig::ib_bfs(),
        );
        let galois = galois_bfs(g, part, src, Fabric::ib_cluster(4));
        assert!(galois.stats.payload_bytes > atos.stats.payload_bytes);
    }
}
