//! Baseline frameworks, modeled on the same simulator and cost constants
//! as Atos so that every measured difference is a *framework* difference.
//!
//! The paper compares against three systems; each is reproduced as the
//! scheduling discipline the paper attributes its behavior to:
//!
//! * [`bsp`] — **Gunrock-like**: level-synchronous BSP. Per iteration:
//!   advance + filter kernels on every GPU, a CPU-side barrier, then a
//!   bulk all-to-all exchange through the CPU control path. Suffers kernel
//!   launch overhead × diameter on mesh graphs and bursty communication
//!   everywhere.
//! * [`groute_like`] — **Groute-like**: the *same asynchronous algorithm
//!   as Atos* (the paper: "Groute and Atos use the same algorithm ... so
//!   these factors do not contribute") running on the Atos runtime, but
//!   with the two framework properties Groute actually has: a CPU-mediated
//!   communication control path and kernel-boundary (not in-kernel)
//!   communication over medium-grained fragments.
//! * [`galois_like`] — **Galois/Gluon-like**: bulk-asynchronous rounds —
//!   each round drains the available worklist, then synchronizes boundary
//!   state in bulk through Gluon, which broadcasts per-round update
//!   metadata (bitvectors) to every peer over the CPU control path. This
//!   per-round, per-peer overhead is what makes Galois anti-scale in
//!   Table V.

#![warn(missing_docs)]

pub mod bsp;
pub mod galois_like;
pub mod groute_like;

pub use bsp::{bsp_bfs, bsp_pagerank, BspRun};
pub use galois_like::{galois_bfs, galois_pagerank};
pub use groute_like::{groute_bfs, groute_pagerank};
