//! Gunrock-like bulk-synchronous scheduler.
//!
//! The traditional multi-GPU formulation from the paper's Listing 1: per
//! iteration, every GPU launches a kernel over its frontier, the host
//! synchronizes the stream, remote updates are exchanged in bulk
//! (CPU-mediated), and a merge step folds received updates into the next
//! frontier. The clock is advanced with the same
//! [`GpuCostModel`] used by Atos; the only differences are
//! the framework's own: kernel-boundary synchronization, bursty bulk
//! exchange, and a CPU control path.
//!
//! Per iteration we charge **two kernel cycles** (Gunrock's advance +
//! filter operator pair) plus one more when a merge of received updates
//! is needed.

use std::sync::Arc;

use atos_core::RunStats;
use atos_graph::csr::{Csr, VertexId};
use atos_graph::partition::Partition;
use atos_graph::reference::UNREACHED;
use atos_sim::{ControlPath, Fabric, GpuCostModel, PeId, Time};

/// Result of a BSP run.
#[derive(Debug, Clone)]
pub struct BspRun {
    /// Runtime measurements (tables report `elapsed_ms`).
    pub stats: RunStats,
    /// BFS: final depths. PageRank: unset.
    pub depth: Vec<u32>,
    /// PageRank: final ranks. BFS: unset.
    pub rank: Vec<f64>,
    /// BSP iterations (≈ diameter for BFS).
    pub iterations: u32,
}

struct BspClock {
    fabric: Fabric,
    cost: GpuCostModel,
    control: ControlPath,
    clock: Time,
    stats: RunStats,
}

impl BspClock {
    fn new(fabric: Fabric, cost: GpuCostModel) -> Self {
        let n = fabric.n_pes();
        BspClock {
            fabric,
            cost,
            control: ControlPath::cpu_mediated(),
            clock: 0,
            stats: RunStats::new(n),
        }
    }

    /// Charge one compute phase: every PE runs `kernels` kernel cycles
    /// plus its batch time; the barrier waits for the slowest.
    fn compute_phase(&mut self, per_pe: &[(usize, u64, u64)], kernels: u32) {
        let mut t_end = self.clock;
        for (pe, &(tasks, edges, span)) in per_pe.iter().enumerate() {
            if tasks == 0 {
                continue;
            }
            // Big levels keep every worker busy, so hubs pipeline (same
            // saturation rule the Atos runtime uses).
            let saturated = tasks >= 4 * self.cost.resident_workers;
            let busy = self.cost.step_ns(tasks, edges, span, saturated)
                + kernels as u64 * self.cost.kernel_cycle_ns();
            self.stats.busy_ns_per_pe[pe] += busy;
            self.stats.tasks_per_pe[pe] += tasks as u64;
            self.stats.edges_per_pe[pe] += edges;
            self.stats.steps_per_pe[pe] += kernels as u64;
            t_end = t_end.max(self.clock + busy);
        }
        self.clock = t_end;
    }

    /// Bulk all-to-all exchange at the barrier; returns when the last
    /// message lands.
    fn exchange(&mut self, bytes: &[Vec<u64>], task_counts: &[Vec<u64>]) {
        let mut t_end = self.clock;
        let n = bytes.len();
        for (src, row) in bytes.iter().enumerate() {
            for (dst, &b) in row.iter().enumerate() {
                if b == 0 || src == dst {
                    continue;
                }
                let arrival = self.fabric.transfer(
                    self.clock,
                    PeId(src as u32),
                    PeId(dst as u32),
                    b,
                    self.control,
                );
                self.stats.messages += 1;
                self.stats.payload_bytes += b;
                self.stats.remote_tasks += task_counts[src][dst];
                t_end = t_end.max(arrival);
            }
        }
        let _ = n;
        self.clock = t_end;
    }

    fn finish(mut self) -> RunStats {
        self.stats.elapsed_ns = self.clock;
        self.stats.wire_bytes = self.fabric.trace.total_wire_bytes();
        // Extend the traffic series to the end of the run so trailing
        // quiet time counts toward burstiness, exactly as the Atos
        // runtime does — keeps the smoothing comparison fair.
        self.fabric.trace.finish(self.clock);
        self.stats.burstiness = self.fabric.trace.burstiness();
        self.stats
    }
}

/// Level-synchronous multi-GPU BFS (Gunrock-like).
pub fn bsp_bfs(
    graph: Arc<Csr>,
    partition: Arc<Partition>,
    source: VertexId,
    fabric: Fabric,
) -> BspRun {
    let n_pes = fabric.n_pes();
    assert_eq!(partition.n_parts(), n_pes);
    let mut clk = BspClock::new(fabric, GpuCostModel::v100());
    let n = graph.n_vertices();
    let mut depth = vec![UNREACHED; n];
    depth[source as usize] = 0;
    let mut frontier: Vec<Vec<VertexId>> = vec![Vec::new(); n_pes];
    frontier[partition.owner(source)].push(source);
    let task_bytes = 8u64;
    let mut iterations = 0u32;

    loop {
        let active: usize = frontier.iter().map(Vec::len).sum();
        if active == 0 {
            break;
        }
        iterations += 1;
        // Advance + filter kernels per PE.
        let mut next: Vec<Vec<VertexId>> = vec![Vec::new(); n_pes];
        let mut send: Vec<Vec<Vec<(VertexId, u32)>>> =
            vec![vec![Vec::new(); n_pes]; n_pes];
        let mut shape = Vec::with_capacity(n_pes);
        for pe in 0..n_pes {
            let mut edges = 0u64;
            let mut span = 0u64;
            for &v in &frontier[pe] {
                let deg = graph.degree(v) as u64;
                edges += deg;
                span = span.max(deg);
                let nd = depth[v as usize] + 1;
                for &w in graph.neighbors(v) {
                    let owner = partition.owner(w);
                    if owner == pe {
                        if nd < depth[w as usize] {
                            depth[w as usize] = nd;
                            next[pe].push(w);
                        }
                    } else {
                        // BSP: remote updates are buffered until the
                        // barrier, applied at the destination next
                        // iteration.
                        send[pe][owner].push((w, nd));
                    }
                }
            }
            shape.push((frontier[pe].len(), edges, span));
        }
        clk.compute_phase(&shape, 2);

        // The filter kernel deduplicates the outgoing update lists (a
        // vertex reached from several parents in one level is sent once).
        for row in &mut send {
            for buf in row.iter_mut() {
                buf.sort_unstable();
                buf.dedup_by_key(|&mut (w, _)| w);
            }
        }

        // Barrier + bulk exchange.
        let bytes: Vec<Vec<u64>> = send
            .iter()
            .map(|row| row.iter().map(|v| v.len() as u64 * task_bytes).collect())
            .collect();
        let counts: Vec<Vec<u64>> = send
            .iter()
            .map(|row| row.iter().map(|v| v.len() as u64).collect())
            .collect();
        let any_comm = bytes.iter().flatten().any(|&b| b > 0);
        clk.exchange(&bytes, &counts);

        // Merge received updates (one more kernel on receiving PEs).
        if any_comm {
            let mut merge_shape = vec![(0usize, 0u64, 0u64); n_pes];
            for (src, row) in send.iter().enumerate() {
                let _ = src;
                for (dst, updates) in row.iter().enumerate() {
                    for &(w, nd) in updates {
                        merge_shape[dst].0 += 1;
                        if nd < depth[w as usize] {
                            depth[w as usize] = nd;
                            next[dst].push(w);
                        }
                    }
                }
            }
            // Merging is a flat scan of received updates (one atomicMin
            // each), not a task-scheduling round: charge it as pure edge
            // work on one saturating batch.
            let merge: Vec<(usize, u64, u64)> = merge_shape
                .iter()
                .map(|&(t, _, _)| (t.min(1), t as u64, 1u64))
                .collect();
            clk.compute_phase(&merge, 1);
        }

        // Deduplicate next frontier (filter kernel's job).
        for f in &mut next {
            f.sort_unstable();
            f.dedup();
        }
        frontier = next;
    }

    BspRun {
        stats: clk.finish(),
        depth,
        rank: Vec::new(),
        iterations,
    }
}

/// Bulk-synchronous push PageRank (Gunrock-like): all active vertices
/// relax each iteration; remote contributions cross at the barrier.
pub fn bsp_pagerank(
    graph: Arc<Csr>,
    partition: Arc<Partition>,
    alpha: f64,
    epsilon: f64,
    fabric: Fabric,
) -> BspRun {
    let n_pes = fabric.n_pes();
    assert_eq!(partition.n_parts(), n_pes);
    let mut clk = BspClock::new(fabric, GpuCostModel::v100());
    let n = graph.n_vertices();
    let mut rank = vec![0.0f64; n];
    let mut residue = vec![1.0 - alpha; n];
    let task_bytes = 8u64;
    let owned: Vec<Vec<VertexId>> = (0..n_pes).map(|pe| partition.vertices_of(pe)).collect();
    let mut iterations = 0u32;

    // Reused accumulation state. BSP PageRank is *Jacobi*: every
    // contribution — local or remote — is buffered during the iteration
    // and applied at the barrier, so each round relaxes against residues
    // from the previous round. This is what makes the bulk-synchronous
    // formulation do severalfold more relaxations than the asynchronous
    // (Gauss-Seidel-ordered) push PR the paper's Atos and Groute run.
    // Remote contributions are pre-aggregated per destination vertex (the
    // reduce in Gunrock's exchange), so message size is per-vertex.
    let mut next_residue = vec![0.0f64; n];
    let mut send_val: Vec<Vec<f64>> = vec![vec![0.0; n]; n_pes];
    let mut touched: Vec<Vec<Vec<VertexId>>> = vec![vec![Vec::new(); n_pes]; n_pes];
    loop {
        // Active = residue above threshold, found by the filter kernel.
        let mut shape = Vec::with_capacity(n_pes);
        let mut active_total = 0usize;
        for pe in 0..n_pes {
            let mut tasks = 0usize;
            let mut edges = 0u64;
            let mut span = 0u64;
            for &v in &owned[pe] {
                let r = residue[v as usize];
                if r < epsilon {
                    continue;
                }
                tasks += 1;
                active_total += 1;
                let deg = graph.degree(v) as u64;
                edges += deg;
                span = span.max(deg);
                residue[v as usize] = 0.0;
                rank[v as usize] += r;
                if deg == 0 {
                    continue;
                }
                let share = alpha * r / deg as f64;
                for &w in graph.neighbors(v) {
                    let owner = partition.owner(w);
                    if owner == pe {
                        next_residue[w as usize] += share;
                    } else {
                        if send_val[owner][w as usize] == 0.0 {
                            touched[pe][owner].push(w);
                        }
                        send_val[owner][w as usize] += share;
                    }
                }
            }
            shape.push((tasks, edges, span));
        }
        if active_total == 0 {
            break;
        }
        iterations += 1;
        clk.compute_phase(&shape, 2);

        // Barrier: fold this round's local contributions into the live
        // residues (remote ones arrive via the exchange below).
        for (w, nr) in next_residue.iter_mut().enumerate() {
            if *nr != 0.0 {
                residue[w] += *nr;
                *nr = 0.0;
            }
        }

        // Bulk exchange of per-vertex aggregated contributions.
        let counts: Vec<Vec<u64>> = touched
            .iter()
            .map(|row| row.iter().map(|t| t.len() as u64).collect())
            .collect();
        let bytes: Vec<Vec<u64>> = counts
            .iter()
            .map(|row| row.iter().map(|&c| c * task_bytes).collect())
            .collect();
        clk.exchange(&bytes, &counts);

        // Apply at destinations (flat scan; charged like the BFS merge).
        let mut merge_shape = vec![(0usize, 0u64, 0u64); n_pes];
        for row in &mut touched {
            for (dst, list) in row.iter_mut().enumerate() {
                merge_shape[dst].1 += list.len() as u64;
                merge_shape[dst].0 = 1;
                for w in list.drain(..) {
                    residue[w as usize] += send_val[dst][w as usize];
                    send_val[dst][w as usize] = 0.0;
                }
            }
        }
        clk.compute_phase(
            &merge_shape
                .iter()
                .map(|&(t, e, _)| (t.min(1) * (e > 0) as usize, e, 1u64))
                .collect::<Vec<_>>(),
            1,
        );
    }

    BspRun {
        stats: clk.finish(),
        depth: Vec::new(),
        rank,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atos_graph::generators::{Preset, Scale};
    use atos_graph::reference;

    #[test]
    fn bsp_bfs_matches_reference() {
        for p in Preset::ALL {
            let g = Arc::new(p.build(Scale::Tiny));
            let src = p.bfs_source(&g);
            for n in [1, 4] {
                let part = Arc::new(Partition::bfs_grow(&g, n, 1));
                let run = bsp_bfs(g.clone(), part, src, Fabric::daisy(n));
                assert_eq!(run.depth, reference::bfs(&g, src), "{} {n} PEs", p.name);
            }
        }
    }

    #[test]
    fn bsp_bfs_iterations_equal_eccentricity() {
        let g = Arc::new(atos_graph::generators::grid_2d(16, 16));
        let part = Arc::new(Partition::single(g.n_vertices()));
        let run = bsp_bfs(g, part, 0, Fabric::daisy(1));
        // Corner-to-corner eccentricity is 30, so frontiers exist for
        // depths 0..=30: 31 kernel iterations (the last finds nothing new).
        assert_eq!(run.iterations, 31);
    }

    #[test]
    fn bsp_pagerank_matches_reference() {
        let p = Preset::by_name("soc-LiveJournal1_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        for n in [1, 4] {
            let part = Arc::new(Partition::bfs_grow(&g, n, 2));
            let run = bsp_pagerank(g.clone(), part, 0.85, 1e-6, Fabric::daisy(n));
            let want = reference::pagerank_push(&g, 0.85, 1e-6).rank;
            let per_vertex = reference::rank_l1(&run.rank, &want) / g.n_vertices() as f64;
            assert!(per_vertex < 1e-3, "{n} PEs: per-vertex L1 {per_vertex}");
        }
    }

    #[test]
    fn mesh_bfs_costs_diameter_times_kernel_overhead() {
        let p = Preset::by_name("road_usa_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        let src = p.bfs_source(&g);
        let part = Arc::new(Partition::single(g.n_vertices()));
        let run = bsp_bfs(g, part, src, Fabric::daisy(1));
        let floor = run.iterations as u64 * 2 * GpuCostModel::v100().kernel_cycle_ns();
        assert!(run.stats.elapsed_ns >= floor);
        assert!(run.iterations > 50, "mesh diameter drives iterations");
    }

    #[test]
    fn multi_gpu_bsp_pays_more_sync_on_mesh() {
        // Table II: Gunrock's road_usa runtime *increases* with GPU count.
        let p = Preset::by_name("road_usa_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        let src = p.bfs_source(&g);
        let t1 = bsp_bfs(
            g.clone(),
            Arc::new(Partition::single(g.n_vertices())),
            src,
            Fabric::daisy(1),
        )
        .stats
        .elapsed_ns;
        let t4 = bsp_bfs(
            g.clone(),
            Arc::new(Partition::bfs_grow(&g, 4, 1)),
            src,
            Fabric::daisy(4),
        )
        .stats
        .elapsed_ns;
        assert!(t4 > t1, "1 GPU {t1} vs 4 GPU {t4}");
    }

    #[test]
    fn bsp_is_deterministic() {
        let p = Preset::by_name("hollywood_2009_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        let src = p.bfs_source(&g);
        let part = Arc::new(Partition::bfs_grow(&g, 2, 3));
        let a = bsp_bfs(g.clone(), part.clone(), src, Fabric::daisy(2));
        let b = bsp_bfs(g, part, src, Fabric::daisy(2));
        assert_eq!(a.stats.elapsed_ns, b.stats.elapsed_ns);
        assert_eq!(a.depth, b.depth);
    }
}
