//! Groute-like asynchronous baseline.
//!
//! Groute (Ben-Nun et al., PPoPP'17) runs the same asynchronous worklist
//! algorithms as Atos — the paper: "Groute and Atos use the same algorithm
//! (asynchronous BFS) and kernel strategy (persistent kernel), so these
//! factors do not contribute to the performance difference. ... Atos's
//! performance advantage comes from its lower communication latency. Why?
//! Atos sends communication immediately when communication data is
//! available. This stands in contrast to Groute's control path, which
//! passes through the CPU."
//!
//! Accordingly this baseline reuses the Atos runtime and applications with
//! exactly two framework substitutions:
//!
//! * [`ControlPath::cpu_mediated`] — every transfer is prepared and
//!   triggered by the host;
//! * kernel-boundary communication (`in_kernel_comm = false`) — data
//!   generated during a scheduling round leaves only when the round's
//!   kernel completes, in medium-grained fragments (Groute's pipelined
//!   router chunks).

use std::sync::Arc;

use atos_apps::bfs::{BfsApp, BfsRun};
use atos_apps::pagerank::{PageRankApp, PageRankRun, PrTask};
use atos_core::{AtosConfig, CommMode, KernelMode, QueueMode, Runtime, RuntimeTuning, WorkerConfig};
use atos_graph::csr::{Csr, VertexId};
use atos_graph::partition::Partition;
use atos_sim::{ControlPath, Fabric, GpuCostModel};

/// Groute's router moves data in pipelined fragments of a few thousand
/// items rather than per-warp messages.
const GROUTE_FRAGMENT_TASKS: usize = 1024;

fn groute_config() -> AtosConfig {
    AtosConfig {
        kernel: KernelMode::Persistent,
        queue: QueueMode::Standard,
        worker: WorkerConfig::cta512(),
        comm: CommMode::Direct {
            group: GROUTE_FRAGMENT_TASKS,
        },
        lb: atos_core::LoadBalance::Owner,
    }
}

fn groute_tuning() -> RuntimeTuning {
    RuntimeTuning {
        control: ControlPath::cpu_mediated(),
        in_kernel_comm: false,
        round_metadata_bytes: 0,
        metadata_cpu_ns_per_byte: 0.0,
    }
}

/// Groute-like asynchronous BFS.
pub fn groute_bfs(
    graph: Arc<Csr>,
    partition: Arc<Partition>,
    source: VertexId,
    fabric: Fabric,
) -> BfsRun {
    assert_eq!(partition.n_parts(), fabric.n_pes());
    let app = BfsApp::new(graph, partition.clone(), source);
    let mut rt = Runtime::with_tuning(
        app,
        fabric,
        groute_config(),
        GpuCostModel::v100(),
        groute_tuning(),
    );
    rt.seed(partition.owner(source), [(source, 0u32)]);
    let stats = rt.run();
    let app = rt.into_app();
    let reachable = app.reached() as u64;
    BfsRun {
        stats,
        depth: app.depth,
        reachable,
    }
}

/// Groute-like asynchronous push PageRank.
pub fn groute_pagerank(
    graph: Arc<Csr>,
    partition: Arc<Partition>,
    alpha: f64,
    epsilon: f64,
    fabric: Fabric,
) -> PageRankRun {
    assert_eq!(partition.n_parts(), fabric.n_pes());
    let app = PageRankApp::new(graph, partition.clone(), alpha, epsilon);
    let mut rt = Runtime::with_tuning(
        app,
        fabric,
        groute_config(),
        GpuCostModel::v100(),
        groute_tuning(),
    );
    for pe in 0..partition.n_parts() {
        let seeds: Vec<PrTask> = partition
            .vertices_of(pe)
            .into_iter()
            .map(PrTask::Relax)
            .collect();
        rt.seed(pe, seeds);
    }
    let stats = rt.run();
    let relaxations = stats.total_tasks();
    let app = rt.into_app();
    PageRankRun {
        stats,
        rank: app.rank,
        relaxations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atos_apps::bfs::run_bfs;
    use atos_graph::generators::{Preset, Scale};
    use atos_graph::reference;

    #[test]
    fn groute_bfs_matches_reference() {
        for p in Preset::ALL {
            let g = Arc::new(p.build(Scale::Tiny));
            let src = p.bfs_source(&g);
            let part = Arc::new(Partition::bfs_grow(&g, 2, 1));
            let run = groute_bfs(g.clone(), part, src, Fabric::daisy(2));
            assert_eq!(run.depth, reference::bfs(&g, src), "{}", p.name);
        }
    }

    #[test]
    fn groute_pagerank_matches_reference() {
        let p = Preset::by_name("road_usa_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        let part = Arc::new(Partition::block(g.n_vertices(), 4));
        let run = groute_pagerank(g.clone(), part, 0.85, 1e-6, Fabric::daisy(4));
        let want = reference::pagerank_push(&g, 0.85, 1e-6).rank;
        let per_vertex = reference::rank_l1(&run.rank, &want) / g.n_vertices() as f64;
        assert!(per_vertex < 1e-3, "per-vertex L1 {per_vertex}");
    }

    #[test]
    fn atos_beats_groute_on_latency_bound_mesh() {
        // Table II mesh rows: same algorithm, but Groute's CPU control
        // path slows the depth wave at every partition boundary.
        let p = Preset::by_name("osm_eur_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        let src = p.bfs_source(&g);
        let part = Arc::new(Partition::bfs_grow(&g, 4, 2));
        let atos = run_bfs(
            g.clone(),
            part.clone(),
            src,
            Fabric::daisy(4),
            AtosConfig::standard_persistent(),
        );
        let groute = groute_bfs(g, part, src, Fabric::daisy(4));
        assert_eq!(atos.depth, groute.depth);
        assert!(
            atos.stats.elapsed_ns < groute.stats.elapsed_ns,
            "Atos {} ms vs Groute {} ms",
            atos.stats.elapsed_ms(),
            groute.stats.elapsed_ms()
        );
    }

    #[test]
    fn groute_sends_fewer_larger_messages_than_atos() {
        let p = Preset::by_name("twitter_s").unwrap();
        let g = Arc::new(p.build(Scale::Tiny));
        let src = p.bfs_source(&g);
        let part = Arc::new(Partition::random(g.n_vertices(), 4, 4));
        let atos = run_bfs(
            g.clone(),
            part.clone(),
            src,
            Fabric::daisy(4),
            AtosConfig::standard_persistent(),
        );
        let groute = groute_bfs(g, part, src, Fabric::daisy(4));
        assert!(groute.stats.messages < atos.stats.messages);
        assert!(groute.stats.mean_message_bytes() > atos.stats.mean_message_bytes());
    }
}
