//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crate registry, so this workspace
//! vendors the subset of proptest its property tests use:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strat, ..) {..} }`
//! * strategies: integer ranges, tuples of strategies, `any::<T>()`, and
//!   `proptest::collection::vec(element, size_range)`
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Test cases are sampled deterministically — the stream is a pure
//! function of the test's name and the case index — so failures reproduce
//! without a persistence file. There is **no shrinking**: a failing case
//! reports its inputs via the panic message produced by the assertion
//! itself plus the case index printed by the runner.

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration (`ProptestConfig::with_cases` is the only knob
/// the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property over `cases` sampled inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick on the
        // single-core hosts this repo targets while still exercising the
        // properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Stream seeded from a test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A recipe for sampling values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($s:ident / $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A / a);
impl_strategy_for_tuple!(A / a, B / b);
impl_strategy_for_tuple!(A / a, B / b, C / c);
impl_strategy_for_tuple!(A / a, B / b, C / c, D / d);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's full domain; build with [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u8>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, lo..hi)`: vectors of `element` samples, length in
    /// `lo..hi`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Assert inside a property (maps to a plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // Surface the failing case index alongside the assertion's
                // own panic message.
                let __guard = $crate::CasePrinter(stringify!($name), __case);
                { $body }
                ::core::mem::forget(__guard);
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Prints the failing case on unwind; forgotten on success.
#[doc(hidden)]
pub struct CasePrinter(pub &'static str, pub u32);

impl Drop for CasePrinter {
    fn drop(&mut self) {
        eprintln!("proptest shim: property `{}` failed at case {}", self.0, self.1);
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec((any::<bool>(), 0u8..9), 2..50)) {
            prop_assert!((2..50).contains(&v.len()), "{}", v.len());
            for &(_, d) in &v {
                prop_assert!(d < 9);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|c| crate::TestRng::for_case("t", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| crate::TestRng::for_case("t", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
