#![cfg(atos_check)]

use std::sync::Arc;

use atos_check::sync::{AtomicU64, Ordering};
use atos_check::{thread, Model};

#[test]
fn abort_with_never_scheduled_thread_terminates() {
    let out = Model::new().check(|| {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let _t = thread::spawn(move || {
            a2.store(1, Ordering::Relaxed);
        });
        panic!("boom before the child ever runs");
    });
    assert!(out.failure().is_some());
}
