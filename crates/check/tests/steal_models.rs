//! Model-check suite for the work-stealing protocol.
//!
//! The runtime's cross-PE steal path (`atos_core::runtime`, `--load-balance
//! steal`) has a stealer pop a *group* from a victim PE's queue through the
//! exact same `pop_group`/`PopState` machinery the owner uses — there is no
//! separate steal cursor. Its safety therefore reduces to three properties
//! of [`CounterQueue`] under two racing pop handles:
//!
//! 1. **Disjoint claims** — owner-pop and stealer-pop-group never yield the
//!    same item (monotone `fetch_add` on `start`).
//! 2. **Conservation** — across owner, stealer, and a racing victim-side
//!    pusher, nothing is lost or duplicated once the queue quiesces.
//! 3. **Prefix safety** — a stealer racing publication only ever observes a
//!    prefix of fully published items, never an unwritten slot.
//!
//! Compiled only under `RUSTFLAGS="--cfg atos_check"`. The suite also
//! carries the falsifiability twin: `CounterQueueRelaxedSteal` (mutation 4,
//! pop-side `end` load weakened Acquire→Relaxed) must be *caught* with a
//! deterministic, replayable schedule, proving these passes are not vacuous.
#![cfg(atos_check)]

use atos_check::{thread, CheckOutcome, Failure, FailureKind, Model};
use atos_queue::counter::CounterQueue;
use atos_queue::mutations::CounterQueueRelaxedSteal;
use atos_queue::PopState;

fn bounded(preemptions: usize) -> Model {
    let mut m = Model::new();
    m.preemption_bound = Some(preemptions);
    m.max_iterations = 2_000_000;
    m
}

/// Property 1: owner and stealer pop groups concurrently from a pre-filled
/// victim queue. Every interleaving yields disjoint claims — no item is
/// executed by both PEs — and with enough combined demand the queue drains
/// completely (any claim overshooting the final `end` is provably
/// unfillable and abandoned, exactly the runtime's termination argument).
#[test]
fn steal_owner_and_stealer_claims_disjoint() {
    bounded(2)
        .check(|| {
            let q = CounterQueue::with_capacity(4);
            q.push_group(&[1u64, 2, 3]).unwrap();
            let mut owner = Vec::new();
            let mut stolen = Vec::new();
            thread::scope(|s| {
                let t = s.spawn(|| {
                    let mut h = PopState::new();
                    let mut out = Vec::new();
                    q.pop_group(&mut h, 2, &mut out);
                    h.abandon();
                    out
                });
                let mut h = PopState::new();
                q.pop_group(&mut h, 2, &mut owner);
                h.abandon();
                stolen = t.join().unwrap();
            });
            let mut all: Vec<u64> = owner.iter().chain(stolen.iter()).copied().collect();
            all.sort_unstable();
            let mut uniq = all.clone();
            uniq.dedup();
            assert_eq!(all, uniq, "owner and stealer claimed the same item");
            assert_eq!(all, vec![1, 2, 3], "combined demand drains the queue");
        })
        .assert_passed();
}

/// Property 2: a victim-side pusher races the owner pop *and* a stealer
/// pop-group. Whatever either popper harvests mid-race, after quiescence
/// the union is exactly the pushed set — steals move work, they never
/// duplicate or lose it.
#[test]
fn steal_racing_pusher_conserves_items() {
    let out = bounded(2).check(|| {
        let q = CounterQueue::with_capacity(4);
        let mut owner = Vec::new();
        let mut stolen = Vec::new();
        thread::scope(|s| {
            s.spawn(|| q.push_group(&[7u64, 8]).unwrap());
            let t = s.spawn(|| {
                let mut h = PopState::new();
                let mut out = Vec::new();
                q.pop_group(&mut h, 1, &mut out);
                h.abandon();
                out
            });
            let mut h = PopState::new();
            q.pop_group(&mut h, 1, &mut owner);
            h.abandon();
            stolen = t.join().unwrap();
        });
        for &v in owner.iter().chain(stolen.iter()) {
            assert!(v == 7 || v == 8, "popped an unpushed value {v}");
        }
        // Quiesced: one fresh handle drains whatever the racers left.
        let mut h = PopState::new();
        let mut rest = Vec::new();
        q.pop_group(&mut h, 2, &mut rest);
        let mut all: Vec<u64> = owner
            .iter()
            .chain(stolen.iter())
            .chain(rest.iter())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![7, 8], "conservation across owner + stealer");
    });
    // Guard against a silently-inert cfg making the suite vacuous: the
    // three-way race must branch into many explored interleavings.
    match out {
        CheckOutcome::Passed { executions } => {
            assert!(executions > 10, "suspiciously few interleavings: {executions}")
        }
        CheckOutcome::Failed(f) => panic!("{f}"),
    }
}

/// Property 3: a stealer racing publication observes only a prefix of the
/// pushed group — the Acquire load of `end` is the one edge that makes the
/// stolen slot reads safe, and the checker verifies it on every
/// interleaving (weakening it is mutation 4, caught below).
#[test]
fn steal_pop_is_prefix_safe_under_publication() {
    bounded(2)
        .check(|| {
            let q = CounterQueue::with_capacity(4);
            let mut stolen = Vec::new();
            thread::scope(|s| {
                s.spawn(|| q.push_group(&[5u64, 6]).unwrap());
                // The "stealer": pops from a queue it does not own while
                // the owner-side push is mid-flight.
                let mut h = PopState::new();
                q.pop_group(&mut h, 2, &mut stolen);
                h.abandon();
            });
            assert!(
                stolen == [] || stolen == [5] || stolen == [5, 6],
                "stole a non-prefix: {stolen:?}"
            );
        })
        .assert_passed();
}

/// Assert the failure replays: re-running the body pinned to the reported
/// schedule must reproduce the same failure kind deterministically.
fn assert_replays(f: &Failure, body: impl Fn() + Send + Sync + 'static) {
    let replayed = atos_check::replay(&f.schedule, body);
    let rf = replayed
        .failure()
        .unwrap_or_else(|| panic!("schedule {:?} did not reproduce: {f}", f.schedule));
    assert_eq!(rf.kind, f.kind, "replay changed the failure kind");
}

/// Mutation 4 — the steal-side `end` load weakened Acquire→Relaxed
/// (`atos_queue::mutations::CounterQueueRelaxedSteal`). A stealer that
/// observes `end > start` with a Relaxed load claims the slot without
/// synchronizing with the victim-side pusher's publication, so its slot
/// read races with the slot write. The checker must report the race with
/// a deterministic, replayable schedule; the identical driver on the real
/// queue is `steal_pop_is_prefix_safe_under_publication` above, which
/// passes.
#[test]
fn mutation_relaxed_steal_cursor_is_caught() {
    let body = || {
        let q = CounterQueueRelaxedSteal::with_capacity(2);
        let mut out = Vec::new();
        thread::scope(|s| {
            s.spawn(|| q.push_group(&[1u64]).unwrap());
            let mut h = PopState::new();
            q.pop_group(&mut h, 1, &mut out);
            h.abandon();
        });
    };
    let mut m = Model::new();
    m.preemption_bound = Some(2);
    let out = m.check(body);
    let f = out
        .failure()
        .expect("checker must catch the relaxed steal-cursor load")
        .clone();
    assert_eq!(f.kind, FailureKind::DataRace, "{f}");
    assert!(!f.schedule.is_empty(), "failure must carry a schedule");
    assert_replays(&f, body);
}
