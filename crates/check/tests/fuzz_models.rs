//! Schedule-fuzzing suites: randomized (but seeded, hence deterministic)
//! schedule exploration at sizes the exhaustive DFS can't reach —
//! including a full `DistributedQueues` push/recv round trip through the
//! host backend, which runs real worker threads on the shadow runtime.
#![cfg(atos_check)]

use atos_check::thread;
use atos_core::DistributedQueues;
use atos_queue::broker::BrokerQueue;
use atos_queue::cas::CasQueue;
use atos_queue::counter::CounterQueue;
use atos_queue::PopState;

/// Counter queue: 2 pushers × 2-item groups against a greedy popper, 200
/// random schedules.
#[test]
fn fuzz_counter_queue() {
    atos_check::fuzz_schedules(0xC0FFEE, 200, || {
        let q = CounterQueue::with_capacity(8);
        let mut popped = Vec::new();
        thread::scope(|s| {
            s.spawn(|| q.push_group(&[1u64, 2]).unwrap());
            s.spawn(|| q.push_group(&[3u64, 4]).unwrap());
            let mut h = PopState::new();
            q.pop_group(&mut h, 4, &mut popped);
            h.abandon();
        });
        let mut h = PopState::new();
        q.pop_group(&mut h, 4, &mut popped);
        popped.sort_unstable();
        assert_eq!(popped, vec![1, 2, 3, 4], "conservation under fuzz");
    })
    .assert_passed();
}

/// CAS queue: same driver shape, exercising all four CAS retry loops under
/// contention.
#[test]
fn fuzz_cas_queue() {
    atos_check::fuzz_schedules(0xCA5CA5, 200, || {
        let q = CasQueue::with_capacity(8);
        let mut popped = Vec::new();
        thread::scope(|s| {
            s.spawn(|| q.push_group(&[1u64, 2]).unwrap());
            s.spawn(|| q.push_group(&[3u64, 4]).unwrap());
            let mut h = PopState::new();
            q.pop_group(&mut h, 4, &mut popped);
        });
        let mut h = PopState::new();
        q.pop_group(&mut h, 4, &mut popped);
        popped.sort_unstable();
        assert_eq!(popped, vec![1, 2, 3, 4], "conservation under fuzz");
    })
    .assert_passed();
}

/// Broker queue: racing pushers against a spinning popper.
#[test]
fn fuzz_broker_queue() {
    atos_check::fuzz_schedules(0xB60CE6, 200, || {
        let q = BrokerQueue::with_capacity(4);
        let mut popped = Vec::new();
        thread::scope(|s| {
            s.spawn(|| q.push(1u64).unwrap());
            s.spawn(|| q.push(2u64).unwrap());
            while popped.len() < 2 {
                if let Some(v) = q.pop() {
                    popped.push(v);
                } else {
                    thread::yield_now();
                }
            }
        });
        popped.sort_unstable();
        assert_eq!(popped, vec![1, 2], "conservation under fuzz");
    })
    .assert_passed();
}

/// The paper's `DistributedQueues` API end to end on the shadow runtime:
/// 2 PEs × 1 worker relay a token through local and remote (one-sided
/// recv-queue) pushes until quiescence. Each fuzzed schedule runs the full
/// host backend — scoped worker threads, pop/process/push loops, and the
/// outstanding-counter termination protocol.
#[test]
fn fuzz_distributed_queues_push_recv() {
    use std::sync::atomic::{AtomicU64, Ordering};
    atos_check::fuzz_schedules(0xA706, 60, || {
        let visits = AtomicU64::new(0);
        let q = DistributedQueues::init(2, 64, 64);
        let stats = q.launch_thread(
            true,
            1,
            vec![vec![3u32], vec![]],
            |pe, ttl, push| {
                visits.fetch_add(1, Ordering::Relaxed);
                if ttl > 0 {
                    // Alternate local and one-sided remote pushes so both
                    // queue families see traffic in every schedule.
                    if ttl % 2 == 0 {
                        push.local(ttl - 1);
                    } else {
                        push.remote(ttl - 1, (pe + 1) % 2);
                    }
                }
            },
            |_pe| {},
        );
        assert_eq!(visits.load(Ordering::Relaxed), 4, "ttl 3 → 4 visits");
        assert_eq!(stats.remote_pushes, 2, "ttl 3 and 1 cross PEs");
        assert_eq!(stats.tasks_per_pe.iter().sum::<u64>(), 4);
    })
    .assert_passed();
}
