//! Engine self-checks: tiny protocols with known verdicts. If any of
//! these flip, the checker itself — not the queues — is broken.

use std::sync::Arc;

use atos_check::sync::{fence, AtomicU64, Ordering, UnsafeCell};
use atos_check::{CheckOutcome, FailureKind, Model};

fn unbounded() -> Model {
    let mut m = Model::new();
    m.preemption_bound = None;
    m
}

/// Release store / acquire load message passing is race-free.
#[test]
fn release_acquire_publication_passes() {
    let out = unbounded().check(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let cell = Arc::new(UnsafeCell::new(0u64));
        let (f2, c2) = (Arc::clone(&flag), Arc::clone(&cell));
        let t = atos_check::thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: only this thread writes; published by the
                // release store below.
                unsafe { *p = 7 }
            });
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            // SAFETY: the acquire load saw the release store, so the
            // write above happens-before this read.
            assert_eq!(cell.with(|p| unsafe { *p }), 7);
        }
        t.join().unwrap();
    });
    assert!(matches!(out, CheckOutcome::Passed { executions } if executions > 1));
}

/// The same protocol with a relaxed store is a data race, found with a
/// replayable schedule that reproduces the identical failure.
#[test]
fn relaxed_publication_races_and_replays() {
    let body = || {
        let flag = Arc::new(AtomicU64::new(0));
        let cell = Arc::new(UnsafeCell::new(0u64));
        let (f2, c2) = (Arc::clone(&flag), Arc::clone(&cell));
        let t = atos_check::thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: exercised under the model checker only.
                unsafe { *p = 7 }
            });
            f2.store(1, Ordering::Relaxed); // BUG: no release edge
        });
        if flag.load(Ordering::Relaxed) == 1 {
            // SAFETY: exercised under the model checker only.
            let _ = cell.with(|p| unsafe { *p });
        }
        t.join().unwrap();
    };
    let out = unbounded().check(body);
    let failure = out.failure().expect("race must be found").clone();
    assert_eq!(failure.kind, FailureKind::DataRace);
    assert!(failure.message.contains("races with"), "{failure}");

    let replayed = atos_check::replay(&failure.schedule, body);
    let rf = replayed.failure().expect("replay must reproduce");
    assert_eq!(rf.kind, FailureKind::DataRace);
    assert_eq!(rf.message, failure.message);
}

/// Relaxed accesses bracketed by release/acquire *fences* synchronize.
#[test]
fn fence_publication_passes() {
    unbounded()
        .check(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let cell = Arc::new(UnsafeCell::new(0u64));
            let (f2, c2) = (Arc::clone(&flag), Arc::clone(&cell));
            let t = atos_check::thread::spawn(move || {
                c2.with_mut(|p| {
                    // SAFETY: published by the release fence + store below.
                    unsafe { *p = 7 }
                });
                fence(Ordering::Release);
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) == 1 {
                fence(Ordering::Acquire);
                // SAFETY: acquire fence after observing the flag.
                assert_eq!(cell.with(|p| unsafe { *p }), 7);
            }
            t.join().unwrap();
        })
        .assert_passed();
}

/// A relaxed load may observe a stale value — the classic lost-update
/// assertion fails on some interleaving and the checker finds it.
#[test]
fn load_store_increment_loses_updates() {
    let out = unbounded().check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = atos_check::thread::spawn(move || {
            let v = n2.load(Ordering::Relaxed);
            n2.store(v + 1, Ordering::Relaxed);
        });
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    });
    let failure = out.failure().expect("lost update must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("lost update"), "{failure}");
}

/// `fetch_add` increments never lose updates.
#[test]
fn fetch_add_increment_passes() {
    unbounded()
        .check(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = atos_check::thread::spawn(move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
            n.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2);
        })
        .assert_passed();
}

/// Thread join is a synchronization edge: reading the child's plain write
/// after join is race-free.
#[test]
fn join_synchronizes() {
    atos_check::check(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = atos_check::thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: parent reads only after join.
                unsafe { *p = 9 }
            });
        });
        t.join().unwrap();
        // SAFETY: join happens-before this read.
        assert_eq!(cell.with(|p| unsafe { *p }), 9);
    });
}

/// Reading a slot no write initialized is reported as a publication
/// failure (not executed as UB).
#[test]
fn uninitialized_read_detected() {
    let out = unbounded().check(|| {
        let cell = UnsafeCell::new(0u64);
        // SAFETY: never executed — the checker reports before the closure.
        let _ = cell.with(|p| unsafe { *p });
    });
    let failure = out.failure().expect("uninit read must be found");
    assert_eq!(failure.kind, FailureKind::UninitRead);
}

/// A spin loop nobody will ever satisfy is reported as a livelock, not an
/// infinite exploration.
#[test]
fn stuck_spin_is_livelock() {
    let mut m = unbounded();
    m.max_steps = 300;
    let out = m.check(|| {
        let flag = AtomicU64::new(0);
        while flag.load(Ordering::Acquire) == 0 {
            atos_check::sync::spin_loop();
        }
    });
    assert_eq!(out.failure().expect("must livelock").kind, FailureKind::Livelock);
}

/// A broker-style spin *with* a writer terminates: yielding lets the
/// writer run, and the stale-read bound forces the spinner to eventually
/// observe the newest store.
#[test]
fn satisfiable_spin_terminates() {
    unbounded()
        .check(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let f2 = Arc::clone(&flag);
            let t = atos_check::thread::spawn(move || {
                f2.store(1, Ordering::Release);
            });
            while flag.load(Ordering::Acquire) == 0 {
                atos_check::sync::spin_loop();
            }
            t.join().unwrap();
        })
        .assert_passed();
}

/// Scoped threads borrow stack data and join implicitly at scope exit.
#[test]
fn scoped_threads_synchronize() {
    atos_check::check(|| {
        let cell = UnsafeCell::new(0u64);
        let total = AtomicU64::new(0);
        atos_check::thread::scope(|s| {
            s.spawn(|| {
                cell.with_mut(|p| {
                    // SAFETY: published by scope join.
                    unsafe { *p = 3 }
                });
                total.fetch_add(1, Ordering::AcqRel);
            });
            s.spawn(|| {
                total.fetch_add(1, Ordering::AcqRel);
            });
        });
        // SAFETY: scope exit joined both threads.
        assert_eq!(cell.with(|p| unsafe { *p }), 3);
        assert_eq!(total.load(Ordering::Relaxed), 2);
    });
}

/// Two preemption budget finds the store-buffer-style bug that needs one
/// preemption, while budget 0 cannot (sanity check that bounding works).
#[test]
fn preemption_bound_gates_exploration() {
    let body = || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = atos_check::thread::spawn(move || {
            let v = n2.load(Ordering::Relaxed);
            n2.store(v + 1, Ordering::Relaxed);
        });
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    };
    let mut strict = Model::new();
    strict.preemption_bound = Some(2);
    assert!(strict.check(body).failure().is_some());
}

/// Fuzz mode finds an easy race and reports a replayable schedule.
#[test]
fn fuzz_finds_easy_race() {
    let body = || {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = atos_check::thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: exercised under the model checker only.
                unsafe { *p = 1 }
            });
        });
        cell.with_mut(|p| {
            // SAFETY: exercised under the model checker only.
            unsafe { *p = 2 }
        });
        t.join().unwrap();
    };
    let out = atos_check::fuzz_schedules(0xA705, 64, body);
    let failure = out.failure().expect("fuzz must find the write-write race");
    assert_eq!(failure.kind, FailureKind::DataRace);
    let replayed = atos_check::replay(&failure.schedule, body);
    assert_eq!(
        replayed.failure().expect("replay reproduces").kind,
        FailureKind::DataRace
    );
}

/// Deterministic exploration: the same model explores the same number of
/// executions every time.
#[test]
fn exploration_is_deterministic() {
    let body = || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = atos_check::thread::spawn(move || {
            n2.fetch_add(1, Ordering::AcqRel);
        });
        n.fetch_add(2, Ordering::AcqRel);
        t.join().unwrap();
    };
    let count = |_: ()| match unbounded().check(body) {
        CheckOutcome::Passed { executions } => executions,
        CheckOutcome::Failed(f) => panic!("unexpected failure: {f}"),
    };
    let a = count(());
    let b = count(());
    assert_eq!(a, b);
    assert!(a >= 2, "must explore both orders, got {a}");
}

/// Regression: a test-body panic (an abort event) while a spawned thread
/// exists that was never scheduled must still terminate exploration and
/// report the failure — not hang trying to schedule the orphan.
#[test]
fn abort_with_never_scheduled_thread_terminates() {
    let out = Model::new().check(|| {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let _t = atos_check::thread::spawn(move || {
            a2.store(1, Ordering::Relaxed);
        });
        panic!("boom before the child ever runs");
    });
    assert!(out.failure().is_some());
}
