//! Mutation tests: the checker must catch the deliberately seeded
//! protocol bugs (see `atos_queue::mutations`), each with a deterministic,
//! replayable schedule — while the unmutated queues pass the identical
//! drivers in `queue_models.rs`. This is the falsifiability proof for the
//! whole subsystem: a checker that cannot reject broken orderings says
//! nothing by accepting the real ones. Mutations 1–3 live here; mutation 4
//! (the relaxed steal-cursor load) lives with the steal-protocol suite in
//! `steal_models.rs`.
#![cfg(atos_check)]

use atos_check::{thread, Failure, FailureKind, Model};
use atos_queue::mutations::{CasQueueRelaxedEnd, CounterQueueHolePub, CounterQueueRelaxedPub};
use atos_queue::PopState;

/// Assert the failure replays: re-running the body pinned to the reported
/// schedule must reproduce the same failure kind deterministically.
fn assert_replays(f: &Failure, body: impl Fn() + Send + Sync + 'static) {
    let replayed = atos_check::replay(&f.schedule, body);
    let rf = replayed
        .failure()
        .unwrap_or_else(|| panic!("schedule {:?} did not reproduce: {f}", f.schedule));
    assert_eq!(rf.kind, f.kind, "replay changed the failure kind");
}

/// Mutation 1 — `counter.rs` publication RMWs weakened AcqRel→Relaxed.
/// A popper that Acquire-loads `end` still races with the pusher's slot
/// write, because nothing on the push side releases it.
#[test]
fn mutation_relaxed_publication_is_caught() {
    let body = || {
        let q = CounterQueueRelaxedPub::with_capacity(2);
        let mut out = Vec::new();
        thread::scope(|s| {
            s.spawn(|| q.push_group(&[1u64]).unwrap());
            let mut h = PopState::new();
            q.pop_group(&mut h, 1, &mut out);
            h.abandon();
        });
    };
    let mut m = Model::new();
    m.preemption_bound = Some(2);
    let out = m.check(body);
    let f = out
        .failure()
        .expect("checker must catch the relaxed publication")
        .clone();
    assert_eq!(f.kind, FailureKind::DataRace, "{f}");
    assert!(!f.schedule.is_empty(), "failure must carry a schedule");
    assert_replays(&f, body);
}

/// Mutation 2 — the CUDA listing's double read of `end_max` restored.
/// Needs three pushers (one publishing, one reserved-but-unwritten middle
/// range, one completed higher range) plus a concurrent popper; the
/// popper then reads the unwritten hole slot.
#[test]
fn mutation_hole_publication_is_caught() {
    let body = || {
        let q = CounterQueueHolePub::with_capacity(3);
        let mut out = Vec::new();
        thread::scope(|s| {
            s.spawn(|| q.push_group(&[1u64]).unwrap());
            s.spawn(|| q.push_group(&[2u64]).unwrap());
            s.spawn(|| q.push_group(&[3u64]).unwrap());
            let mut h = PopState::new();
            q.pop_group(&mut h, 3, &mut out);
            h.abandon();
        });
    };
    let mut m = Model::new();
    // The hole needs 3 preemptions (switch away from the publisher between
    // its two end_max reads, from the middle pusher after its reservation,
    // and from the popper-to-be); bound exactly there to keep DFS small.
    m.preemption_bound = Some(3);
    m.max_iterations = 5_000_000;
    let out = m.check(body);
    let f = out
        .failure()
        .expect("checker must catch the hole publication")
        .clone();
    assert!(
        matches!(f.kind, FailureKind::UninitRead | FailureKind::DataRace),
        "expected an uninitialized hole read, got: {f}"
    );
    assert!(!f.schedule.is_empty(), "failure must carry a schedule");
    assert_replays(&f, body);
}

/// Mutation 3 — `cas.rs` pop's `end` load weakened Acquire→Relaxed.
/// Observing `end > start` no longer synchronizes with the publisher, so
/// the slot read races with the slot write.
#[test]
fn mutation_relaxed_end_load_is_caught() {
    let body = || {
        let q = CasQueueRelaxedEnd::with_capacity(2);
        let mut out = Vec::new();
        thread::scope(|s| {
            s.spawn(|| q.push_group(&[1u64]).unwrap());
            q.pop_group(1, &mut out);
        });
    };
    let mut m = Model::new();
    m.preemption_bound = Some(2);
    let out = m.check(body);
    let f = out
        .failure()
        .expect("checker must catch the relaxed end load")
        .clone();
    assert_eq!(f.kind, FailureKind::DataRace, "{f}");
    assert!(!f.schedule.is_empty(), "failure must carry a schedule");
    assert_replays(&f, body);
}
