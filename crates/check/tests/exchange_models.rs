//! Model checks for the sharded runtime's inter-shard exchange protocol
//! (`atos_core::sharded`): publish → barrier → drain over the
//! `ExchangeBoard`, synchronized by the `SpinBarrier`.
//!
//! Compiled (and meaningful) only under `RUSTFLAGS="--cfg atos_check"`,
//! which builds `atos-core` against the shadow sync facade, so the exact
//! production barrier and board run with every interleaving explored and
//! every `UnsafeCell` access race-checked. The positive models assert the
//! protocol is race-free at small bounds; the mutation test swaps in
//! `sharded_mutations::RelaxedBarrier` (generation flip weakened to
//! `Relaxed`) and asserts the checker catches the missing happens-before
//! edge with a deterministic, replayable schedule — the falsifiability
//! proof that the positive results mean something.
#![cfg(atos_check)]

use atos_check::{thread, CheckOutcome, Failure, FailureKind, Model};
use atos_core::sharded_mutations::RelaxedBarrier;
use atos_core::{ExchangeBoard, SpinBarrier};

fn bounded(preemptions: usize) -> Model {
    let mut m = Model::new();
    m.preemption_bound = Some(preemptions);
    m.max_iterations = 2_000_000;
    m
}

/// One exchange window between two shards: each publishes a message for
/// the other, crosses the barrier, and drains its column. Every
/// interleaving must deliver exactly the staged message — and must be
/// free of data races on the board's cells.
#[test]
fn exchange_window_is_race_free_and_lossless() {
    let out = bounded(2).check(|| {
        let k = 2;
        let board: ExchangeBoard<u64> = ExchangeBoard::new(k);
        let barrier = SpinBarrier::new(k);
        thread::scope(|s| {
            for me in 0..k {
                let board = &board;
                let barrier = &barrier;
                s.spawn(move || {
                    let peer = 1 - me;
                    let mut staged = vec![10 + me as u64];
                    board.publish(me, peer, &mut staged);
                    assert!(staged.is_empty(), "publish must swap, not copy");
                    barrier.wait();
                    let mut inbox = Vec::new();
                    for src in 0..k {
                        board.drain(src, me, &mut inbox);
                    }
                    assert_eq!(inbox, vec![10 + peer as u64], "shard {me}");
                });
            }
        });
    });
    out.assert_passed();
    match out {
        CheckOutcome::Passed { executions } => {
            assert!(executions > 10, "vacuous model: {executions} executions")
        }
        CheckOutcome::Failed(_) => unreachable!(),
    }
}

/// Two back-to-back windows: the drained-empty vector returns to the
/// publisher through the second publish (the zero-alloc steady state),
/// so the same slot is written by both threads across windows — the
/// barrier must order every hand-off in both directions.
#[test]
fn steady_state_recycling_is_race_free() {
    let out = bounded(2).check(|| {
        let k = 2;
        let board: ExchangeBoard<u64> = ExchangeBoard::new(k);
        let barrier = SpinBarrier::new(k);
        thread::scope(|s| {
            for me in 0..k {
                let board = &board;
                let barrier = &barrier;
                s.spawn(move || {
                    let peer = 1 - me;
                    let mut staged = Vec::new();
                    let mut inbox = Vec::new();
                    for window in 0..2u64 {
                        staged.push(window * 100 + me as u64);
                        board.publish(me, peer, &mut staged);
                        barrier.wait();
                        inbox.clear();
                        board.drain(peer, me, &mut inbox);
                        assert_eq!(inbox, vec![window * 100 + peer as u64]);
                        barrier.wait();
                    }
                });
            }
        });
    });
    out.assert_passed();
    match out {
        CheckOutcome::Passed { executions } => {
            assert!(executions > 10, "vacuous model: {executions} executions")
        }
        CheckOutcome::Failed(_) => unreachable!(),
    }
}

/// Assert the failure replays: re-running the body pinned to the reported
/// schedule must reproduce the same failure kind deterministically.
fn assert_replays(f: &Failure, body: impl Fn() + Send + Sync + 'static) {
    let replayed = atos_check::replay(&f.schedule, body);
    let rf = replayed
        .failure()
        .unwrap_or_else(|| panic!("schedule {:?} did not reproduce: {f}", f.schedule));
    assert_eq!(rf.kind, f.kind, "replay changed the failure kind");
}

/// Mutation — the barrier's generation flip weakened `Release`/`Acquire`
/// → `Relaxed`/`Relaxed`. Arrival counting still works, but nothing
/// publishes the pre-barrier slot writes, so a drain races with the
/// publish it should have been ordered after. The checker must catch it.
#[test]
fn mutation_relaxed_barrier_is_caught() {
    let body = || {
        let k = 2;
        let board: ExchangeBoard<u64> = ExchangeBoard::new(k);
        let barrier = RelaxedBarrier::new(k);
        thread::scope(|s| {
            for me in 0..k {
                let board = &board;
                let barrier = &barrier;
                s.spawn(move || {
                    let peer = 1 - me;
                    let mut staged = vec![10 + me as u64];
                    board.publish(me, peer, &mut staged);
                    barrier.wait();
                    let mut inbox = Vec::new();
                    board.drain(peer, me, &mut inbox);
                });
            }
        });
    };
    let mut m = bounded(2);
    m.name = "relaxed-barrier-mutation";
    let out = m.check(body);
    let f = out
        .failure()
        .expect("checker must catch the relaxed barrier")
        .clone();
    assert_eq!(f.kind, FailureKind::DataRace, "{f}");
    assert!(!f.schedule.is_empty(), "failure must carry a schedule");
    assert_replays(&f, body);
}
