//! Exhaustive model-check suites for the queue substrate.
//!
//! Compiled (and meaningful) only under `RUSTFLAGS="--cfg atos_check"`,
//! which builds `atos-queue` against the shadow sync facade so every
//! atomic, slot access, and thread operation routes through the model
//! scheduler. Each test explores *all* interleavings within the stated
//! preemption bound and asserts linearizability and publication safety at
//! small bounds (2–3 threads, 2–4 ops), per the loom/CHESS small-scope
//! hypothesis.
#![cfg(atos_check)]

use atos_check::{thread, CheckOutcome, Model};
use atos_queue::broker::BrokerQueue;
use atos_queue::cas::CasQueue;
use atos_queue::counter::CounterQueue;
use atos_queue::PopState;

fn bounded(preemptions: usize) -> Model {
    let mut m = Model::new();
    m.preemption_bound = Some(preemptions);
    m.max_iterations = 2_000_000;
    m
}

/// Two concurrent group pushes: every interleaving publishes both groups,
/// keeps each group contiguous and in order, and loses nothing.
#[test]
fn counter_push_group_linearizable() {
    bounded(2)
        .check(|| {
            let q = CounterQueue::with_capacity(4);
            thread::scope(|s| {
                s.spawn(|| q.push_group(&[1u64, 2]).unwrap());
                s.spawn(|| q.push(3u64).unwrap());
            });
            assert_eq!(q.published(), 3, "both groups published after join");
            let mut h = PopState::new();
            let mut out = Vec::new();
            assert_eq!(q.pop_group(&mut h, 4, &mut out), 3);
            // The 2-item group occupies contiguous slots in push order.
            let i1 = out.iter().position(|&v| v == 1).expect("1 present");
            assert_eq!(out.get(i1 + 1), Some(&2), "group stays contiguous: {out:?}");
            let mut sorted = out.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2, 3], "no loss, no duplication: {out:?}");
        })
        .assert_passed();
}

/// A pusher racing a popper: the popper only ever observes fully written
/// data (publication safety — any torn/unpublished read would be reported
/// as a race or uninitialized read), and nothing is lost or duplicated.
#[test]
fn counter_push_pop_publication_safe() {
    let out = bounded(2)
        .check(|| {
            let q = CounterQueue::with_capacity(4);
            let mut popped = Vec::new();
            thread::scope(|s| {
                s.spawn(|| q.push_group(&[7u64, 8]).unwrap());
                // Main thread pops concurrently with the push.
                let mut h = PopState::new();
                q.pop_group(&mut h, 2, &mut popped);
                h.abandon();
            });
            // FIFO: a concurrent popper sees a prefix of the group.
            assert!(
                popped == [] || popped == [7] || popped == [7, 8],
                "popped a non-prefix: {popped:?}"
            );
            let mut h = PopState::new();
            q.pop_group(&mut h, 2, &mut popped);
            popped.sort_unstable();
            assert_eq!(popped, vec![7, 8], "conservation after quiescence");
        });
    // Guard against a silently-inert cfg making this suite vacuous: the
    // pusher/popper race must branch into many explored interleavings.
    match out {
        CheckOutcome::Passed { executions } => {
            assert!(executions > 10, "suspiciously few interleavings: {executions}")
        }
        CheckOutcome::Failed(f) => panic!("{f}"),
    }
}

/// Two pushers racing one popper: the popper never observes anything but
/// pushed values, and the drained queue conserves items.
#[test]
fn counter_two_pushers_one_popper() {
    bounded(2)
        .check(|| {
            let q = CounterQueue::with_capacity(4);
            let mut popped = Vec::new();
            thread::scope(|s| {
                s.spawn(|| q.push(1u64).unwrap());
                s.spawn(|| q.push(2u64).unwrap());
                let mut h = PopState::new();
                q.pop_group(&mut h, 2, &mut popped);
                h.abandon();
            });
            for &v in &popped {
                assert!(v == 1 || v == 2, "unpushed value {v}");
            }
            let mut h = PopState::new();
            q.pop_group(&mut h, 2, &mut popped);
            popped.sort_unstable();
            assert_eq!(popped, vec![1, 2]);
        })
        .assert_passed();
}

/// CAS queue: concurrent group pushes linearize exactly like the counter
/// queue (same protocol, CAS reservations).
#[test]
fn cas_push_group_linearizable() {
    bounded(2)
        .check(|| {
            let q = CasQueue::with_capacity(4);
            thread::scope(|s| {
                s.spawn(|| q.push_group(&[1u64, 2]).unwrap());
                s.spawn(|| q.push(3u64).unwrap());
            });
            assert_eq!(q.published(), 3);
            let mut h = PopState::new();
            let mut out = Vec::new();
            assert_eq!(q.pop_group(&mut h, 4, &mut out), 3);
            let i1 = out.iter().position(|&v| v == 1).expect("1 present");
            assert_eq!(out.get(i1 + 1), Some(&2), "group stays contiguous: {out:?}");
            let mut sorted = out;
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2, 3]);
        })
        .assert_passed();
}

/// The audited edge from `cas.rs::pop_group`: the reservation CAS on
/// `start` succeeds with *Relaxed* ordering, and that is sound — the
/// Acquire load of `end` supplies the happens-before edge for the slot
/// reads. This suite proves it by exhausting every interleaving of a
/// pusher against a popper; weakening the `end` load instead is mutation 3
/// (see `mutation_detection.rs`), which fails.
#[test]
fn cas_pop_reservation_relaxed_is_sound() {
    bounded(2)
        .check(|| {
            let q = CasQueue::with_capacity(4);
            let mut popped = Vec::new();
            thread::scope(|s| {
                s.spawn(|| q.push_group(&[7u64, 8]).unwrap());
                let mut h = PopState::new();
                q.pop_group(&mut h, 2, &mut popped);
            });
            assert!(
                popped == [] || popped == [7] || popped == [7, 8],
                "popped a non-prefix: {popped:?}"
            );
            let mut h = PopState::new();
            q.pop_group(&mut h, 2, &mut popped);
            popped.sort_unstable();
            assert_eq!(popped, vec![7, 8]);
        })
        .assert_passed();
}

/// CAS queue: two racing poppers claim disjoint ranges (each item popped
/// exactly once) even though the winning CAS is Relaxed.
#[test]
fn cas_racing_poppers_claim_disjoint() {
    bounded(2)
        .check(|| {
            let q = CasQueue::with_capacity(4);
            q.push_group(&[1u64, 2]).unwrap();
            let mut mine = Vec::new();
            let mut theirs = Vec::new();
            thread::scope(|s| {
                let t = s.spawn(|| {
                    let mut out = Vec::new();
                    let mut h = PopState::new();
                    q.pop_group(&mut h, 1, &mut out);
                    out
                });
                let mut h = PopState::new();
                q.pop_group(&mut h, 1, &mut mine);
                theirs = t.join().unwrap();
            });
            let mut all: Vec<u64> = mine.iter().chain(theirs.iter()).copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![1, 2], "each item popped exactly once");
        })
        .assert_passed();
}

/// Broker queue: concurrent pushes assign distinct slots and the Release
/// flag store publishes each slot write.
#[test]
fn broker_push_publication_safe() {
    bounded(2)
        .check(|| {
            let q = BrokerQueue::with_capacity(2);
            thread::scope(|s| {
                s.spawn(|| q.push(5u64).unwrap());
                s.spawn(|| q.push(6u64).unwrap());
            });
            let mut got = vec![q.pop().unwrap(), q.pop().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![5, 6]);
            assert_eq!(q.pop(), None);
        })
        .assert_passed();
}

/// Broker queue: a popper racing the pusher spins on the ready flag and
/// never reads an unpublished slot.
#[test]
fn broker_racing_pop_waits_for_flag() {
    bounded(2)
        .check(|| {
            let q = BrokerQueue::with_capacity(1);
            let mut got = None;
            thread::scope(|s| {
                s.spawn(|| q.push(9u64).unwrap());
                // Spin until the item is visible; yield lets the pusher run.
                loop {
                    if let Some(v) = q.pop() {
                        got = Some(v);
                        break;
                    }
                    thread::yield_now();
                }
            });
            assert_eq!(got, Some(9));
        })
        .assert_passed();
}
