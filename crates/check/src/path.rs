//! The DFS exploration path: an ordered record of every nondeterministic
//! decision of one execution, and the backtracking machinery that drives
//! exhaustive exploration.
//!
//! Two kinds of decision exist:
//!
//! * **Schedule** — which thread performs the next visible operation
//!   (options are thread ids, the currently running thread listed first so
//!   the first-explored execution minimizes context switches);
//! * **Value** — which store a (relaxed or acquire) load observes, as an
//!   index into the candidate-store list computed from the happens-before
//!   state.
//!
//! A path serializes to a *schedule string* like `t0.t0.t1.v1.t0`, which can
//! be replayed verbatim with [`crate::replay`].

/// One recorded decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Branch {
    /// Thread choice: `options[taken]` ran next.
    Schedule {
        /// Enabled thread ids at this point (preemption-budget filtered).
        options: Vec<usize>,
        /// Index into `options` of the choice taken.
        taken: usize,
    },
    /// Load-visibility choice among `n` candidate stores.
    Value {
        /// Number of candidate stores.
        n: usize,
        /// Candidate index taken (0 = oldest visible store).
        taken: usize,
    },
}

impl Branch {
    fn advance(&mut self) -> bool {
        match self {
            Branch::Schedule { options, taken } => {
                if *taken + 1 < options.len() {
                    *taken += 1;
                    true
                } else {
                    false
                }
            }
            Branch::Value { n, taken } => {
                if *taken + 1 < *n {
                    *taken += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// A parsed schedule-string token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    /// `t<tid>` — run thread `tid`.
    Thread(usize),
    /// `v<k>` — the load observes candidate `k`.
    Value(usize),
}

/// Parse a schedule string (`t0.t1.v2...`) into tokens.
pub fn parse_schedule(s: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    for tok in s.split('.').filter(|t| !t.is_empty()) {
        let (kind, num) = tok.split_at(1);
        let n: usize = num
            .parse()
            .map_err(|_| format!("bad schedule token {tok:?}"))?;
        match kind {
            "t" => out.push(Token::Thread(n)),
            "v" => out.push(Token::Value(n)),
            _ => return Err(format!("bad schedule token {tok:?}")),
        }
    }
    Ok(out)
}

/// The decision tape of the current execution plus the DFS backtrack state.
#[derive(Default, Debug)]
pub struct Path {
    branches: Vec<Branch>,
    /// Next branch to consume when re-executing a prefix.
    cursor: usize,
}

impl Path {
    /// Start a new execution over the same (possibly advanced) prefix.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Number of decisions consumed so far in the current execution.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// DFS: follow the recorded schedule decision at the cursor, or append a
    /// new branch taking `options[0]`. Returns the chosen thread id.
    pub fn next_schedule(&mut self, options: Vec<usize>) -> usize {
        if self.cursor < self.branches.len() {
            let b = &self.branches[self.cursor];
            self.cursor += 1;
            match b {
                Branch::Schedule { options: o, taken } => {
                    debug_assert_eq!(
                        o, &options,
                        "nondeterministic model: enabled-thread set diverged on replayed prefix"
                    );
                    o[*taken]
                }
                Branch::Value { .. } => panic!(
                    "nondeterministic model: schedule point where a load was recorded"
                ),
            }
        } else {
            let t = options[0];
            self.branches.push(Branch::Schedule { options, taken: 0 });
            self.cursor += 1;
            t
        }
    }

    /// DFS: follow or append a load-visibility decision among `n` candidates.
    pub fn next_value(&mut self, n: usize) -> usize {
        if self.cursor < self.branches.len() {
            let b = &self.branches[self.cursor];
            self.cursor += 1;
            match b {
                Branch::Value { n: m, taken } => {
                    debug_assert_eq!(
                        *m, n,
                        "nondeterministic model: candidate-store count diverged"
                    );
                    *taken
                }
                Branch::Schedule { .. } => panic!(
                    "nondeterministic model: load point where a schedule was recorded"
                ),
            }
        } else {
            self.branches.push(Branch::Value { n, taken: 0 });
            self.cursor += 1;
            0
        }
    }

    /// Record a decision made by an external chooser (fuzz / replay modes).
    pub fn record(&mut self, b: Branch) {
        self.branches.truncate(self.cursor);
        self.branches.push(b);
        self.cursor += 1;
    }

    /// Backtrack: advance the deepest branch with an untried alternative,
    /// discarding everything after it. Returns `false` when the space is
    /// exhausted.
    pub fn step_back(&mut self) -> bool {
        while let Some(last) = self.branches.last_mut() {
            if last.advance() {
                self.cursor = 0;
                return true;
            }
            self.branches.pop();
        }
        false
    }

    /// Serialize the decisions consumed by the current execution.
    pub fn schedule_string(&self) -> String {
        self.branches[..self.cursor.min(self.branches.len())]
            .iter()
            .map(|b| match b {
                Branch::Schedule { options, taken } => format!("t{}", options[*taken]),
                Branch::Value { taken, .. } => format!("v{taken}"),
            })
            .collect::<Vec<_>>()
            .join(".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_explores_all_leaves() {
        // Two binary decisions => 4 executions.
        let mut path = Path::default();
        let mut seen = Vec::new();
        loop {
            path.rewind();
            let a = path.next_value(2);
            let b = path.next_value(2);
            seen.push((a, b));
            if !path.step_back() {
                break;
            }
        }
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn dfs_handles_variable_depth() {
        // Decision 0 controls whether a second decision exists.
        let mut path = Path::default();
        let mut leaves = 0;
        loop {
            path.rewind();
            let a = path.next_schedule(vec![7, 9]);
            if a == 7 {
                path.next_value(3);
            }
            leaves += 1;
            if !path.step_back() {
                break;
            }
        }
        // 3 leaves under t7, 1 leaf under t9.
        assert_eq!(leaves, 4);
    }

    #[test]
    fn schedule_string_round_trips() {
        let mut path = Path::default();
        path.rewind();
        path.next_schedule(vec![0, 1]);
        path.next_value(3);
        path.next_schedule(vec![1, 0]);
        let s = path.schedule_string();
        assert_eq!(s, "t0.v0.t1");
        let toks = parse_schedule(&s).unwrap();
        assert_eq!(
            toks,
            vec![Token::Thread(0), Token::Value(0), Token::Thread(1)]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_schedule("t0.x1").is_err());
        assert!(parse_schedule("tt").is_err());
        assert_eq!(parse_schedule("").unwrap(), vec![]);
    }
}
