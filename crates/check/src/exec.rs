//! The cooperative execution engine.
//!
//! Each model *execution* runs the user closure on real OS threads, but only
//! one thread is ever runnable at a time: every visible operation (atomic
//! access, cell access, fence, spawn, join, yield) first calls
//! [`Exec::schedule_point`], which consults the [`Path`] to decide which
//! thread performs the next operation and parks everyone else on a condvar.
//! Because all nondeterminism is funneled through the path, executions are
//! exactly reproducible from a schedule string.
//!
//! Preemption bounding (CHESS-style) applies in DFS mode: switching away
//! from a thread that is still enabled and did not voluntarily yield costs
//! one unit of preemption budget; once the budget is spent, schedule points
//! where the current thread remains enabled offer no alternatives.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VClock;
use crate::path::{Branch, Path, Token};

/// Number of times in a row a thread may observe a non-latest store of one
/// location before the checker forces it to read the latest. Keeps spin
/// loops (and the DFS over them) finite without hiding stale-read bugs —
/// two consecutive stale reads are enough to drive any one-shot protocol
/// decision down the stale path.
pub const STALE_BOUND: u32 = 2;

/// Panic payload used to unwind all model threads once an execution is done
/// (failure recorded, or state-space abort). Never observed by user code.
pub struct AbortExecution;

pub(crate) fn panic_abort() -> ! {
    std::panic::panic_any(AbortExecution)
}

/// Category of a model-check failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Two unsynchronized accesses (at least one write) to an `UnsafeCell`.
    DataRace,
    /// A read of an `UnsafeCell` slot that no execution-order write has
    /// initialized — a publication-safety failure (the real program would
    /// read uninitialized memory).
    UninitRead,
    /// User code panicked (assertion failure) on some interleaving.
    Panic,
    /// All live threads are blocked in `join`.
    Deadlock,
    /// The execution exceeded `max_steps` visible operations.
    Livelock,
}

/// A failed model check: what went wrong and the schedule that reproduces it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What class of bug was detected.
    pub kind: FailureKind,
    /// Human-readable report, including the racing source locations where
    /// applicable.
    pub message: String,
    /// Schedule string accepted by [`crate::replay`].
    pub schedule: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}: {}\n  replay with schedule \"{}\"",
            self.kind, self.message, self.schedule
        )
    }
}

/// How nondeterministic decisions are made.
pub enum DecideMode {
    /// Exhaustive DFS over the `Path`.
    Dfs,
    /// Pseudo-random decisions from a deterministic generator; every choice
    /// is recorded so failures still come with a replayable schedule.
    Fuzz(SplitMix64),
    /// Follow a parsed schedule string; decisions beyond the recorded
    /// prefix fall back to choice 0.
    Replay(VecDeque<Token>),
}

/// Deterministic 64-bit generator (splitmix64) for fuzz mode.
#[derive(Clone, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Scheduling status of one model thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Eligible to run.
    Runnable,
    /// Voluntarily deferred (spin hint / `yield_now`); skipped at the next
    /// schedule point if any non-yielded thread can run, then amnestied.
    Yielded,
    /// Blocked joining the given thread id.
    BlockedJoin(usize),
    /// Closure returned.
    Finished,
}

/// Per-thread model state.
pub struct TState {
    /// Scheduling status.
    pub status: Status,
    /// The thread's happens-before clock.
    pub clock: VClock,
    /// Release clocks observed by relaxed loads, applied by `fence(Acquire)`.
    pub pending_acq: VClock,
    /// This thread's clock at its last `fence(Release)`; relaxed stores
    /// publish at least this.
    pub rel_fence: VClock,
}

impl TState {
    fn new() -> Self {
        TState {
            status: Status::Runnable,
            clock: VClock::new(),
            pending_acq: VClock::new(),
            rel_fence: VClock::new(),
        }
    }
}

/// Mutable engine state, guarded by [`Exec::state`].
pub struct ExecState {
    /// Decision tape (owned by the [`crate::Model`] between executions).
    pub path: Path,
    /// Decision source.
    pub mode: DecideMode,
    /// Per-thread states, indexed by tid.
    pub threads: Vec<TState>,
    /// The tid currently allowed to run.
    pub current: usize,
    /// Visible operations executed so far this execution.
    pub steps: usize,
    /// Livelock bound.
    pub max_steps: usize,
    /// CHESS preemption budget (`None` = unbounded).
    pub preemption_bound: Option<usize>,
    preemptions: usize,
    /// Full decision trace of this execution: every schedule decision and
    /// every non-forced value decision, in order. Unlike the DFS path
    /// (which omits decisions forced by the preemption budget), this is a
    /// complete replay recipe, so failure schedules reproduce identically
    /// under any bound.
    trace: Vec<Token>,
    /// First failure of this execution, if any.
    pub failure: Option<Failure>,
    /// Set once a failure (or external stop) is recorded; parked threads
    /// wake and unwind with [`AbortExecution`].
    pub aborting: bool,
    /// Threads whose closure has not yet returned.
    pub live: usize,
    /// OS threads still inside the engine (for teardown).
    pub active: usize,
}

impl ExecState {
    /// Record the first failure and switch the execution into abort mode.
    pub fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            let schedule = self
                .trace
                .iter()
                .map(|t| match t {
                    Token::Thread(i) => format!("t{i}"),
                    Token::Value(k) => format!("v{k}"),
                })
                .collect::<Vec<_>>()
                .join(".");
            self.failure = Some(Failure {
                kind,
                message,
                schedule,
            });
        }
        self.aborting = true;
    }

    /// Decide which of `n` load candidates is observed (index 0 = latest
    /// store). Forced when `n == 1`; such points record no branch, so they
    /// never appear in schedule strings.
    pub fn decide_value(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        if n == 1 {
            return 0;
        }
        let k = match &mut self.mode {
            DecideMode::Dfs => self.path.next_value(n),
            DecideMode::Fuzz(rng) => {
                let k = rng.below(n);
                self.path.record(Branch::Value { n, taken: k });
                k
            }
            DecideMode::Replay(tokens) => {
                let k = match tokens.pop_front() {
                    Some(Token::Value(k)) => {
                        assert!(k < n, "replay diverged: value token v{k} of {n} candidates");
                        k
                    }
                    Some(Token::Thread(t)) => {
                        panic!("replay diverged: thread token t{t} at a load point")
                    }
                    None => 0,
                };
                self.path.record(Branch::Value { n, taken: k });
                k
            }
        };
        self.trace.push(Token::Value(k));
        k
    }

    /// Decide which thread runs next. `from` is the calling thread;
    /// `from_enabled` says whether it could legally keep running (false for
    /// joins/finishes and voluntary yields — those switches are free).
    /// Returns `None` when nothing can run.
    fn decide_schedule(&mut self, from: usize, from_enabled: bool) -> Option<usize> {
        let mut options: Vec<usize> = (0..self.threads.len())
            .filter(|&t| self.threads[t].status == Status::Runnable)
            .collect();
        if options.is_empty() {
            // Amnesty pool: only yielded threads remain runnable.
            options = (0..self.threads.len())
                .filter(|&t| self.threads[t].status == Status::Yielded)
                .collect();
        }
        if options.is_empty() {
            return None;
        }
        // Current thread first: the first DFS execution minimizes switches.
        if let Some(pos) = options.iter().position(|&t| t == from) {
            options.remove(pos);
            options.insert(0, from);
        }
        // Preemption bounding (DFS only): with the budget spent, a point
        // where the current thread may continue offers no alternatives.
        if matches!(self.mode, DecideMode::Dfs) {
            if let Some(bound) = self.preemption_bound {
                if self.preemptions >= bound && from_enabled && options.contains(&from) {
                    options = vec![from];
                }
            }
        }
        // Replay consumes one thread token per schedule decision no matter
        // how many options this mode sees: the recording side logs *every*
        // decision (including DFS points forced by an exhausted preemption
        // budget), so the streams stay aligned under any bound.
        let chosen = if let DecideMode::Replay(tokens) = &mut self.mode {
            let t = match tokens.pop_front() {
                Some(Token::Thread(t)) => {
                    assert!(
                        options.contains(&t),
                        "replay diverged: t{t} not enabled (options {options:?})"
                    );
                    t
                }
                Some(Token::Value(k)) => {
                    panic!("replay diverged: value token v{k} at a schedule point")
                }
                None => options[0],
            };
            if options.len() > 1 {
                let k = options.iter().position(|&x| x == t).unwrap();
                self.path.record(Branch::Schedule { options, taken: k });
            }
            t
        } else if options.len() == 1 {
            options[0]
        } else {
            match &mut self.mode {
                DecideMode::Dfs => self.path.next_schedule(options.clone()),
                DecideMode::Fuzz(rng) => {
                    let k = rng.below(options.len());
                    let t = options[k];
                    self.path.record(Branch::Schedule { options, taken: k });
                    t
                }
                DecideMode::Replay(_) => unreachable!("handled above"),
            }
        };
        self.trace.push(Token::Thread(chosen));
        if chosen != from && from_enabled {
            self.preemptions += 1;
        }
        // Yield amnesty: the decision is made; everyone competes again next
        // time.
        for t in &mut self.threads {
            if t.status == Status::Yielded {
                t.status = Status::Runnable;
            }
        }
        Some(chosen)
    }
}

/// One execution's engine: shared by all its model threads.
pub struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
}

impl Exec {
    /// Build the engine for one execution. `path` carries DFS state across
    /// executions.
    pub fn new(
        path: Path,
        mode: DecideMode,
        max_steps: usize,
        preemption_bound: Option<usize>,
    ) -> Self {
        Exec {
            state: Mutex::new(ExecState {
                path,
                mode,
                threads: Vec::new(),
                current: 0,
                steps: 0,
                max_steps,
                preemption_bound,
                preemptions: 0,
                trace: Vec::new(),
                failure: None,
                aborting: false,
                live: 0,
                active: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Lock the engine state (poison-tolerant: a panicking model thread must
    /// not wedge the harness).
    pub fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register the root thread (tid 0). Call before spawning it.
    pub fn register_root(&self) {
        let mut st = self.lock();
        debug_assert!(st.threads.is_empty());
        st.threads.push(TState::new());
        st.current = 0;
        st.live = 1;
        st.active = 1;
    }

    /// Register a child thread spawned by `parent`; returns the new tid.
    /// The child inherits the parent's clock (spawn is a synchronization
    /// edge).
    pub fn spawn_thread(&self, parent: usize) -> usize {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            panic_abort();
        }
        let tid = st.threads.len();
        let mut t = TState::new();
        st.threads[parent].clock.tick(parent);
        t.clock = st.threads[parent].clock.clone();
        t.clock.tick(tid);
        st.threads.push(t);
        st.live += 1;
        st.active += 1;
        tid
    }

    /// Record a failure and abort the execution. Never returns.
    pub fn fail_and_abort(&self, kind: FailureKind, message: String) -> ! {
        let st = self.lock();
        self.fail_with(st, kind, message)
    }

    /// Like [`Exec::fail_and_abort`] for callers already holding the state
    /// lock. Never returns.
    pub fn fail_with(
        &self,
        mut st: MutexGuard<'_, ExecState>,
        kind: FailureKind,
        message: String,
    ) -> ! {
        st.fail(kind, message);
        self.cv.notify_all();
        drop(st);
        panic_abort()
    }

    /// Record a user panic (assertion failure) as the execution's failure.
    pub fn fail_from_panic(&self, tid: usize, payload: &(dyn Any + Send)) {
        let msg = payload_message(payload);
        let mut st = self.lock();
        st.fail(FailureKind::Panic, format!("thread t{tid} panicked: {msg}"));
        self.cv.notify_all();
    }

    /// A schedule point: the caller is about to perform a visible operation.
    /// May run other threads first; returns once the caller is scheduled.
    pub fn schedule_point(&self, tid: usize) {
        self.schedule_inner(tid, false)
    }

    /// A voluntary yield (spin-loop hint / `yield_now`): deprioritized at
    /// this one decision.
    pub fn yield_point(&self, tid: usize) {
        self.schedule_inner(tid, true)
    }

    fn schedule_inner(&self, tid: usize, yielding: bool) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            panic_abort();
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let steps = st.steps;
            st.fail(
                FailureKind::Livelock,
                format!("execution exceeded {steps} visible operations"),
            );
            self.cv.notify_all();
            drop(st);
            panic_abort();
        }
        if yielding {
            st.threads[tid].status = Status::Yielded;
        }
        // A runnable caller can always be re-chosen, so this never deadlocks.
        let chosen = st.decide_schedule(tid, !yielding).expect("caller is enabled");
        if chosen != tid {
            st.current = chosen;
            self.cv.notify_all();
            st = self.wait_for_turn_locked(st, tid);
        }
        drop(st);
    }

    /// Park until `current == tid` (first run of a spawned thread, or after
    /// losing a schedule decision). Aborts cleanly if the execution died.
    pub fn wait_for_turn(&self, tid: usize) {
        let st = self.lock();
        drop(self.wait_for_turn_locked(st, tid));
    }

    fn wait_for_turn_locked<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> MutexGuard<'a, ExecState> {
        while st.current != tid && !st.aborting {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborting {
            drop(st);
            panic_abort();
        }
        st
    }

    /// Model-level join: block until `target` finishes, then acquire its
    /// final clock (join is a synchronization edge).
    pub fn join_thread(&self, waiter: usize, target: usize) {
        self.schedule_point(waiter);
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            panic_abort();
        }
        if st.threads[target].status != Status::Finished {
            st.threads[waiter].status = Status::BlockedJoin(target);
            match st.decide_schedule(waiter, false) {
                Some(next) => {
                    st.current = next;
                    self.cv.notify_all();
                }
                None => {
                    st.fail(
                        FailureKind::Deadlock,
                        format!("all live threads blocked (t{waiter} joining t{target})"),
                    );
                    self.cv.notify_all();
                    drop(st);
                    panic_abort();
                }
            }
            st = self.wait_for_turn_locked(st, waiter);
        }
        let target_clock = st.threads[target].clock.clone();
        st.threads[waiter].clock.join(&target_clock);
        st.threads[waiter].clock.tick(waiter);
        drop(st);
    }

    /// The closure of `tid` returned: wake joiners and hand off the token.
    pub fn thread_finished(&self, tid: usize) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            return;
        }
        st.threads[tid].status = Status::Finished;
        st.live -= 1;
        for t in &mut st.threads {
            if t.status == Status::BlockedJoin(tid) {
                t.status = Status::Runnable;
            }
        }
        if st.live == 0 {
            self.cv.notify_all();
            return;
        }
        match st.decide_schedule(tid, false) {
            Some(next) => {
                st.current = next;
                self.cv.notify_all();
            }
            None => {
                st.fail(
                    FailureKind::Deadlock,
                    format!("all live threads blocked after t{tid} finished"),
                );
                self.cv.notify_all();
                drop(st);
                panic_abort();
            }
        }
    }

    /// Final bookkeeping as an OS thread leaves the engine. Must be the
    /// thread's very last touch of the state.
    pub fn exit_thread(&self) {
        let mut st = self.lock();
        st.active -= 1;
        self.cv.notify_all();
    }

    /// Runner side: block until every OS thread has left the engine.
    pub fn wait_all_exited(&self) {
        let mut st = self.lock();
        while st.active > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Body of every model OS thread: wait for the first turn, run the closure,
/// translate panics into failures, and hand the token onward.
pub fn run_thread<T>(exec: &Arc<Exec>, tid: usize, body: impl FnOnce() -> T) -> Option<T> {
    crate::rt::set_ctx(Some(crate::rt::Ctx {
        exec: Arc::clone(exec),
        tid,
    }));
    // Everything that can raise `AbortExecution` must run inside the
    // catch: the initial `wait_for_turn` aborts when the execution dies
    // before this thread is ever scheduled, and `thread_finished` aborts
    // on a deadlock-at-finish verdict. If either escaped, `exit_thread`
    // would be skipped and `wait_all_exited` would hang on the leaked
    // `active` count.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.wait_for_turn(tid);
        let v = body();
        exec.thread_finished(tid);
        v
    }));
    let out = match result {
        Ok(v) => Some(v),
        Err(payload) => {
            if !payload.is::<AbortExecution>() {
                exec.fail_from_panic(tid, payload.as_ref());
            }
            None
        }
    };
    crate::rt::set_ctx(None);
    exec.exit_thread();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_below_in_range() {
        let mut r = SplitMix64(7);
        for _ in 0..64 {
            assert!(r.below(3) < 3);
        }
    }
}
