//! Vector clocks for happens-before tracking.
//!
//! Each model thread `t` owns component `t` of its clock; the component is
//! incremented ("ticked") once per visible operation, so `(tid, epoch)`
//! uniquely names an operation of an execution. Synchronization edges
//! (release→acquire, spawn, join) are modeled by joining clocks.

/// A vector clock over model-thread ids.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct VClock {
    t: Vec<u32>,
}

impl VClock {
    /// The empty clock (happens-before everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Component for `tid` (0 if never set).
    pub fn get(&self, tid: usize) -> u32 {
        self.t.get(tid).copied().unwrap_or(0)
    }

    /// Set component `tid` to `v`.
    pub fn set(&mut self, tid: usize, v: u32) {
        if self.t.len() <= tid {
            self.t.resize(tid + 1, 0);
        }
        self.t[tid] = v;
    }

    /// Increment component `tid`, returning the new epoch.
    pub fn tick(&mut self, tid: usize) -> u32 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    /// Pointwise maximum (the happens-before join).
    pub fn join(&mut self, other: &VClock) {
        if self.t.len() < other.t.len() {
            self.t.resize(other.t.len(), 0);
        }
        for (a, b) in self.t.iter_mut().zip(&other.t) {
            *a = (*a).max(*b);
        }
    }

    /// Whether this clock has seen operation `(tid, epoch)` — i.e. that
    /// operation happened-before the holder's current point.
    pub fn dominates(&self, tid: usize, epoch: u32) -> bool {
        self.get(tid) >= epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        assert_eq!(c.tick(3), 1);
        assert_eq!(c.tick(3), 2);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VClock::new();
        b.set(0, 2);
        b.set(1, 7);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 7);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn dominates_tracks_epochs() {
        let mut a = VClock::new();
        a.set(1, 4);
        assert!(a.dominates(1, 4));
        assert!(a.dominates(1, 3));
        assert!(!a.dominates(1, 5));
        // Component 9 was never set: only epoch 0 (the "no-op") is dominated.
        assert!(a.dominates(9, 0));
        assert!(!a.dominates(9, 1));
    }
}
