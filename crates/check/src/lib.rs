//! `atos-check`: a deterministic concurrency model checker and
//! happens-before race detector for the atos lock-free queue substrate.
//!
//! The workspace's queues (`atos-queue`) and host runtime (`atos-core`)
//! rest on hand-chosen atomic orderings that fail only under rare
//! interleavings. This crate checks them the way loom/CHESS do, vendored
//! in-tree because the workspace builds offline:
//!
//! * [`sync`] provides shadow `Atomic*`/`UnsafeCell`/`fence` types that log
//!   every operation with its `Ordering` and route it through a cooperative
//!   scheduler (one thread runnable at a time);
//! * [`Model::check`] DFS-explores every interleaving within a CHESS-style
//!   preemption budget, and every weaker-than-SC load result the vector-
//!   clock memory model admits (see [`sync`] for the approximation);
//! * data races and publication bugs on `UnsafeCell` slots are reported
//!   with the two racing source locations and a schedule string that
//!   [`replay`] reproduces deterministically;
//! * [`fuzz_schedules`] drives the same engine from a seeded RNG for
//!   bounds too large to enumerate.
//!
//! ```
//! use atos_check::sync::{AtomicU64, Ordering, UnsafeCell};
//! use std::sync::Arc;
//!
//! atos_check::model!(|| {
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let cell = Arc::new(UnsafeCell::new(0u64));
//!     let (f2, c2) = (Arc::clone(&flag), Arc::clone(&cell));
//!     let t = atos_check::thread::spawn(move || {
//!         c2.with_mut(|p| unsafe { *p = 7 });
//!         f2.store(1, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(cell.with(|p| unsafe { *p }), 7);
//!     }
//!     t.join().unwrap();
//! });
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod exec;
pub mod lint;
pub mod path;
pub mod rt;
pub mod sync;
pub mod thread;

use std::sync::{Arc, Once};

use exec::DecideMode;
pub use exec::{Failure, FailureKind, SplitMix64};
use path::Path;

/// Outcome of a model check.
#[derive(Debug)]
pub enum CheckOutcome {
    /// Every explored execution satisfied the test body.
    Passed {
        /// Number of executions explored.
        executions: usize,
    },
    /// Some execution failed; the failure carries a replayable schedule.
    Failed(Failure),
}

impl CheckOutcome {
    /// The failure, if any.
    pub fn failure(&self) -> Option<&Failure> {
        match self {
            CheckOutcome::Passed { .. } => None,
            CheckOutcome::Failed(f) => Some(f),
        }
    }

    /// Panic (test-failure style) if the check failed.
    #[track_caller]
    pub fn assert_passed(&self) {
        if let CheckOutcome::Failed(f) = self {
            panic!("model check failed — {f}");
        }
    }
}

/// A configured model check.
pub struct Model {
    /// Shown in reports.
    pub name: &'static str,
    /// CHESS preemption budget for DFS mode; `None` explores every
    /// interleaving. Two preemptions expose the vast majority of real
    /// concurrency bugs at a fraction of the cost.
    pub preemption_bound: Option<usize>,
    /// Per-execution visible-operation bound (livelock detector).
    pub max_steps: usize,
    /// Cap on explored executions; exceeding it is a hard error telling
    /// the author to shrink the test bounds.
    pub max_iterations: usize,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Model {
    /// Default bounds: 2 preemptions, 20k steps, 200k executions.
    pub fn new() -> Self {
        Model {
            name: "model",
            preemption_bound: Some(2),
            max_steps: 20_000,
            max_iterations: 200_000,
        }
    }

    /// Exhaustively explore `f` (DFS over schedules and load results).
    pub fn check<F>(&self, f: F) -> CheckOutcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut path = Path::default();
        let mut executions = 0usize;
        loop {
            path.rewind();
            let (returned, failure) = run_once(
                Arc::clone(&f),
                path,
                DecideMode::Dfs,
                self.max_steps,
                self.preemption_bound,
            );
            path = returned;
            executions += 1;
            if let Some(failure) = failure {
                return CheckOutcome::Failed(failure);
            }
            if executions >= self.max_iterations {
                panic!(
                    "model '{}' exceeded {} executions without converging; \
                     shrink the test bounds",
                    self.name, self.max_iterations
                );
            }
            if !path.step_back() {
                return CheckOutcome::Passed { executions };
            }
        }
    }

    /// Run exactly one execution following `schedule` (a failure's
    /// schedule string). Decisions beyond the recorded prefix default to
    /// "keep running the current thread / read the newest store".
    pub fn replay<F>(&self, schedule: &str, f: F) -> CheckOutcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_hook();
        let tokens = path::parse_schedule(schedule).expect("invalid schedule string");
        let (_, failure) = run_once(
            Arc::new(f),
            Path::default(),
            DecideMode::Replay(tokens.into()),
            self.max_steps,
            None,
        );
        match failure {
            Some(failure) => CheckOutcome::Failed(failure),
            None => CheckOutcome::Passed { executions: 1 },
        }
    }

    /// Run `n` independent executions with pseudo-random (but seeded and
    /// fully replayable) schedules — for bounds exhaustive DFS can't cover.
    pub fn fuzz<F>(&self, seed: u64, n: usize, f: F) -> CheckOutcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut seeder = SplitMix64(seed);
        for _ in 0..n {
            let rng = SplitMix64(seeder.next_u64());
            let (_, failure) = run_once(
                Arc::clone(&f),
                Path::default(),
                DecideMode::Fuzz(rng),
                self.max_steps,
                None,
            );
            if let Some(failure) = failure {
                return CheckOutcome::Failed(failure);
            }
        }
        CheckOutcome::Passed { executions: n }
    }
}

/// Exhaustively check `f` with default bounds; panic on failure.
pub fn check<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Model::new().check(f).assert_passed()
}

/// Replay one schedule string against `f` (see [`Model::replay`]).
pub fn replay<F>(schedule: &str, f: F) -> CheckOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    Model::new().replay(schedule, f)
}

/// Schedule-fuzz `f`: `n` seeded pseudo-random executions (see
/// [`Model::fuzz`]).
pub fn fuzz_schedules<F>(seed: u64, n: usize, f: F) -> CheckOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    Model::new().fuzz(seed, n, f)
}

/// Model-check a closure, panicking with a replayable report on failure.
///
/// * `model!(|| { ... })` — default bounds (preemption budget 2);
/// * `model!(preemptions = N, || { ... })` — explicit budget;
/// * `model!(unbounded, || { ... })` — full interleaving exploration.
#[macro_export]
macro_rules! model {
    (preemptions = $n:expr, $f:expr) => {{
        let mut m = $crate::Model::new();
        m.preemption_bound = Some($n);
        m.check($f).assert_passed()
    }};
    (unbounded, $f:expr) => {{
        let mut m = $crate::Model::new();
        m.preemption_bound = None;
        m.check($f).assert_passed()
    }};
    ($f:expr) => {{
        $crate::Model::new().check($f).assert_passed()
    }};
}

fn run_once(
    f: Arc<dyn Fn() + Send + Sync>,
    path: Path,
    mode: DecideMode,
    max_steps: usize,
    preemption_bound: Option<usize>,
) -> (Path, Option<Failure>) {
    let exec = Arc::new(exec::Exec::new(path, mode, max_steps, preemption_bound));
    exec.register_root();
    let root = Arc::clone(&exec);
    let handle = std::thread::Builder::new()
        .name("atos-check-t0".into())
        .spawn(move || {
            exec::run_thread(&root, 0, move || f());
        })
        .expect("spawn model root thread");
    exec.wait_all_exited();
    let _ = handle.join();
    let mut st = exec.lock();
    (std::mem::take(&mut st.path), st.failure.take())
}

/// Silence the `AbortExecution` panics that tear executions down; real
/// panics still print through the previous hook.
fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<exec::AbortExecution>() {
                return;
            }
            prev(info);
        }));
    });
}
