//! Shadow threading: model-scheduled `spawn`, `scope`, and `yield_now`.
//!
//! Spawned closures run on real OS threads, but every visible operation
//! routes through the model scheduler, so only one thread makes progress at
//! a time and spawn/join contribute happens-before edges.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::exec::{run_thread, Exec};
use crate::rt;

/// Handle to a model thread spawned with [`spawn`].
pub struct JoinHandle<T> {
    exec: Arc<Exec>,
    tid: usize,
    inner: std::thread::JoinHandle<Option<T>>,
}

impl<T> JoinHandle<T> {
    /// Model-level join: blocks (in model time) until the thread finishes,
    /// acquiring its final clock, then reaps the OS thread.
    pub fn join(self) -> std::thread::Result<T> {
        let ctx = rt::require();
        self.exec.join_thread(ctx.tid, self.tid);
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            // The closure failed; the execution is aborting and the waiter
            // above has already unwound — this arm is unreachable in
            // practice, but keep join total.
            Ok(None) => Err(Box::new("model thread failed")),
            Err(e) => Err(e),
        }
    }
}

/// Spawn a model thread (shadow of `std::thread::spawn`).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = rt::require();
    let tid = ctx.exec.spawn_thread(ctx.tid);
    let exec = Arc::clone(&ctx.exec);
    let inner = std::thread::Builder::new()
        .name(format!("atos-check-t{tid}"))
        .spawn(move || run_thread(&exec, tid, f))
        .expect("spawn model thread");
    JoinHandle {
        exec: ctx.exec,
        tid,
        inner,
    }
}

/// Voluntary yield (shadow of `std::thread::yield_now`): deprioritizes the
/// caller at the next schedule decision so quiescence spins make progress.
pub fn yield_now() {
    let ctx = rt::require();
    ctx.exec.yield_point(ctx.tid);
}

/// Scope for spawning borrowing model threads (shadow of
/// `std::thread::scope`).
pub struct Scope<'scope, 'env: 'scope> {
    exec: Arc<Exec>,
    std: &'scope std::thread::Scope<'scope, 'env>,
    spawned: std::cell::RefCell<Vec<usize>>,
    _env: PhantomData<&'env ()>,
}

/// Handle to a model thread spawned inside a [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    exec: Arc<Exec>,
    tid: usize,
    inner: std::thread::ScopedJoinHandle<'scope, Option<T>>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Model-level join (same contract as [`JoinHandle::join`]).
    pub fn join(self) -> std::thread::Result<T> {
        let ctx = rt::require();
        self.exec.join_thread(ctx.tid, self.tid);
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            Ok(None) => Err(Box::new("model thread failed")),
            Err(e) => Err(e),
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a borrowing model thread.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let ctx = rt::require();
        let tid = ctx.exec.spawn_thread(ctx.tid);
        self.spawned.borrow_mut().push(tid);
        let exec = Arc::clone(&ctx.exec);
        let inner = self.std.spawn(move || run_thread(&exec, tid, f));
        ScopedJoinHandle {
            exec: Arc::clone(&ctx.exec),
            tid,
            inner,
        }
    }
}

/// Run `f` with a scope; all threads it spawned are model-joined before
/// `scope` returns (explicitly joined ones are joined again, which is a
/// harmless clock join on a finished thread).
///
/// Unlike std, the closure takes `&Scope<'scope, 'env>` with the reference
/// lifetime independent of `'scope` — strictly more permissive at call
/// sites, so facade users can switch between the two implementations.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let ctx = rt::require();
    std::thread::scope(|s| {
        let scope = Scope {
            exec: Arc::clone(&ctx.exec),
            std: s,
            spawned: std::cell::RefCell::new(Vec::new()),
            _env: PhantomData,
        };
        let r = f(&scope);
        let tids = scope.spawned.borrow().clone();
        for tid in tids {
            scope.exec.join_thread(ctx.tid, tid);
        }
        r
    })
}
