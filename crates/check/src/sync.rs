//! Shadow synchronization types.
//!
//! Drop-in stand-ins for `std::sync::atomic` / `std::cell::UnsafeCell` that
//! funnel every operation through the model scheduler and the vector-clock
//! memory model. The approximation (documented in the crate docs and
//! DESIGN.md):
//!
//! * **Per-location store history.** Every atomic keeps the full list of
//!   stores of the current execution. A load may observe any store between
//!   its *coherence floor* (the newest store it already read or that
//!   happens-before it) and the newest store — the checker explores each
//!   choice. Candidate 0 is always the newest store, so the first DFS
//!   execution behaves sequentially-consistently.
//! * **Release/acquire edges.** A `Release` store publishes the writer's
//!   clock; an `Acquire` load that observes it joins that clock. Relaxed
//!   loads bank the clock in `pending_acq` (claimed by a later
//!   `fence(Acquire)`); relaxed stores publish the clock of the writer's
//!   last `fence(Release)`. RMWs always forward the previous store's
//!   message (release-sequence continuation).
//! * **Modification order = execution order**, RMWs and failed CAS read the
//!   newest store, `SeqCst` is treated as `AcqRel` (no global SC order),
//!   and weak CAS never fails spuriously. These make the model slightly
//!   weaker than C11 for SC-fenced algorithms — the atos queues use none.
//! * **Stale-read bound.** A thread may observe a non-newest store of one
//!   location at most [`STALE_BOUND`] times in a row, which keeps spin
//!   loops (and the DFS over them) finite.
//!
//! `UnsafeCell` accesses are checked FastTrack-style: an access pair with
//! neither ordered before the other (at least one a write) is a data race,
//! reported with both source locations; a read of a never-written cell is a
//! publication-safety failure. Checks run *before* the closure, so a buggy
//! schedule is reported rather than executed.

use std::cell::{Cell, RefCell};
use std::panic::Location;

pub use std::sync::atomic::Ordering;

use crate::clock::VClock;
use crate::exec::FailureKind;
pub use crate::exec::STALE_BOUND;
use crate::rt;

fn is_acquire(order: Ordering) -> bool {
    matches!(order, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(order: Ordering) -> bool {
    matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// One store in a location's modification order.
struct Store {
    val: u64,
    /// Writer tid (`usize::MAX` for the initial value, known to everyone).
    by: usize,
    /// Writer clock component at the store.
    epoch: u32,
    /// Clock published to acquirers of this store.
    msg: VClock,
}

impl Store {
    fn init(val: u64) -> Self {
        Store {
            val,
            by: usize::MAX,
            epoch: 0,
            msg: VClock::new(),
        }
    }
}

#[derive(Default)]
struct AtomState {
    stores: Vec<Store>,
    /// Per tid: index of the newest store this thread has read (coherence).
    last_read: Vec<usize>,
    /// Per tid: consecutive non-newest reads (see [`STALE_BOUND`]).
    stale: Vec<u32>,
}

impl AtomState {
    fn ensure(&mut self, tid: usize) {
        if self.last_read.len() <= tid {
            self.last_read.resize(tid + 1, 0);
            self.stale.resize(tid + 1, 0);
        }
    }
}

/// Untyped atomic location; the typed wrappers below convert through `u64`
/// bits (bijective per width, so bit equality is value equality).
struct AtomCore {
    state: RefCell<AtomState>,
}

// SAFETY: all access to `state` happens either under `&mut self` or inside
// a model operation, and the scheduler runs exactly one model thread at a
// time — the RefCell is never borrowed concurrently.
unsafe impl Send for AtomCore {}
unsafe impl Sync for AtomCore {}

impl AtomCore {
    fn new(bits: u64) -> Self {
        AtomCore {
            state: RefCell::new(AtomState {
                stores: vec![Store::init(bits)],
                last_read: Vec::new(),
                stale: Vec::new(),
            }),
        }
    }

    /// Newest committed value (no scheduling; for `get_mut` / `Debug`).
    fn latest(&self) -> u64 {
        self.state.borrow().stores.last().expect("nonempty history").val
    }

    /// Reset the history to a single initial store after a `get_mut` write.
    /// `&mut` access implies external synchronization, so the fresh store is
    /// treated as known to every thread.
    fn reinit(&self, bits: u64) {
        let mut st = self.state.borrow_mut();
        st.stores.clear();
        st.stores.push(Store::init(bits));
        st.last_read.clear();
        st.stale.clear();
    }

    fn load(&self, order: Ordering) -> u64 {
        let ctx = rt::require();
        ctx.exec.schedule_point(ctx.tid);
        let tid = ctx.tid;
        let mut eng = ctx.exec.lock();
        let mut st = self.state.borrow_mut();
        st.ensure(tid);
        eng.threads[tid].clock.tick(tid);
        let clock = eng.threads[tid].clock.clone();
        let latest = st.stores.len() - 1;
        // Coherence floor: newest store already read, or newest store that
        // happens-before this load.
        let seen = st.last_read[tid];
        let mut floor = seen;
        for i in seen..=latest {
            let s = &st.stores[i];
            if clock.dominates(s.by, s.epoch) {
                floor = i;
            }
        }
        let lo = if st.stale[tid] >= STALE_BOUND { latest } else { floor };
        let k = eng.decide_value(latest - lo + 1);
        let idx = latest - k;
        st.last_read[tid] = idx;
        st.stale[tid] = if idx < latest { st.stale[tid] + 1 } else { 0 };
        let val = st.stores[idx].val;
        let msg = st.stores[idx].msg.clone();
        drop(st);
        let t = &mut eng.threads[tid];
        t.pending_acq.join(&msg);
        if is_acquire(order) {
            t.clock.join(&msg);
        }
        val
    }

    fn store(&self, bits: u64, order: Ordering) {
        let ctx = rt::require();
        ctx.exec.schedule_point(ctx.tid);
        let tid = ctx.tid;
        let mut eng = ctx.exec.lock();
        let mut st = self.state.borrow_mut();
        st.ensure(tid);
        let t = &mut eng.threads[tid];
        let epoch = t.clock.tick(tid);
        // A plain store starts a fresh release sequence: it publishes the
        // writer's clock (release) or its last release-fence clock.
        let msg = if is_release(order) {
            t.clock.clone()
        } else {
            t.rel_fence.clone()
        };
        st.stores.push(Store {
            val: bits,
            by: tid,
            epoch,
            msg,
        });
        st.last_read[tid] = st.stores.len() - 1;
        st.stale[tid] = 0;
    }

    /// Read-modify-write on the newest store (modification order =
    /// execution order).
    fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        let ctx = rt::require();
        ctx.exec.schedule_point(ctx.tid);
        let tid = ctx.tid;
        let mut eng = ctx.exec.lock();
        let mut st = self.state.borrow_mut();
        st.ensure(tid);
        let prev = st.stores.last().expect("nonempty history");
        let prev_val = prev.val;
        let prev_msg = prev.msg.clone();
        let t = &mut eng.threads[tid];
        t.pending_acq.join(&prev_msg);
        if is_acquire(order) {
            t.clock.join(&prev_msg);
        }
        let epoch = t.clock.tick(tid);
        // Release-sequence continuation: the RMW forwards the previous
        // store's message even when its own write side is relaxed.
        let mut msg = prev_msg;
        if is_release(order) {
            msg.join(&t.clock);
        } else {
            msg.join(&t.rel_fence);
        }
        st.stores.push(Store {
            val: f(prev_val),
            by: tid,
            epoch,
            msg,
        });
        st.last_read[tid] = st.stores.len() - 1;
        st.stale[tid] = 0;
        prev_val
    }

    /// Compare-exchange. A failed CAS is a load of the newest store with
    /// the failure ordering (no spurious weak failures — documented
    /// approximation).
    fn cas(&self, expected: u64, new: u64, success: Ordering, failure: Ordering) -> Result<u64, u64> {
        let ctx = rt::require();
        ctx.exec.schedule_point(ctx.tid);
        let tid = ctx.tid;
        let mut eng = ctx.exec.lock();
        let mut st = self.state.borrow_mut();
        st.ensure(tid);
        let prev = st.stores.last().expect("nonempty history");
        let prev_val = prev.val;
        let prev_msg = prev.msg.clone();
        let t = &mut eng.threads[tid];
        if prev_val == expected {
            t.pending_acq.join(&prev_msg);
            if is_acquire(success) {
                t.clock.join(&prev_msg);
            }
            let epoch = t.clock.tick(tid);
            let mut msg = prev_msg;
            if is_release(success) {
                msg.join(&t.clock);
            } else {
                msg.join(&t.rel_fence);
            }
            st.stores.push(Store {
                val: new,
                by: tid,
                epoch,
                msg,
            });
            st.last_read[tid] = st.stores.len() - 1;
            st.stale[tid] = 0;
            Ok(prev_val)
        } else {
            t.pending_acq.join(&prev_msg);
            if is_acquire(failure) {
                t.clock.join(&prev_msg);
            }
            t.clock.tick(tid);
            st.last_read[tid] = st.stores.len() - 1;
            st.stale[tid] = 0;
            Err(prev_val)
        }
    }
}

macro_rules! shadow_atomic {
    ($(#[$meta:meta])* $name:ident, $ty:ty) => {
        $(#[$meta])*
        pub struct $name {
            core: AtomCore,
            /// Staging slot for `get_mut`; committed back on the next
            /// shared-access operation.
            mirror: std::cell::UnsafeCell<$ty>,
            dirty: Cell<bool>,
        }

        // SAFETY: `mirror` is written only under `&mut self` (get_mut) and
        // read back under the model engine lock with exactly one thread
        // running; `core` is internally serialized the same way.
        unsafe impl Send for $name {}
        unsafe impl Sync for $name {}

        impl $name {
            /// Shadow equivalent of the std constructor.
            pub fn new(v: $ty) -> Self {
                $name {
                    core: AtomCore::new(v as u64),
                    mirror: std::cell::UnsafeCell::new(v),
                    dirty: Cell::new(false),
                }
            }

            fn flush(&self) {
                if self.dirty.get() {
                    // SAFETY: `dirty` is only set by `get_mut` (`&mut self`),
                    // so no other reference to `mirror` can exist here.
                    self.core.reinit(unsafe { *self.mirror.get() } as u64);
                    self.dirty.set(false);
                }
            }

            /// Model-checked load.
            pub fn load(&self, order: Ordering) -> $ty {
                self.flush();
                self.core.load(order) as $ty
            }

            /// Model-checked store.
            pub fn store(&self, v: $ty, order: Ordering) {
                self.flush();
                self.core.store(v as u64, order)
            }

            /// Model-checked swap.
            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                self.flush();
                self.core.rmw(order, |_| v as u64) as $ty
            }

            /// Model-checked wrapping add.
            pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                self.flush();
                self.core.rmw(order, |b| (b as $ty).wrapping_add(v) as u64) as $ty
            }

            /// Model-checked wrapping sub.
            pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                self.flush();
                self.core.rmw(order, |b| (b as $ty).wrapping_sub(v) as u64) as $ty
            }

            /// Model-checked max (in the typed domain, so signed types
            /// compare signed).
            pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                self.flush();
                self.core.rmw(order, |b| std::cmp::max(b as $ty, v) as u64) as $ty
            }

            /// Model-checked min.
            pub fn fetch_min(&self, v: $ty, order: Ordering) -> $ty {
                self.flush();
                self.core.rmw(order, |b| std::cmp::min(b as $ty, v) as u64) as $ty
            }

            /// Model-checked compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.flush();
                self.core
                    .cas(current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            /// Weak CAS; never fails spuriously in the model (documented
            /// approximation — spurious failure only adds retries).
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Exclusive access; `&mut` implies external synchronization, so
            /// the written value becomes a fresh initial store visible to
            /// every thread.
            pub fn get_mut(&mut self) -> &mut $ty {
                let cur = if self.dirty.get() {
                    // SAFETY: `&mut self` — no other reference to `mirror`.
                    unsafe { *self.mirror.get() }
                } else {
                    self.core.latest() as $ty
                };
                // SAFETY: as above.
                unsafe {
                    *self.mirror.get() = cur;
                }
                self.dirty.set(true);
                // SAFETY: as above; the borrow is tied to `&mut self`.
                unsafe { &mut *self.mirror.get() }
            }

            /// Consume, returning the final value.
            pub fn into_inner(mut self) -> $ty {
                *self.get_mut()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                let cur = if self.dirty.get() {
                    // SAFETY: Debug on a shared ref can race with get_mut in
                    // principle, but dirty=true implies a live `&mut`, which
                    // the borrow checker forbids alongside `&self`.
                    unsafe { *self.mirror.get() }
                } else {
                    self.core.latest() as $ty
                };
                write!(f, "{cur}")
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$ty>::default())
            }
        }
    };
}

shadow_atomic!(
    /// Shadow `std::sync::atomic::AtomicU64`.
    AtomicU64,
    u64
);
shadow_atomic!(
    /// Shadow `std::sync::atomic::AtomicUsize`.
    AtomicUsize,
    usize
);
shadow_atomic!(
    /// Shadow `std::sync::atomic::AtomicU32`.
    AtomicU32,
    u32
);
shadow_atomic!(
    /// Shadow `std::sync::atomic::AtomicI64`.
    AtomicI64,
    i64
);

/// Model-checked memory fence.
pub fn fence(order: Ordering) {
    let ctx = rt::require();
    ctx.exec.schedule_point(ctx.tid);
    let mut eng = ctx.exec.lock();
    let t = &mut eng.threads[ctx.tid];
    t.clock.tick(ctx.tid);
    if is_acquire(order) {
        let pending = t.pending_acq.clone();
        t.clock.join(&pending);
    }
    if is_release(order) {
        t.rel_fence = t.clock.clone();
    }
}

/// Spin-loop hint: a voluntary yield, so model spin loops make progress.
pub fn spin_loop() {
    let ctx = rt::require();
    ctx.exec.yield_point(ctx.tid);
}

/// One recorded cell access, tagged with its source location.
struct Access {
    tid: usize,
    epoch: u32,
    at: &'static Location<'static>,
}

#[derive(Default)]
struct CellTrack {
    last_write: Option<Access>,
    /// Newest read per tid since the last write.
    reads: Vec<Access>,
    /// Whether any tracked write has happened (publication safety).
    written: bool,
}

/// Shadow `UnsafeCell` with happens-before race detection on every access.
///
/// Construction counts as *uninitialized* (the queues wrap
/// `MaybeUninit`): a read before any tracked write is reported as a
/// publication-safety failure instead of executing the closure.
pub struct UnsafeCell<T> {
    inner: std::cell::UnsafeCell<T>,
    track: RefCell<CellTrack>,
}

// SAFETY: the model scheduler serializes all access; the race detector
// exists precisely to report the schedules where real concurrent access
// would occur.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Wrap a value (treated as an uninitialized slot — see type docs).
    pub fn new(v: T) -> Self {
        UnsafeCell {
            inner: std::cell::UnsafeCell::new(v),
            track: RefCell::new(CellTrack::default()),
        }
    }

    fn check_access(&self, write: bool, loc: &'static Location<'static>) {
        let ctx = rt::require();
        ctx.exec.schedule_point(ctx.tid);
        let tid = ctx.tid;
        let mut eng = ctx.exec.lock();
        let epoch = eng.threads[tid].clock.tick(tid);
        let clock = eng.threads[tid].clock.clone();
        let mut tr = self.track.borrow_mut();
        let mut race: Option<String> = None;
        if write {
            if let Some(w) = &tr.last_write {
                if !clock.dominates(w.tid, w.epoch) {
                    race = Some(format!(
                        "write by t{tid} at {loc} races with write by t{} at {}",
                        w.tid, w.at
                    ));
                }
            }
            if race.is_none() {
                for r in &tr.reads {
                    if !clock.dominates(r.tid, r.epoch) {
                        race = Some(format!(
                            "write by t{tid} at {loc} races with read by t{} at {}",
                            r.tid, r.at
                        ));
                        break;
                    }
                }
            }
            tr.last_write = Some(Access {
                tid,
                epoch,
                at: loc,
            });
            tr.reads.clear();
            tr.written = true;
        } else {
            if !tr.written {
                drop(tr);
                ctx.exec.fail_with(
                    eng,
                    FailureKind::UninitRead,
                    format!(
                        "t{tid} at {loc} reads a slot no write has initialized \
                         (unsound publication)"
                    ),
                );
            }
            if let Some(w) = &tr.last_write {
                if !clock.dominates(w.tid, w.epoch) {
                    race = Some(format!(
                        "read by t{tid} at {loc} races with write by t{} at {}",
                        w.tid, w.at
                    ));
                }
            }
            tr.reads.retain(|r| r.tid != tid);
            tr.reads.push(Access {
                tid,
                epoch,
                at: loc,
            });
        }
        drop(tr);
        if let Some(msg) = race {
            ctx.exec
                .fail_with(eng, FailureKind::DataRace, format!("data race on UnsafeCell: {msg}"));
        }
    }

    /// Checked shared access: race-checks, then hands the raw pointer to
    /// the closure.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        self.check_access(false, Location::caller());
        f(self.inner.get())
    }

    /// Checked exclusive access.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.check_access(true, Location::caller());
        f(self.inner.get())
    }

    /// Exclusive access via `&mut`: externally synchronized, so the access
    /// history is reset (counts as initialized).
    pub fn get_mut(&mut self) -> &mut T {
        let tr = self.track.get_mut();
        tr.last_write = None;
        tr.reads.clear();
        tr.written = true;
        self.inner.get_mut()
    }

    /// Consume, returning the wrapped value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}
