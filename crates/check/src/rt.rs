//! Thread-local link between an OS thread and the model execution it is
//! running in. Shadow sync types look the context up on every operation;
//! using them outside a model is a hard error.

use std::cell::RefCell;
use std::sync::Arc;

use crate::exec::Exec;

/// The calling OS thread's place in a model execution.
#[derive(Clone)]
pub struct Ctx {
    /// The execution engine.
    pub exec: Arc<Exec>,
    /// The caller's model thread id.
    pub tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The current model context, if this OS thread belongs to an execution.
pub fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// The current model context, or a clear panic if used outside a model.
pub fn require() -> Ctx {
    current().expect(
        "atos-check shadow sync type used outside a model execution \
         (wrap the test body in atos_check::model! / Model::check)",
    )
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}
