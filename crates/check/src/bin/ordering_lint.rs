//! Atomic-ordering lint driver: scans the given files or directories
//! (default: the queue and core crates) and exits nonzero on findings.
//!
//! Usage: `ordering_lint [path ...]` — see `scripts/lint_atomics.sh`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use atos_check::lint::lint_source;

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for entry in entries {
        if entry.file_name().is_some_and(|n| n == "target") {
            continue;
        }
        collect_rs_files(&entry, out);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<PathBuf> = if args.is_empty() {
        vec![
            PathBuf::from("crates/queue/src"),
            PathBuf::from("crates/core/src"),
        ]
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut files = Vec::new();
    for root in &roots {
        if !root.exists() {
            eprintln!("ordering_lint: path not found: {}", root.display());
            return ExitCode::from(2);
        }
        collect_rs_files(root, &mut files);
    }

    let mut total = 0usize;
    for file in &files {
        let Ok(src) = std::fs::read_to_string(file) else {
            eprintln!("ordering_lint: unreadable: {}", file.display());
            return ExitCode::from(2);
        };
        for finding in lint_source(&file.display().to_string(), &src) {
            println!("{finding}");
            total += 1;
        }
    }

    if total > 0 {
        eprintln!("ordering_lint: {total} finding(s) in {} file(s) scanned", files.len());
        ExitCode::FAILURE
    } else {
        println!("ordering_lint: clean ({} file(s) scanned)", files.len());
        ExitCode::SUCCESS
    }
}
