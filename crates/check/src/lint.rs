//! Source-level atomic-ordering lint for the queue substrate.
//!
//! A deliberately simple, dependency-free line scanner (no rustc
//! internals) encoding three project rules the model checker's findings
//! distilled:
//!
//! 1. **`relaxed-publish`** — a `compare_exchange*` whose *success*
//!    ordering is `Relaxed` appearing after an `UnsafeCell` slot write in
//!    the same function: the CAS is publishing the write without a release
//!    edge.
//! 2. **`unreleased-write`** — an `UnsafeCell` slot write (`with_mut`)
//!    with no release-or-stronger operation later in the same function:
//!    nothing publishes the write.
//! 3. **`missing-safety`** — an `unsafe` block or `unsafe impl` without a
//!    `// SAFETY:` comment on the same or one of the eight preceding
//!    lines (multi-line SAFETY comments are common above `unsafe impl`).
//!
//! Files carrying deliberately seeded bugs opt out with a
//! `// lint:skip-file` marker in their first lines (the mutation twins used
//! to validate the checker do this).

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// File the finding is in.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`relaxed-publish`, `unreleased-write`,
    /// `missing-safety`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

fn is_release_line(line: &str) -> bool {
    line.contains("Ordering::Release")
        || line.contains("Ordering::AcqRel")
        || line.contains("Ordering::SeqCst")
}

fn has_safety_comment(lines: &[&str], idx: usize) -> bool {
    let lo = idx.saturating_sub(8);
    lines[lo..=idx].iter().any(|l| l.contains("SAFETY:"))
}

/// The success ordering of a `compare_exchange*` call starting at
/// `lines[idx]` (calls may be formatted across lines); `None` if no
/// ordering token is found nearby.
fn cas_success_ordering(lines: &[&str], idx: usize) -> Option<String> {
    let hi = (idx + 6).min(lines.len());
    let joined = lines[idx..hi].join(" ");
    let call = joined.split("compare_exchange").nth(1)?;
    let ord = call.split("Ordering::").nth(1)?;
    let name: String = ord
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric())
        .collect();
    Some(name)
}

/// Scan one file's source. `file` is used only for reporting.
pub fn lint_source(file: &str, src: &str) -> Vec<LintFinding> {
    let lines: Vec<&str> = src.lines().collect();
    if lines.iter().take(10).any(|l| l.contains("lint:skip-file")) {
        return Vec::new();
    }
    let mut findings = Vec::new();

    // Function segmentation by brace depth: a stack of (start depth,
    // cell-write line, pending relaxed-publish candidates).
    struct FnCtx {
        depth: usize,
        cell_write: Option<usize>,
        released: bool,
    }
    let mut depth: usize = 0;
    let mut fns: Vec<FnCtx> = Vec::new();

    for (i, raw) in lines.iter().enumerate() {
        let line_no = i + 1;
        // Strip line comments so commented-out code can't trip rules.
        let line = raw.split("//").next().unwrap_or("");

        if (line.contains("fn ") || line.contains("fn(")) && line.contains('(') {
            fns.push(FnCtx {
                depth,
                cell_write: None,
                released: false,
            });
        }

        if line.contains(".with_mut(") {
            if let Some(f) = fns.last_mut() {
                if f.cell_write.is_none() {
                    f.cell_write = Some(line_no);
                }
                // A new write after a release op needs its own release.
                if f.released && is_release_line(line) {
                    // release on the same line covers it
                } else if f.released {
                    f.released = false;
                    f.cell_write = Some(line_no);
                }
            }
        }
        if is_release_line(line) {
            if let Some(f) = fns.last_mut() {
                f.released = true;
            }
        }

        if line.contains("compare_exchange") {
            if let Some(ord) = cas_success_ordering(&lines, i) {
                if ord == "Relaxed" {
                    if let Some(f) = fns.last() {
                        if let Some(w) = f.cell_write {
                            if !f.released {
                                findings.push(LintFinding {
                                    file: file.to_string(),
                                    line: line_no,
                                    rule: "relaxed-publish",
                                    message: format!(
                                        "compare_exchange with Relaxed success ordering \
                                         publishes the slot write at line {w} without a \
                                         release edge"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }

        if (line.contains("unsafe {")
            || line.contains("unsafe impl")
            || line.trim_start().starts_with("unsafe fn"))
            && !has_safety_comment(&lines, i)
        {
            findings.push(LintFinding {
                file: file.to_string(),
                line: line_no,
                rule: "missing-safety",
                message: "unsafe code without a `// SAFETY:` comment on this or the \
                          preceding lines"
                    .to_string(),
            });
        }

        // Track depth transitions and close functions.
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if let Some(f) = fns.last() {
                        if depth <= f.depth {
                            let f = fns.pop().expect("nonempty");
                            if let Some(w) = f.cell_write {
                                if !f.released {
                                    findings.push(LintFinding {
                                        file: file.to_string(),
                                        line: w,
                                        rule: "unreleased-write",
                                        message: "UnsafeCell write is never followed by a \
                                                  release operation in this function \
                                                  (nothing publishes it)"
                                            .to_string(),
                                    });
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    findings.sort_by_key(|f| f.line);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_publication_passes() {
        let src = r#"
fn push(&self) {
    // SAFETY: slot is reserved; published by the AcqRel fetch_max below.
    self.slots[i].with_mut(|p| unsafe { (*p).write(item) });
    self.end.fetch_max(idx, Ordering::AcqRel);
}
"#;
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn relaxed_publish_flagged() {
        let src = r#"
fn push(&self) {
    self.slots[i].with_mut(|p| unsafe { (*p).write(item) });
    let _ = self.end.compare_exchange(a, b, Ordering::Relaxed, Ordering::Relaxed);
}
"#;
        let f = lint_source("x.rs", src);
        assert!(f.iter().any(|f| f.rule == "relaxed-publish"), "{f:?}");
    }

    #[test]
    fn relaxed_success_without_write_ok() {
        let src = r#"
fn pop(&self) {
    let _ = self.start.compare_exchange(a, b, Ordering::Relaxed, Ordering::Relaxed);
}
"#;
        let f = lint_source("x.rs", src);
        assert!(f.iter().all(|f| f.rule != "relaxed-publish"), "{f:?}");
    }

    #[test]
    fn multiline_cas_orderings_parsed() {
        let src = r#"
fn push(&self) {
    self.slots[i].with_mut(|p| unsafe { (*p).write(item) });
    let _ = self.end.compare_exchange(
        a,
        b,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
}
"#;
        let f = lint_source("x.rs", src);
        assert!(f.iter().any(|f| f.rule == "relaxed-publish"), "{f:?}");
    }

    #[test]
    fn unreleased_write_flagged() {
        let src = r#"
fn stash(&self) {
    self.slots[i].with_mut(|p| unsafe { (*p).write(item) });
    self.count.fetch_add(1, Ordering::Relaxed);
}
"#;
        let f = lint_source("x.rs", src);
        assert!(f.iter().any(|f| f.rule == "unreleased-write"), "{f:?}");
    }

    #[test]
    fn missing_safety_flagged_and_satisfied() {
        let bad = "fn f() {\n    unsafe { core(); }\n}\n";
        assert!(lint_source("x.rs", bad)
            .iter()
            .any(|f| f.rule == "missing-safety"));
        let good = "fn f() {\n    // SAFETY: serialized by the scheduler.\n    unsafe { core(); }\n}\n";
        assert!(lint_source("x.rs", good).is_empty());
    }

    #[test]
    fn skip_file_marker_respected() {
        let src = "// lint:skip-file\nfn f() {\n    unsafe { core(); }\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
    }
}
