//! Bottleneck reports from metrics snapshots: the `atos-profile` binary.
//!
//! A sharded run (`--sim-threads K --metrics PATH`) leaves a
//! [`atos_trace::MetricsRegistry`] JSON snapshot whose `shard<i>.*` and
//! `sharded.*` namespaces carry the profiling layer's telemetry: per-shard
//! barrier-wait histograms, window spans, exchange volumes, and the
//! per-window imbalance distribution. [`render_report`] turns that
//! snapshot into a human-readable diagnosis — top time sinks per shard, an
//! imbalance verdict, the barrier-overhead fraction, and a
//! scaling-headroom estimate — without re-running anything: the report is
//! a pure function of the snapshot, so it is deterministic and can be
//! produced long after the run (or from a snapshot captured on another
//! machine).
//!
//! Interpretation thresholds (see EXPERIMENTS.md "diagnosing a flat
//! scaling curve"): a median per-window imbalance ratio at or below
//! [`BALANCED_RATIO`] is considered balanced, at or below
//! [`SKEWED_RATIO`] moderately skewed, and above that skewed — the shard
//! partition, not the barrier, is then the scaling limiter.

use atos_core::LoadBalance;
use atos_trace::hist::{Histogram, HistogramSummary};
use atos_trace::json::{self, Json};

/// Median per-window imbalance ratio (max shard events / mean shard
/// events) at or below which the partition counts as balanced.
pub const BALANCED_RATIO: f64 = 1.25;

/// Median imbalance ratio at or below which the partition counts as
/// moderately skewed; above it the verdict is "skewed".
pub const SKEWED_RATIO: f64 = 2.0;

/// One shard's telemetry re-read from a metrics snapshot.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// Shard index.
    pub shard: usize,
    /// PE range `[pe_lo, pe_hi)` the shard owns.
    pub pe_lo: u64,
    /// End of the PE range (exclusive).
    pub pe_hi: u64,
    /// Windows the shard executed.
    pub windows: u64,
    /// Simulation events the shard executed.
    pub events: u64,
    /// Cross-shard messages the shard published.
    pub published: u64,
    /// Cross-shard rows the shard drained.
    pub drained: u64,
    /// Total wall-clock nanoseconds the shard's thread spent in barriers.
    pub barrier_wait_total_ns: u64,
    /// Successful steals the shard's PEs performed (0 under
    /// owner-computes).
    pub lb_steals: u64,
    /// Barrier-wait distribution (wall-clock ns per window).
    pub barrier_wait: Option<HistogramSummary>,
    /// Window-span distribution (virtual ns of safe-horizon advance).
    pub window_span: Option<HistogramSummary>,
    /// Events-per-window distribution.
    pub window_events: Option<HistogramSummary>,
}

/// Everything [`render_report`] extracts from a snapshot.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// Shard count of the run.
    pub shards: Vec<ShardRow>,
    /// Host threads the run used.
    pub threads: u64,
    /// Host wall-clock of the sharded region, nanoseconds.
    pub wall_ns: u64,
    /// Conservative lookahead, virtual nanoseconds.
    pub lookahead_ns: u64,
    /// Windows executed (same for every shard).
    pub windows: u64,
    /// Total events across shards.
    pub events: u64,
    /// Total cross-shard messages published.
    pub published: u64,
    /// Mean-over-shards barrier-wait fraction, permille of wall-clock.
    pub barrier_frac_permille: u64,
    /// Barrier waits that fell back to `yield_now`.
    pub barrier_yield_waits: u64,
    /// Per-window imbalance distribution (permille of perfect balance).
    pub imbalance: Option<HistogramSummary>,
    /// Active load-balance discipline ([`LoadBalance::code`]; 0 = the
    /// paper's static owner-computes).
    pub lb_discipline: u64,
    /// Successful steals across the run.
    pub lb_steals: u64,
    /// Tasks executed away from their owner PE via steals.
    pub lb_stolen_tasks: u64,
    /// Total tasks the run processed (`run.tasks`).
    pub tasks: u64,
    /// Vertices the run reached (`run.reached_vertices`, the ideal task
    /// count for traversal apps; 0 when the snapshot predates the key).
    pub reached: u64,
}

fn num(v: &Json, key: &str) -> Option<u64> {
    let n = v.get(key)?.as_num()?;
    if n.is_finite() && n >= 0.0 {
        Some(n as u64)
    } else {
        None
    }
}

fn hist(v: &Json, key: &str) -> Option<HistogramSummary> {
    Histogram::summary_from_json(v.get(key)?)
}

impl ProfileSnapshot {
    /// Parse a [`atos_trace::MetricsRegistry::to_json`] snapshot. Returns
    /// `Err` when the text is not valid JSON or carries no sharded-run
    /// telemetry (`sharded.shards` absent — e.g. a sequential
    /// `--sim-threads 1` run).
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let k = num(&v, "sharded.shards").ok_or_else(|| {
            "no sharded-run telemetry in this snapshot (key `sharded.shards` missing) — \
             capture one with `--sim-threads K --metrics PATH`, K > 1"
                .to_string()
        })? as usize;
        let mut shards = Vec::with_capacity(k);
        for s in 0..k {
            let p = |field: &str| num(&v, &format!("shard{s}.{field}"));
            shards.push(ShardRow {
                shard: s,
                pe_lo: p("pe_lo").unwrap_or(0),
                pe_hi: p("pe_hi").unwrap_or(0),
                windows: p("windows").unwrap_or(0),
                events: p("events").unwrap_or(0),
                published: p("published").unwrap_or(0),
                drained: p("drained").unwrap_or(0),
                barrier_wait_total_ns: p("barrier_wait_total_ns").unwrap_or(0),
                lb_steals: p("lb_steals").unwrap_or(0),
                barrier_wait: hist(&v, &format!("shard{s}.barrier_wait_ns")),
                window_span: hist(&v, &format!("shard{s}.window_span_ns")),
                window_events: hist(&v, &format!("shard{s}.window_events")),
            });
        }
        Ok(ProfileSnapshot {
            shards,
            threads: num(&v, "sharded.threads").unwrap_or(1),
            wall_ns: num(&v, "sharded.wall_ns").unwrap_or(0),
            lookahead_ns: num(&v, "sharded.lookahead_ns").unwrap_or(0),
            windows: num(&v, "sharded.windows").unwrap_or(0),
            events: num(&v, "sharded.events").unwrap_or(0),
            published: num(&v, "sharded.published").unwrap_or(0),
            barrier_frac_permille: num(&v, "sharded.barrier_frac_permille").unwrap_or(0),
            barrier_yield_waits: num(&v, "sharded.barrier_yield_waits").unwrap_or(0),
            imbalance: hist(&v, "sharded.imbalance_permille"),
            lb_discipline: num(&v, "lb.discipline").unwrap_or(0),
            lb_steals: num(&v, "lb.steals").unwrap_or(0),
            lb_stolen_tasks: num(&v, "lb.stolen_tasks").unwrap_or(0),
            tasks: num(&v, "run.tasks").unwrap_or(0),
            reached: num(&v, "run.reached_vertices").unwrap_or(0),
        })
    }

    /// Name of the active load-balance discipline (`"owner"` for
    /// snapshots that predate the `lb.*` namespace or carry an unknown
    /// code).
    pub fn balancer_name(&self) -> &'static str {
        LoadBalance::from_code(self.lb_discipline.min(u8::MAX as u64) as u8)
            .unwrap_or(LoadBalance::Owner)
            .name()
    }

    /// Redundant work as a percentage over the ideal task count: tasks
    /// beyond one per reached vertex. `None` when the snapshot carries no
    /// `run.reached_vertices` (non-traversal app or pre-`lb` history).
    pub fn redundant_work_pct(&self) -> Option<f64> {
        if self.reached == 0 {
            return None;
        }
        Some(100.0 * (self.tasks as f64 / self.reached as f64 - 1.0).max(0.0))
    }

    /// Fraction of tasks executed away from their owner PE via steals.
    pub fn migrated_frac(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.lb_stolen_tasks as f64 / self.tasks as f64
    }

    /// Mean-over-shards fraction of wall-clock spent waiting at barriers.
    pub fn barrier_frac(&self) -> f64 {
        self.barrier_frac_permille as f64 / 1000.0
    }

    /// Median per-window imbalance ratio (1.0 = perfect balance).
    pub fn imbalance_ratio(&self) -> f64 {
        match &self.imbalance {
            Some(h) => (h.p50 as f64 / 1000.0).max(1.0),
            None => 1.0,
        }
    }

    /// Human verdict on the imbalance distribution.
    pub fn imbalance_verdict(&self) -> &'static str {
        let r = self.imbalance_ratio();
        if r <= BALANCED_RATIO {
            "balanced"
        } else if r <= SKEWED_RATIO {
            "moderately skewed"
        } else {
            "skewed"
        }
    }

    /// Estimated useful parallelism: `K / imbalance × (1 − barrier_frac)`
    /// — how many of the `K` shards' worth of work the run can actually
    /// overlap once imbalance and synchronization are paid.
    pub fn scaling_headroom(&self) -> f64 {
        let k = self.shards.len().max(1) as f64;
        (k / self.imbalance_ratio()) * (1.0 - self.barrier_frac()).max(0.0)
    }

    /// The dominant scaling limiter, by simple attribution: barriers when
    /// synchronization eats over a quarter of wall-clock, imbalance when
    /// the distribution is skewed, otherwise window execution itself.
    pub fn dominant_sink(&self) -> &'static str {
        if self.barrier_frac() > 0.25 {
            "barrier synchronization (shrink K or raise lookahead)"
        } else if self.imbalance_ratio() > SKEWED_RATIO {
            "load imbalance (repartition the PEs across shards)"
        } else {
            "window execution (compute-bound; scaling limited by events per window)"
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn hist_cells(h: &Option<HistogramSummary>) -> (String, String, String) {
    match h {
        Some(h) => (fmt_ns(h.p50), fmt_ns(h.p99), fmt_ns(h.max)),
        None => ("-".into(), "-".into(), "-".into()),
    }
}

/// Render the bottleneck report for one metrics snapshot. `Err` carries a
/// one-line reason suitable for stderr (malformed JSON, or no sharded
/// telemetry).
pub fn render_report(metrics_json: &str) -> Result<String, String> {
    let snap = ProfileSnapshot::parse(metrics_json)?;
    let mut out = String::new();
    let k = snap.shards.len();
    out.push_str(&format!(
        "atos-profile: {k} shards on {} thread{}, {} windows, {} events, wall {}\n",
        snap.threads,
        if snap.threads == 1 { "" } else { "s" },
        snap.windows,
        snap.events,
        fmt_ns(snap.wall_ns),
    ));
    out.push_str(&format!(
        "lookahead {} (virtual), {} cross-shard messages, {} yield-waits at barriers\n\n",
        fmt_ns(snap.lookahead_ns),
        snap.published,
        snap.barrier_yield_waits,
    ));

    out.push_str(&format!(
        "{:<6}{:>10}{:>9}{:>11}{:>10}{:>9}{:>9}{:>11}{:>11}{:>11}{:>8}\n",
        "shard", "pes", "windows", "events", "publish", "drain", "steals", "wait-p50", "wait-p99",
        "wait-max", "wait%"
    ));
    for row in &snap.shards {
        let (p50, p99, max) = hist_cells(&row.barrier_wait);
        let wait_pct = if snap.wall_ns > 0 {
            100.0 * row.barrier_wait_total_ns as f64 / snap.wall_ns as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<6}{:>10}{:>9}{:>11}{:>10}{:>9}{:>9}{:>11}{:>11}{:>11}{:>7.1}%\n",
            row.shard,
            format!("{}..{}", row.pe_lo, row.pe_hi),
            row.windows,
            row.events,
            row.published,
            row.drained,
            row.lb_steals,
            p50,
            p99,
            max,
            wait_pct,
        ));
    }

    // Top time sinks: rank shards by barrier wait, flag the busiest shard.
    let mut by_wait: Vec<&ShardRow> = snap.shards.iter().collect();
    by_wait.sort_by(|a, b| {
        b.barrier_wait_total_ns
            .cmp(&a.barrier_wait_total_ns)
            .then(a.shard.cmp(&b.shard))
    });
    if let Some(worst) = by_wait.first() {
        out.push_str(&format!(
            "\ntop waiter: shard {} ({} in barriers)",
            worst.shard,
            fmt_ns(worst.barrier_wait_total_ns)
        ));
    }
    if let Some(busiest) = snap.shards.iter().max_by_key(|r| (r.events, usize::MAX - r.shard)) {
        out.push_str(&format!(
            "; busiest: shard {} ({} events)\n",
            busiest.shard, busiest.events
        ));
    } else {
        out.push('\n');
    }

    out.push_str(&format!(
        "\nimbalance: median {:.2}x of perfect balance under the {} balancer -> {}\n",
        snap.imbalance_ratio(),
        snap.balancer_name(),
        snap.imbalance_verdict(),
    ));
    let redundant = match snap.redundant_work_pct() {
        Some(pct) => format!("redundant work +{pct:.1}%"),
        None => "redundant work n/a (no run.reached_vertices in snapshot)".to_string(),
    };
    out.push_str(&format!(
        "load balance: {} discipline, {} steal{} moved {} task{} ({:.1}% of {}), {}\n",
        snap.balancer_name(),
        snap.lb_steals,
        if snap.lb_steals == 1 { "" } else { "s" },
        snap.lb_stolen_tasks,
        if snap.lb_stolen_tasks == 1 { "" } else { "s" },
        100.0 * snap.migrated_frac(),
        snap.tasks,
        redundant,
    ));
    out.push_str(&format!(
        "barrier overhead: {:.1}% of wall-clock\n",
        100.0 * snap.barrier_frac(),
    ));
    out.push_str(&format!(
        "scaling headroom: ~{:.2} of {k} shards useful ({})\n",
        snap.scaling_headroom(),
        snap.dominant_sink(),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atos_trace::MetricsRegistry;

    fn synthetic_snapshot(imbalance_p50: u64, barrier_frac_permille: u64) -> String {
        let mut reg = MetricsRegistry::new();
        reg.set("sharded.shards", 2);
        reg.set("sharded.threads", 2);
        reg.set("sharded.wall_ns", 1_000_000);
        reg.set("sharded.lookahead_ns", 500);
        reg.set("sharded.windows", 10);
        reg.set("sharded.events", 300);
        reg.set("sharded.published", 40);
        reg.set("sharded.barrier_frac_permille", barrier_frac_permille);
        reg.set("sharded.barrier_yield_waits", 3);
        reg.set("lb.discipline", 1);
        reg.set("lb.steals", 6);
        reg.set("lb.stolen_tasks", 48);
        reg.set("run.tasks", 400);
        reg.set("run.reached_vertices", 320);
        let mut imb = Histogram::new();
        for _ in 0..9 {
            imb.record(imbalance_p50);
        }
        reg.set_histogram("sharded.imbalance_permille", imb);
        for s in 0..2u64 {
            reg.set(&format!("shard{s}.pe_lo"), s * 2);
            reg.set(&format!("shard{s}.pe_hi"), s * 2 + 2);
            reg.set(&format!("shard{s}.windows"), 10);
            reg.set(&format!("shard{s}.events"), 150 + s * 20);
            reg.set(&format!("shard{s}.published"), 20);
            reg.set(&format!("shard{s}.drained"), 20);
            reg.set(&format!("shard{s}.barrier_wait_total_ns"), 10_000 * (s + 1));
            reg.set(&format!("shard{s}.lb_steals"), 3 * (s + 1));
            let mut h = Histogram::new();
            for v in [900u64, 1000, 1200, 5000] {
                h.record(v);
            }
            reg.set_histogram(&format!("shard{s}.barrier_wait_ns"), h.clone());
            reg.set_histogram(&format!("shard{s}.window_span_ns"), h.clone());
            reg.set_histogram(&format!("shard{s}.window_events"), h);
        }
        reg.to_json()
    }

    #[test]
    fn report_requires_sharded_telemetry() {
        let mut reg = MetricsRegistry::new();
        reg.set("run.elapsed_ns", 123);
        let err = render_report(&reg.to_json()).unwrap_err();
        assert!(err.contains("sharded.shards"), "{err}");
        assert!(render_report("not json").is_err());
    }

    #[test]
    fn report_renders_all_sections() {
        let text = synthetic_snapshot(1400, 120);
        let report = render_report(&text).unwrap();
        assert!(report.contains("2 shards on 2 threads"), "{report}");
        assert!(report.contains("wait-p99"), "{report}");
        assert!(report.contains("top waiter: shard 1"), "{report}");
        assert!(report.contains("busiest: shard 1"), "{report}");
        assert!(report.contains("moderately skewed"), "{report}");
        assert!(report.contains("barrier overhead: 12.0%"), "{report}");
        assert!(report.contains("scaling headroom"), "{report}");
        // The load-balance section: verdict names the active balancer,
        // the steals column renders, and the discipline line carries
        // steal counts plus the redundant-work percentage.
        assert!(report.contains("under the steal balancer"), "{report}");
        assert!(report.contains("steals"), "{report}");
        assert!(
            report.contains("load balance: steal discipline, 6 steals moved 48 tasks"),
            "{report}"
        );
        assert!(report.contains("(12.0% of 400), redundant work +25.0%"), "{report}");
    }

    #[test]
    fn report_defaults_to_owner_on_pre_lb_snapshots() {
        // A snapshot with no lb.* namespace (pre-discipline history) must
        // parse and report owner-computes with zero steals.
        let mut reg = MetricsRegistry::new();
        reg.set("sharded.shards", 1);
        reg.set("shard0.pe_lo", 0);
        reg.set("shard0.pe_hi", 4);
        let snap = ProfileSnapshot::parse(&reg.to_json()).unwrap();
        assert_eq!(snap.balancer_name(), "owner");
        assert_eq!(snap.lb_steals, 0);
        assert_eq!(snap.redundant_work_pct(), None);
        let report = render_report(&reg.to_json()).unwrap();
        assert!(report.contains("load balance: owner discipline, 0 steals"), "{report}");
        assert!(report.contains("redundant work n/a"), "{report}");
    }

    #[test]
    fn verdict_thresholds() {
        let balanced = ProfileSnapshot::parse(&synthetic_snapshot(1100, 0)).unwrap();
        assert_eq!(balanced.imbalance_verdict(), "balanced");
        let moderate = ProfileSnapshot::parse(&synthetic_snapshot(1800, 0)).unwrap();
        assert_eq!(moderate.imbalance_verdict(), "moderately skewed");
        let skewed = ProfileSnapshot::parse(&synthetic_snapshot(3500, 0)).unwrap();
        assert_eq!(skewed.imbalance_verdict(), "skewed");
        // Headroom: K=2, ratio ~3.5 (HDR bucket floor), no barrier cost.
        let ratio = skewed.imbalance_ratio();
        assert!((3.3..3.6).contains(&ratio), "{ratio}");
        let h = skewed.scaling_headroom();
        assert!((h - 2.0 / ratio).abs() < 1e-9, "{h}");
    }

    #[test]
    fn dominant_sink_attribution() {
        let barrier = ProfileSnapshot::parse(&synthetic_snapshot(1000, 400)).unwrap();
        assert!(barrier.dominant_sink().starts_with("barrier"));
        let imb = ProfileSnapshot::parse(&synthetic_snapshot(4000, 10)).unwrap();
        assert!(imb.dominant_sink().starts_with("load imbalance"));
        let compute = ProfileSnapshot::parse(&synthetic_snapshot(1000, 10)).unwrap();
        assert!(compute.dominant_sink().starts_with("window execution"));
    }

    #[test]
    fn report_on_real_reference_run() {
        // End-to-end: profile an actual sharded reference run's snapshot.
        let (_, reg, _) = crate::observability::reference_run_sharded(
            atos_graph::generators::Scale::Tiny,
            4,
        );
        let report = render_report(&reg.to_json()).unwrap();
        assert!(report.contains("4 shards"), "{report}");
        assert!(report.contains("imbalance"), "{report}");
        for s in 0..4 {
            assert!(report.contains(&format!("\n{s}")), "shard {s} row\n{report}");
        }
    }
}
