//! Benchmark-trajectory subsystem: engine microbenchmarks, end-to-end
//! quick-workload timings, and the append-only perf history in
//! `results/BENCH_trajectory.json`.
//!
//! The ROADMAP's north star is a *measurable* perf trajectory: every PR
//! should be able to state whether it made the hot paths faster. This
//! module provides the three pieces:
//!
//! 1. **Engine microbench harness** ([`gen_times`], [`run_wheel`],
//!    [`run_heap`]): schedule-then-drain workloads over the timing-wheel
//!    engine and the retained heap reference, across three arrival-time
//!    distributions (uniform, bursty, near-now skewed). Both runners
//!    return an order-sensitive checksum, so the bench doubles as an
//!    equivalence check: the wheel must pop the exact heap sequence.
//! 2. **End-to-end quick workloads** ([`fig5_quick_workload`],
//!    [`fig8_quick_workload`]): the fig5/fig8 sweep grids at test scale,
//!    run serially in-process so the number is a stable single-core
//!    wall-clock, not a function of host parallelism. The shard-scaling
//!    variant ([`fig5_sharded_run`], [`measure_sharded_scaling`]) sweeps
//!    the Atos cells over K ∈ {1,2,4,8} engine shards and records the
//!    self-relative speedup curve (plus `host_cores`, since the curve is
//!    a property of the machine). The load-balance variant
//!    ([`measure_lb_sweep`]) times the quick BFS under every
//!    `LoadBalancer` discipline and delta-stepping vs Dijkstra-order
//!    SSSP, recording the redundant-work/migration counters alongside.
//! 3. **The trajectory file** ([`TrajectoryEntry`], [`read_trajectory`],
//!    [`append_entries`], [`check_regression`]): a committed, append-only
//!    JSON history keyed by `<git sha>@<timestamp>` — both passed in via
//!    CLI, never sampled in-process, so simulation crates stay free of
//!    wall-clock APIs. `scripts/verify.sh` re-measures and gates against
//!    the last committed entry with `--deny-regression <pct>`.
//!
//! All timing here is host-side wall clock around the system under test;
//! nothing in this module is compiled into the simulator.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::time::Instant;

use atos_apps::bfs::{run_bfs_sharded, run_bfs_sharded_profiled};
use atos_apps::pagerank::run_pagerank_sharded;
use atos_core::{AtosConfig, NullTracer, RunStats};
use atos_graph::generators::{Preset, Scale};
use atos_sim::engine::reference::HeapEngine;
use atos_sim::{Engine, Fabric};

use crate::{
    bfs_nvlink_ms, ib_ms, pr_nvlink_ms, Dataset, ALPHA, BFS_NVLINK_FRAMEWORKS, EPSILON,
    PR_NVLINK_FRAMEWORKS,
};

/// Default location of the committed trajectory history, relative to the
/// repo root.
pub const DEFAULT_TRAJECTORY_PATH: &str = "results/BENCH_trajectory.json";

// ---------------------------------------------------------------------------
// Engine microbench harness
// ---------------------------------------------------------------------------

/// Arrival-time distribution of a synthetic schedule→pop workload.
///
/// The three shapes stress different parts of the wheel: `Uniform` spreads
/// events across many rotations (cascades and bucket scans), `Bursty`
/// piles thousands of equal-time events into single buckets (seq-ordered
/// drains), and `NearNow` keeps deltas tiny so almost everything lands in
/// the imminent window (the heap's best case — the wheel must not lose).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist {
    /// Times uniform over a horizon of ~100ns per event.
    Uniform,
    /// ~1024 events per distinct timestamp, timestamps 50µs apart.
    Bursty,
    /// Exponentially skewed toward the present (most deltas < 4µs).
    NearNow,
}

impl Dist {
    /// All distributions, in reporting order.
    pub const ALL: [Dist; 3] = [Dist::Uniform, Dist::Bursty, Dist::NearNow];

    /// Stable lowercase label used in bench names and metric keys.
    pub fn label(self) -> &'static str {
        match self {
            Dist::Uniform => "uniform",
            Dist::Bursty => "bursty",
            Dist::NearNow => "nearnow",
        }
    }
}

/// SplitMix64 step: the standard 64-bit mixer, deterministic and
/// dependency-free (the bench crate must not pull the sim's seeded RNG
/// into a measurement loop).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate `n` deterministic event times for `dist` from `seed`.
pub fn gen_times(dist: Dist, n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed;
    let mut times = Vec::with_capacity(n);
    for _ in 0..n {
        let r = splitmix64(&mut state);
        let t = match dist {
            Dist::Uniform => r % (n as u64 * 100).max(1),
            Dist::Bursty => (r % (n as u64 / 1024 + 1)) * 50_000,
            // 2^(6..16) ns ceiling, then uniform below it: heavy mass in
            // the first few µs, a thin tail out to ~65µs.
            Dist::NearNow => {
                let exp = 6 + (r >> 58) % 11;
                (r >> 16) % (1u64 << exp)
            }
        };
        times.push(t);
    }
    times
}

/// Fold one popped `(time, payload)` pair into an order-sensitive
/// checksum (multiplicative fold: reorderings change the result).
fn fold(acc: u64, t: u64, v: u64) -> u64 {
    acc.wrapping_mul(0x100_0000_01B3).wrapping_add(t ^ v.rotate_left(17))
}

/// Schedule all `times` into the timing-wheel engine, then pop to empty;
/// returns the order-sensitive checksum of the drain.
pub fn run_wheel(times: &[u64]) -> u64 {
    let mut e: Engine<u64> = Engine::with_capacity(times.len());
    for (i, &t) in times.iter().enumerate() {
        e.schedule_at(t, i as u64);
    }
    let mut acc = 0u64;
    while let Some((t, v)) = e.pop() {
        acc = fold(acc, t, v);
    }
    acc
}

/// Same workload on the retained heap reference
/// ([`atos_sim::engine::reference::HeapEngine`]); must produce the same
/// checksum as [`run_wheel`] — the two engines share one total order.
pub fn run_heap(times: &[u64]) -> u64 {
    let mut e: HeapEngine<u64> = HeapEngine::new();
    for (i, &t) in times.iter().enumerate() {
        e.schedule_at(t, i as u64);
    }
    let mut acc = 0u64;
    while let Some((t, v)) = e.pop() {
        acc = fold(acc, t, v);
    }
    acc
}

/// Best-of-`samples` wall-clock milliseconds of `f` (first run discarded
/// as warm-up when `samples > 1`). Best-of, not median: scheduler noise
/// on a shared host only ever adds time, so the minimum is the most
/// reproducible estimate of the true cost.
pub fn best_of_ms<F: FnMut() -> u64>(samples: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    if samples > 1 {
        checksum = std::hint::black_box(f());
    }
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        checksum = std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, checksum)
}

/// Measure wheel-vs-heap on `n` events of every distribution; returns the
/// metric map of an `engine_microbench` trajectory entry
/// (`<dist>_wheel_ms`, `<dist>_heap_ms`, `<dist>_speedup_x`, `events`).
/// Panics if any distribution's checksums diverge — a perf number for a
/// wrong engine is worse than no number.
pub fn measure_engine(n: usize, samples: usize) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    metrics.insert("events".to_string(), n as f64);
    for dist in Dist::ALL {
        let times = gen_times(dist, n, 0x5EED_0000 + dist as u64);
        let (wheel_ms, wheel_sum) = best_of_ms(samples, || run_wheel(&times));
        let (heap_ms, heap_sum) = best_of_ms(samples, || run_heap(&times));
        assert_eq!(
            wheel_sum,
            heap_sum,
            "wheel and heap drains diverged on {} distribution",
            dist.label()
        );
        metrics.insert(format!("{}_wheel_ms", dist.label()), wheel_ms);
        metrics.insert(format!("{}_heap_ms", dist.label()), heap_ms);
        metrics.insert(format!("{}_speedup_x", dist.label()), heap_ms / wheel_ms);
    }
    metrics
}

// ---------------------------------------------------------------------------
// End-to-end quick workloads
// ---------------------------------------------------------------------------

/// The fig5 sweep grid (NVLink BFS + PageRank strong scaling) at test
/// scale, run serially; returns wall-clock milliseconds.
pub fn fig5_quick_workload() -> f64 {
    let datasets: Vec<Dataset> = Preset::SCALING
        .iter()
        .map(|n| Dataset::build(Preset::by_name(n).unwrap(), Scale::Tiny))
        .collect();
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for ds in &datasets {
        for g in 1..=4usize {
            for fw in BFS_NVLINK_FRAMEWORKS {
                acc += bfs_nvlink_ms(fw, ds, g);
            }
            for fw in PR_NVLINK_FRAMEWORKS {
                acc += pr_nvlink_ms(fw, ds, g);
            }
        }
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64() * 1e3
}

/// The fig8 sweep grid (InfiniBand BFS strong scaling) at test scale,
/// run serially; returns wall-clock milliseconds.
pub fn fig8_quick_workload() -> f64 {
    let datasets: Vec<Dataset> = Preset::SCALING
        .iter()
        .map(|n| Dataset::build(Preset::by_name(n).unwrap(), Scale::Tiny))
        .collect();
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for ds in &datasets {
        for fw in ["Galois", "Atos"] {
            for g in 1..=8usize {
                acc += ib_ms(fw, "bfs", ds, g);
            }
        }
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64() * 1e3
}

/// The Atos cells of the fig5 grid (both NVLink BFS configs and both
/// NVLink PageRank configs, 4 GPUs, all scaling datasets) executed on `k`
/// parallel engine shards. Returns an order-sensitive checksum over every
/// run's virtual clock and event count — identical for every `k` by the
/// sharded runtime's determinism guarantee, so the scaling bench doubles
/// as an end-to-end equivalence check. `k` larger than the PE count is
/// clamped by the runtime (k=8 on the 4-GPU fabric runs as 4 shards and
/// measures the clamp's overhead-freeness).
pub fn fig5_sharded_run(k: usize) -> u64 {
    let datasets: Vec<Dataset> = Preset::SCALING
        .iter()
        .map(|n| Dataset::build(Preset::by_name(n).unwrap(), Scale::Tiny))
        .collect();
    let mut sum = 0u64;
    let mut fold = |stats: &RunStats| {
        sum = sum
            .rotate_left(7)
            .wrapping_add(stats.elapsed_ns)
            .wrapping_add(stats.sim_events.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    };
    for ds in &datasets {
        let part = ds.partition(4);
        let fabric = Fabric::daisy(4);
        for cfg in [
            AtosConfig::standard_persistent(),
            AtosConfig::priority_discrete(),
        ] {
            fold(
                &run_bfs_sharded(
                    ds.graph.clone(),
                    part.clone(),
                    ds.source,
                    fabric.clone(),
                    cfg,
                    k,
                )
                .stats,
            );
        }
        for cfg in [
            AtosConfig::standard_discrete(),
            AtosConfig::standard_persistent(),
        ] {
            fold(
                &run_pagerank_sharded(
                    ds.graph.clone(),
                    part.clone(),
                    ALPHA,
                    EPSILON,
                    fabric.clone(),
                    cfg,
                    k,
                )
                .stats,
            );
        }
    }
    sum
}

/// Shard counts the `sharded_scaling` trajectory entry sweeps.
pub const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Measure the shard-count strong-scaling curve for the
/// `sharded_scaling` trajectory entry: best-of-`samples` wall clock of
/// [`fig5_sharded_run`] at K ∈ {1, 2, 4, 8} (`fig5_sharded_k{K}_ms`)
/// plus self-relative ratios vs K=1 (`fig5_sharded_k{K}_speedup_x`,
/// higher is better). Also records `host_cores`: shard *threads* are
/// clamped to host parallelism, so on a 1-core host the curve is
/// honestly flat (ratios ≈ 1.0, minus barrier overhead) — the gate
/// compares ratios against history from the same host rather than
/// against an absolute floor, and [`check_regression`] skips the ratio
/// comparison when the recorded core counts differ. Panics if any K's
/// checksum diverges from K=1: a scaling number for a wrong result is
/// worse than no number.
pub fn measure_sharded_scaling(samples: usize) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    metrics.insert("host_cores".to_string(), cores as f64);
    let mut base_ms = 0.0f64;
    let mut base_sum = 0u64;
    for k in SHARD_SWEEP {
        let (ms, sum) = best_of_ms(samples, || fig5_sharded_run(k));
        if k == 1 {
            base_ms = ms;
            base_sum = sum;
        } else {
            assert_eq!(
                sum, base_sum,
                "sharded fig5 run diverged from sequential at k={k}"
            );
            metrics.insert(format!("fig5_sharded_k{k}_speedup_x"), base_ms / ms);
        }
        metrics.insert(format!("fig5_sharded_k{k}_ms"), ms);
    }
    // One profiled K=4 run diagnoses *why* the curve has the shape it
    // has: `barrier_frac` (fraction of wall-clock at the window barriers)
    // and `imbalance` (median max/mean shard-events ratio). Informational
    // — neither key carries a `_ms`/`_speedup_x` suffix, so the
    // regression gate never fails on them, but a flat curve entry now
    // records its own explanation (see EXPERIMENTS.md).
    let ds = Dataset::build(
        Preset::by_name(Preset::SCALING[0]).unwrap(),
        Scale::Tiny,
    );
    let mut tracer = NullTracer;
    let (_, profile) = run_bfs_sharded_profiled(
        ds.graph.clone(),
        ds.partition(4),
        ds.source,
        Fabric::daisy(4),
        AtosConfig::standard_persistent(),
        4,
        &mut tracer,
    );
    if let Some(p) = profile {
        metrics.insert("fig5_sharded_k4_barrier_frac".to_string(), p.barrier_frac());
        metrics.insert("fig5_sharded_k4_imbalance".to_string(), p.imbalance_ratio());
    }
    metrics
}

/// Graph families the `lb_sweep` trajectory entry covers: one power-law
/// (skewed frontier, where stealing/chunking has work to move) and one
/// road-like mesh (balanced frontier, where a discipline must not add
/// overhead).
pub const LB_SWEEP_FAMILIES: [(&str, &str); 2] =
    [("sf", "twitter_s"), ("road", "road_usa_s")];

/// Measure the load-balance discipline tradeoff for the `lb_sweep`
/// trajectory entry: best-of-`samples` wall clock of a quick 4-PE BFS on
/// both [`LB_SWEEP_FAMILIES`] at K=2 engine shards under each
/// [`LoadBalance`] discipline (`lb_<name>_ms`), plus the discipline's
/// redundant-work and migration counters (`lb_<name>_tasks`,
/// `lb_<name>_steals` — informational, never regression-gated), plus the
/// delta-stepping vs Dijkstra-order SSSP comparison on the power-law
/// family (`lb_sssp_delta_ms` / `lb_sssp_dijkstra_ms`). Records
/// `host_cores` like [`measure_sharded_scaling`]: wall-clock under K=2
/// shard threads is a property of the machine, so [`check_regression`]
/// skips cross-host comparisons. Panics if any discipline changes a BFS
/// depth vector or either SSSP formulation diverges from the other — a
/// load-balance number for a wrong result is worse than no number.
pub fn measure_lb_sweep(samples: usize) -> BTreeMap<String, f64> {
    use atos_apps::sssp::{run_sssp, run_sssp_delta};
    use atos_core::LoadBalance;
    use atos_graph::weights::EdgeWeights;

    let mut metrics = BTreeMap::new();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    metrics.insert("host_cores".to_string(), cores as f64);
    let datasets: Vec<Dataset> = LB_SWEEP_FAMILIES
        .iter()
        .map(|(_, preset)| Dataset::build(Preset::by_name(preset).unwrap(), Scale::Tiny))
        .collect();
    let mut owner_depths: Vec<Vec<u32>> = Vec::new();
    // `ALL` leads with `Owner`, so the reference depths exist before any
    // stealing discipline is compared against them.
    for lb in LoadBalance::ALL {
        let cfg = AtosConfig::standard_persistent().with_lb(lb);
        let run_family = |ds: &Dataset| {
            run_bfs_sharded(
                ds.graph.clone(),
                ds.partition(4),
                ds.source,
                Fabric::daisy(4),
                cfg,
                2,
            )
        };
        let (mut tasks, mut steals) = (0u64, 0u64);
        for (i, ds) in datasets.iter().enumerate() {
            let run = run_family(ds);
            tasks += run.stats.total_tasks();
            steals += run.stats.lb_steals;
            if lb == LoadBalance::Owner {
                owner_depths.push(run.depth);
            } else {
                assert_eq!(
                    run.depth, owner_depths[i],
                    "{} discipline changed BFS depths on {}",
                    lb.name(),
                    LB_SWEEP_FAMILIES[i].1
                );
            }
        }
        let (ms, _) = best_of_ms(samples, || {
            let mut sum = 0u64;
            for ds in &datasets {
                let stats = run_family(ds).stats;
                sum = sum
                    .rotate_left(7)
                    .wrapping_add(stats.elapsed_ns)
                    .wrapping_add(stats.sim_events.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
            sum
        });
        metrics.insert(format!("lb_{}_ms", lb.name()), ms);
        metrics.insert(format!("lb_{}_tasks", lb.name()), tasks as f64);
        metrics.insert(format!("lb_{}_steals", lb.name()), steals as f64);
    }
    // Delta-stepping (light/heavy split, delta=8) vs Dijkstra-order
    // (priority queue, delta=1) SSSP on the power-law family. Equal
    // distances are asserted once, then each formulation is timed.
    let ds = &datasets[0];
    let weights = std::sync::Arc::new(EdgeWeights::random(&ds.graph, 64, 1));
    let part = ds.partition(4);
    let dij = run_sssp(
        ds.graph.clone(),
        weights.clone(),
        part.clone(),
        ds.source,
        1,
        Fabric::daisy(4),
        AtosConfig::priority_discrete(),
    );
    let delta = run_sssp_delta(
        ds.graph.clone(),
        weights.clone(),
        part.clone(),
        ds.source,
        8,
        Fabric::daisy(4),
        AtosConfig::priority_discrete(),
    );
    assert_eq!(
        delta.dist, dij.dist,
        "delta-stepping SSSP diverged from Dijkstra-order SSSP"
    );
    let (dij_ms, _) = best_of_ms(samples, || {
        run_sssp(
            ds.graph.clone(),
            weights.clone(),
            part.clone(),
            ds.source,
            1,
            Fabric::daisy(4),
            AtosConfig::priority_discrete(),
        )
        .stats
        .elapsed_ns
    });
    let (delta_ms, _) = best_of_ms(samples, || {
        run_sssp_delta(
            ds.graph.clone(),
            weights.clone(),
            part.clone(),
            ds.source,
            8,
            Fabric::daisy(4),
            AtosConfig::priority_discrete(),
        )
        .stats
        .elapsed_ns
    });
    metrics.insert("lb_sssp_dijkstra_ms".to_string(), dij_ms);
    metrics.insert("lb_sssp_delta_ms".to_string(), delta_ms);
    metrics
}

// ---------------------------------------------------------------------------
// Trajectory file
// ---------------------------------------------------------------------------

/// One measurement record in `results/BENCH_trajectory.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// `<git sha>@<timestamp>` — both supplied on the command line.
    pub run_id: String,
    /// Entry kind: `engine_microbench`, `e2e_quick`, `sharded_scaling`,
    /// or `lb_sweep`.
    pub kind: String,
    /// Numeric metrics; key suffixes carry the regression direction
    /// (`_ms` = lower is better, `_speedup_x` = higher is better).
    pub metrics: BTreeMap<String, f64>,
}

/// Format one metric value: integral counts print without a fraction,
/// timings keep three decimals.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn format_entry(e: &TrajectoryEntry) -> String {
    let mut s = format!("{{\"run_id\": \"{}\", \"kind\": \"{}\"", e.run_id, e.kind);
    for (k, v) in &e.metrics {
        s.push_str(&format!(", \"{k}\": {}", fmt_value(*v)));
    }
    s.push('}');
    s
}

fn parse_entry(line: &str) -> Option<TrajectoryEntry> {
    let inner = line.trim().trim_end_matches(',');
    let inner = inner.strip_prefix('{')?.strip_suffix('}')?;
    let mut entry = TrajectoryEntry {
        run_id: String::new(),
        kind: String::new(),
        metrics: BTreeMap::new(),
    };
    // Values are numbers or simple strings (shas, ISO timestamps), so the
    // `", "` key boundary is unambiguous.
    for part in inner.split(", \"") {
        let part = part.trim_start_matches('"');
        let (key, val) = part.split_once("\": ")?;
        let key = key.trim_end_matches('"');
        if let Some(sval) = val.strip_prefix('"') {
            let sval = sval.trim_end_matches('"');
            match key {
                "run_id" => entry.run_id = sval.to_string(),
                "kind" => entry.kind = sval.to_string(),
                _ => {}
            }
        } else if let Ok(f) = val.trim().parse::<f64>() {
            entry.metrics.insert(key.to_string(), f);
        }
    }
    Some(entry)
}

/// Read every entry of the trajectory file, oldest first. A missing file
/// is an empty history, not an error.
pub fn read_trajectory(path: &Path) -> io::Result<Vec<TrajectoryEntry>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text.lines().filter_map(parse_entry).collect())
}

/// The most recent entry of `kind`, if any.
pub fn last_of_kind<'a>(
    history: &'a [TrajectoryEntry],
    kind: &str,
) -> Option<&'a TrajectoryEntry> {
    history.iter().rev().find(|e| e.kind == kind)
}

/// Append `new` to the history at `path` (read, extend, rewrite — one
/// entry per line inside a JSON array, diff-stable).
pub fn append_entries(path: &Path, new: &[TrajectoryEntry]) -> io::Result<()> {
    let mut entries = read_trajectory(path)?;
    entries.extend(new.iter().cloned());
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out = String::from("[\n");
    let last = entries.len().saturating_sub(1);
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format_entry(e));
        if i != last {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Compare `cur` against `prev` under a `pct` tolerance; returns one
/// human-readable violation per regressed metric (empty = gate passes).
///
/// Direction comes from the key suffix: `_ms` fails when the new value is
/// more than `pct` percent *slower*, `_speedup_x` when it is more than
/// `pct` percent *lower*. Other keys are informational. When both entries
/// record an `events` count and they differ, absolute `_ms` metrics are
/// not comparable and are skipped (the ratio metrics still are). When
/// both entries record `host_cores` and they differ, *everything* is
/// skipped: shard-scaling ratios and wall-clock alike are functions of
/// the machine, and a history written on one host must not gate another.
pub fn check_regression(
    prev: &TrajectoryEntry,
    cur: &TrajectoryEntry,
    pct: f64,
) -> Vec<String> {
    if let (Some(a), Some(b)) = (prev.metrics.get("host_cores"), cur.metrics.get("host_cores")) {
        if a != b {
            return Vec::new();
        }
    }
    let scale_mismatch = match (prev.metrics.get("events"), cur.metrics.get("events")) {
        (Some(a), Some(b)) => a != b,
        _ => false,
    };
    let mut violations = Vec::new();
    for (key, &cur_v) in &cur.metrics {
        let Some(&prev_v) = prev.metrics.get(key) else {
            continue;
        };
        if prev_v <= 0.0 {
            continue;
        }
        if key.ends_with("_ms") && !scale_mismatch {
            if cur_v > prev_v * (1.0 + pct / 100.0) {
                violations.push(format!(
                    "{} [{key}]: {cur_v:.3} ms vs {prev_v:.3} ms in {} (> {pct}% slower)",
                    cur.kind, prev.run_id
                ));
            }
        } else if key.ends_with("_speedup_x") && cur_v < prev_v * (1.0 - pct / 100.0) {
            violations.push(format!(
                "{} [{key}]: {cur_v:.2}x vs {prev_v:.2}x in {} (> {pct}% lower)",
                cur.kind, prev.run_id
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: &str, metrics: &[(&str, f64)]) -> TrajectoryEntry {
        TrajectoryEntry {
            run_id: "abc123@2026-01-01T00:00:00Z".to_string(),
            kind: kind.to_string(),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn wheel_and_heap_agree_on_every_distribution() {
        for dist in Dist::ALL {
            let times = gen_times(dist, 10_000, 42);
            assert_eq!(
                run_wheel(&times),
                run_heap(&times),
                "{} drain order diverged",
                dist.label()
            );
        }
    }

    #[test]
    fn gen_times_is_deterministic_and_shaped() {
        let a = gen_times(Dist::Bursty, 4096, 7);
        let b = gen_times(Dist::Bursty, 4096, 7);
        assert_eq!(a, b);
        // Bursty really does collide: far fewer distinct times than events.
        let mut d = a.clone();
        d.sort_unstable();
        d.dedup();
        assert!(d.len() < a.len() / 100, "{} distinct of {}", d.len(), a.len());
        // Near-now mass sits close to zero.
        let nn = gen_times(Dist::NearNow, 4096, 7);
        let near = nn.iter().filter(|&&t| t < 4096).count();
        assert!(near > nn.len() / 4, "only {near} of {} near now", nn.len());
    }

    #[test]
    fn measure_engine_reports_all_metrics() {
        let m = measure_engine(2_000, 1);
        assert_eq!(m["events"], 2_000.0);
        for dist in Dist::ALL {
            for suffix in ["wheel_ms", "heap_ms", "speedup_x"] {
                let key = format!("{}_{suffix}", dist.label());
                assert!(m[&key] > 0.0, "{key} not positive");
            }
        }
    }

    #[test]
    fn measure_lb_sweep_reports_all_disciplines() {
        let m = measure_lb_sweep(1);
        assert!(m["host_cores"] >= 1.0);
        for lb in atos_core::LoadBalance::ALL {
            assert!(m[&format!("lb_{}_ms", lb.name())] > 0.0);
            assert!(m[&format!("lb_{}_tasks", lb.name())] > 0.0);
            assert!(m.contains_key(&format!("lb_{}_steals", lb.name())));
        }
        assert_eq!(m["lb_owner_steals"], 0.0, "owner-computes must never steal");
        assert!(m["lb_sssp_delta_ms"] > 0.0);
        assert!(m["lb_sssp_dijkstra_ms"] > 0.0);
    }

    #[test]
    fn trajectory_file_round_trips_and_appends() {
        let dir = std::env::temp_dir().join(format!("atos-traj-test-{}", std::process::id()));
        let path = dir.join("BENCH_trajectory.json");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(read_trajectory(&path).unwrap().is_empty());
        let e1 = entry("engine_microbench", &[("events", 1e6), ("uniform_wheel_ms", 81.125)]);
        let e2 = entry("e2e_quick", &[("fig5_quick_ms", 2311.5)]);
        append_entries(&path, std::slice::from_ref(&e1)).unwrap();
        append_entries(&path, std::slice::from_ref(&e2)).unwrap();
        let history = read_trajectory(&path).unwrap();
        assert_eq!(history, vec![e1.clone(), e2.clone()]);
        assert_eq!(last_of_kind(&history, "e2e_quick"), Some(&e2));
        assert_eq!(last_of_kind(&history, "engine_microbench"), Some(&e1));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n{\"run_id\": "), "{text}");
        assert!(text.ends_with("}\n]\n"), "{text}");
        assert!(text.contains("\"events\": 1000000,"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn regression_gate_directions() {
        let prev = entry(
            "e2e_quick",
            &[("fig5_quick_ms", 100.0), ("uniform_speedup_x", 3.0)],
        );
        // Within tolerance both ways: passes.
        let ok = entry(
            "e2e_quick",
            &[("fig5_quick_ms", 109.0), ("uniform_speedup_x", 2.8)],
        );
        assert!(check_regression(&prev, &ok, 10.0).is_empty());
        // Slower time and lower speedup both flagged.
        let bad = entry(
            "e2e_quick",
            &[("fig5_quick_ms", 120.0), ("uniform_speedup_x", 2.0)],
        );
        let v = check_regression(&prev, &bad, 10.0);
        assert_eq!(v.len(), 2, "{v:?}");
        // A faster run never fails.
        let fast = entry(
            "e2e_quick",
            &[("fig5_quick_ms", 50.0), ("uniform_speedup_x", 9.0)],
        );
        assert!(check_regression(&prev, &fast, 10.0).is_empty());
    }

    #[test]
    fn regression_gate_skips_ms_across_event_scales() {
        let prev = entry("engine_microbench", &[("events", 1e6), ("uniform_wheel_ms", 80.0)]);
        let cur = entry("engine_microbench", &[("events", 2e5), ("uniform_wheel_ms", 500.0)]);
        // Different event counts: the absolute timing is not comparable.
        assert!(check_regression(&prev, &cur, 10.0).is_empty());
    }

    #[test]
    fn regression_gate_skips_everything_across_host_core_counts() {
        let prev = entry(
            "sharded_scaling",
            &[
                ("host_cores", 8.0),
                ("fig5_sharded_k1_ms", 100.0),
                ("fig5_sharded_k4_speedup_x", 3.2),
            ],
        );
        // Same metrics measured on a 1-core host: flat curve, slower
        // wall clock — not a regression, a different machine.
        let one_core = entry(
            "sharded_scaling",
            &[
                ("host_cores", 1.0),
                ("fig5_sharded_k1_ms", 400.0),
                ("fig5_sharded_k4_speedup_x", 0.97),
            ],
        );
        assert!(check_regression(&prev, &one_core, 10.0).is_empty());
        // Same host: the collapsed ratio is flagged.
        let same_host = entry(
            "sharded_scaling",
            &[
                ("host_cores", 8.0),
                ("fig5_sharded_k1_ms", 100.0),
                ("fig5_sharded_k4_speedup_x", 0.97),
            ],
        );
        let v = check_regression(&prev, &same_host, 10.0);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn sharded_fig5_checksum_is_shard_invariant() {
        // The scaling bench is only meaningful if every shard count
        // computes the identical schedule; k=8 additionally exercises the
        // clamp to the 4-PE fabric.
        let base = fig5_sharded_run(1);
        assert_ne!(base, 0, "checksum must fold real work");
        for k in [2, 8] {
            assert_eq!(fig5_sharded_run(k), base, "k={k}");
        }
    }

    #[test]
    fn sharded_scaling_metrics_are_complete() {
        let m = measure_sharded_scaling(1);
        assert!(m["host_cores"] >= 1.0);
        for k in SHARD_SWEEP {
            assert!(m[&format!("fig5_sharded_k{k}_ms")] > 0.0, "k={k}");
        }
        for k in &SHARD_SWEEP[1..] {
            assert!(m[&format!("fig5_sharded_k{k}_speedup_x")] > 0.0, "k={k}");
        }
        // The diagnostic fields from the profiled K=4 run: a barrier
        // fraction in [0, 1] and an imbalance ratio of at least 1.
        let bf = m["fig5_sharded_k4_barrier_frac"];
        assert!((0.0..=1.0).contains(&bf), "barrier_frac {bf}");
        assert!(m["fig5_sharded_k4_imbalance"] >= 1.0);
    }
}
