//! `--trace` / `--metrics` artifact emission shared by every bench binary.
//!
//! The sweep grids themselves must print byte-identical stdout at any
//! `--threads` setting, so observability output never goes near stdout:
//! when either flag is set, [`emit_artifacts`] performs one *reference
//! run* — deterministic BFS on the scale-free LiveJournal preset over a
//! 4-GPU InfiniBand fabric with the aggregator on, the configuration that
//! exercises every instrumented subsystem — and writes the artifacts to
//! the requested files, logging a one-liner to stderr.
//!
//! * `--trace PATH` — Chrome/Perfetto `trace_event` JSON of the reference
//!   run's virtual-time timeline: per-PE kernel-step spans, message
//!   send→arrive instants (with latency), aggregator flush windows tagged
//!   size- vs age-triggered, and receive-queue/worklist occupancy
//!   counters. Load it at `ui.perfetto.dev` or `chrome://tracing`.
//! * `--metrics PATH` — sorted-JSON [`MetricsRegistry`] snapshot of the
//!   same run (`run.*`, `comm.*`, `agg.*`, `engine.*`, `queue.*`,
//!   `pe<i>.*`) plus host-queue contention counters
//!   (`queue.cas_retries`, `queue.reservation_conflicts`,
//!   `queue.host_occupancy_hwm`) gathered by running two small
//!   `atos-queue` contention probes on real threads.

use std::path::Path;

use atos_apps::bfs::{run_bfs_sharded_profiled, run_bfs_traced};
use atos_core::{AtosConfig, ShardProfile};
use atos_graph::generators::{Preset, Scale};
use atos_queue::bench_harness::{run as queue_probe, Experiment, QueueKind};
use atos_sim::Fabric;
use atos_trace::{perfetto, MetricsRegistry, TraceBuffer};

use crate::sweep::BenchArgs;
use crate::Dataset;

/// Virtual-thread count for the host-queue contention probes: small
/// enough to finish in milliseconds, large enough that the CAS queue
/// visibly retries under real-thread contention.
const PROBE_VIRTUAL_THREADS: usize = 1024;

/// Emit the `--trace` / `--metrics` artifacts if either flag was given.
/// No-op (and allocation-free) when both are unset. Output goes to the
/// requested files plus stderr only — stdout stays reserved for tables.
pub fn emit_artifacts(args: &BenchArgs) {
    if args.trace.is_none() && args.metrics.is_none() && args.flight_dump.is_none() {
        return;
    }
    // `--sim-threads K > 1` switches the reference run onto the sharded
    // window-barrier runtime so the artifacts carry per-shard detail
    // (shard tracks in the trace, `shard<k>.*` / `sharded.*` metrics,
    // flight-recorder rings) instead of silently dropping it.
    let (buf, reg, profile) = reference_run_sharded(args.scale, args.sim_threads);
    if let Some(path) = &args.trace {
        write_artifact(path, &perfetto::to_chrome_json(&buf), "trace");
    }
    if let Some(path) = &args.metrics {
        write_artifact(path, &reg.to_json(), "metrics");
    }
    if let Some(path) = &args.flight_dump {
        match &profile {
            Some(p) => write_artifact(path, &p.flight_json(), "flight recorder"),
            None => eprintln!(
                "[observability] warning: --flight-dump needs --sim-threads K > 1 \
                 (sequential runs keep no flight recorder); skipping {}",
                path.display()
            ),
        }
    }
}

/// The deterministic instrumented reference run: BFS on
/// `soc-LiveJournal1_s` over `Fabric::ib_cluster(4)` with
/// [`AtosConfig::ib_bfs`] — aggregated communication, so step spans,
/// send/arrive instants, size- and age-triggered flushes, and occupancy
/// counters all appear. Returns the raw trace and the filled registry.
pub fn reference_run(scale: Scale) -> (TraceBuffer, MetricsRegistry) {
    let (buf, reg, _) = reference_run_sharded(scale, 1);
    (buf, reg)
}

/// [`reference_run`] on the sharded window-barrier runtime with `k`
/// engine shards (`k <= 1` falls back to the sequential engine and
/// returns no profile), under the `crate::sweep::load_balance()`
/// discipline — so a `--load-balance steal` snapshot carries live
/// `lb.*` steal counters for `atos-profile`. The simulated results and the per-PE/aggregation
/// timeline are byte-identical to the sequential run; the trace
/// additionally carries per-shard `window`/`exchange` tracks, the
/// registry gains the `shard<i>.*` / `sharded.*` namespaces from
/// [`ShardProfile::fill_metrics`], and the returned profile holds the
/// flight-recorder rings for `--flight-dump`.
pub fn reference_run_sharded(
    scale: Scale,
    k: usize,
) -> (TraceBuffer, MetricsRegistry, Option<ShardProfile>) {
    let ds = Dataset::build(
        Preset::by_name("soc-LiveJournal1_s").expect("preset table"),
        scale,
    );
    let part = ds.partition(4);
    let mut buf = TraceBuffer::new();
    let (run, profile) = if k > 1 {
        run_bfs_sharded_profiled(
            ds.graph.clone(),
            part,
            ds.source,
            Fabric::ib_cluster(4),
            AtosConfig::ib_bfs().with_lb(crate::sweep::load_balance()),
            k,
            &mut buf,
        )
    } else {
        let run = run_bfs_traced(
            ds.graph.clone(),
            part,
            ds.source,
            Fabric::ib_cluster(4),
            AtosConfig::ib_bfs().with_lb(crate::sweep::load_balance()),
            &mut buf,
        );
        (run, None)
    };
    crate::sweep::record_sim_events(run.stats.sim_events);

    let mut reg = MetricsRegistry::new();
    run.stats.fill_metrics(&mut reg);
    reg.set("run.reached_vertices", run.reachable);
    if let Some(p) = &profile {
        p.fill_metrics(&mut reg);
    }

    // The simulated run never touches the host queues, so exercise them
    // directly: one counter-queue and one CAS-queue probe on real
    // threads, whose per-queue tallies fold into the process-wide
    // snapshot when the probe queues drop.
    queue_probe(
        QueueKind::CounterWarp,
        Experiment::ConcurrentPopPush,
        PROBE_VIRTUAL_THREADS,
    );
    queue_probe(
        QueueKind::CasWarp,
        Experiment::ConcurrentPopPush,
        PROBE_VIRTUAL_THREADS,
    );
    let q = atos_queue::stats::global_snapshot();
    reg.set("queue.cas_retries", q.cas_retries);
    reg.set("queue.reservation_conflicts", q.reservation_conflicts);
    reg.set("queue.host_occupancy_hwm", q.occupancy_hwm);
    (buf, reg, profile)
}

fn write_artifact(path: &Path, contents: &str, what: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!(
            "[observability] wrote {what} ({} bytes) -> {}",
            contents.len(),
            path.display()
        ),
        Err(e) => eprintln!(
            "[observability] warning: could not write {what} to {}: {e}",
            path.display()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_run_fills_both_artifacts() {
        let (buf, reg) = reference_run(Scale::Tiny);
        assert!(!buf.is_empty());
        let json = perfetto::to_chrome_json(&buf);
        let summary = perfetto::validate_chrome_trace(&json).expect("valid trace");
        assert!(summary.names.contains("step"));
        assert!(summary.names.contains("msg"));
        assert!(
            summary.names.contains("flush[size]") || summary.names.contains("flush[age]"),
            "aggregated config must flush"
        );
        // Every required metrics namespace is populated.
        for key in [
            "run.elapsed_ns",
            "comm.messages",
            "agg.flushes",
            "engine.events",
            "queue.occupancy_hwm",
            "queue.cas_retries",
            "queue.reservation_conflicts",
            "queue.host_occupancy_hwm",
        ] {
            assert!(reg.get(key).is_some(), "missing {key}");
        }
        // The CAS probe ran under real contention; occupancy was nonzero.
        assert!(reg.get("queue.host_occupancy_hwm").unwrap() > 0);
    }

    #[test]
    fn emit_artifacts_is_noop_without_flags() {
        let args = BenchArgs {
            scale: Scale::Tiny,
            threads: 1,
            sim_threads: 1,
            json: None,
            trace: None,
            metrics: None,
            flight_dump: None,
            run_id: None,
            load_balance: atos_core::LoadBalance::Owner,
        };
        emit_artifacts(&args); // must not panic or write anything
    }

    #[test]
    fn emit_artifacts_writes_requested_files() {
        let dir = std::env::temp_dir().join(format!("atos-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = BenchArgs {
            scale: Scale::Tiny,
            threads: 1,
            sim_threads: 1,
            json: None,
            trace: Some(dir.join("trace.json")),
            metrics: Some(dir.join("metrics.json")),
            flight_dump: None,
            run_id: None,
            load_balance: atos_core::LoadBalance::Owner,
        };
        emit_artifacts(&args);
        let trace = std::fs::read_to_string(dir.join("trace.json")).unwrap();
        assert!(perfetto::validate_chrome_trace(&trace).is_ok());
        let metrics = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert!(atos_trace::json::parse(&metrics).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_reference_run_carries_shard_detail() {
        // Satellite fix: `--trace`/`--metrics` with `--sim-threads K > 1`
        // must not silently lose per-shard detail.
        let (buf, reg, profile) = reference_run_sharded(Scale::Tiny, 4);
        let json = perfetto::to_chrome_json(&buf);
        let summary = perfetto::validate_chrome_trace(&json).expect("valid trace");
        assert!(summary.names.contains("step"), "PE timeline intact");
        assert!(summary.names.contains("window"), "shard tracks present");
        for key in [
            "run.elapsed_ns",
            "sharded.shards",
            "sharded.windows",
            "shard0.events",
            "shard3.windows",
        ] {
            assert!(reg.get(key).is_some(), "missing {key}");
        }
        assert_eq!(reg.get("sharded.shards"), Some(4));
        assert!(reg.histogram("shard0.barrier_wait_ns").is_some());
        assert!(reg.histogram("sharded.imbalance_permille").is_some());
        let profile = profile.expect("sharded run collects a profile");
        assert_eq!(profile.shards.len(), 4);
        let flight = profile.flight_json();
        assert!(atos_trace::json::parse(&flight).is_ok(), "flight dump parses");

        // And emit_artifacts wires all three files through.
        let dir = std::env::temp_dir().join(format!("atos-obs-shard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = BenchArgs {
            scale: Scale::Tiny,
            threads: 1,
            sim_threads: 4,
            json: None,
            trace: None,
            metrics: Some(dir.join("metrics.json")),
            flight_dump: Some(dir.join("flight.json")),
            run_id: None,
            load_balance: atos_core::LoadBalance::Owner,
        };
        emit_artifacts(&args);
        let metrics = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
        assert!(metrics.contains("\"sharded.shards\": 4"), "{metrics}");
        let flight = std::fs::read_to_string(dir.join("flight.json")).unwrap();
        assert!(atos_trace::json::parse(&flight).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
