//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §3 for the index). This library holds the
//! common machinery: dataset construction, framework runners, and table
//! formatting. All runtimes are *virtual* milliseconds from the
//! simulator's clock; the paper's absolute numbers came from V100
//! hardware, so EXPERIMENTS.md compares *shapes* (who wins, by what
//! factor, how scaling trends) rather than absolute values.
//!
//! Binaries accept `--quick` to run on the tiny test-scale graphs (the
//! artifact appendix's "quick mode"), `--threads N` to fan the sweep grid
//! over worker threads (default: host parallelism; `ATOS_BENCH_THREADS`
//! overrides the default), `--sim-threads K` to execute each Atos run on
//! `K` parallel engine shards (byte-identical output, parallel
//! wall-clock), and `--json PATH` to redirect the timing report
//! ([`sweep`] has the harness).

use std::sync::Arc;

use atos_core::RunStats;

pub mod observability;
pub mod profile;
pub mod sweep;
pub mod trajectory;

pub use observability::emit_artifacts;
pub use profile::render_report;
pub use sweep::{BenchArgs, SweepReport, SweepRunner};

use atos_apps::bfs::run_bfs_sharded;
use atos_apps::pagerank::run_pagerank_sharded;
use atos_baselines::{bsp_bfs, bsp_pagerank, galois_bfs, galois_pagerank, groute_bfs, groute_pagerank};
use atos_core::AtosConfig;
use atos_graph::csr::{Csr, VertexId};
use atos_graph::generators::{Preset, Scale};
use atos_graph::partition::Partition;
use atos_sim::Fabric;

/// PageRank damping used throughout the evaluation.
pub const ALPHA: f64 = 0.85;
/// PageRank convergence threshold used throughout the evaluation.
///
/// Residues start at `1 - α = 0.15` per vertex, so `1e-5` is four orders
/// of magnitude of convergence — comparable to the tolerances the
/// compared frameworks default to, and it keeps full-table regeneration
/// affordable on a single-core host (see EXPERIMENTS.md).
pub const EPSILON: f64 = 1e-5;

/// Restore the default `SIGPIPE` disposition so `<binary> | head` ends
/// the process quietly instead of panicking with a broken-pipe backtrace.
/// Called by every table/figure binary before printing.
pub fn pipe_friendly() {
    #[cfg(unix)]
    // SAFETY: resetting a signal disposition at process start, before any
    // output or thread spawn. Declared directly (rather than via `libc`)
    // so the workspace builds without registry access.
    unsafe {
        unsafe extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGPIPE: i32 = 13;
        const SIG_DFL: usize = 0;
        signal(SIGPIPE, SIG_DFL);
    }
}

/// Parse the shared benchmark command line and return only the scale.
/// Kept for callers that predate [`BenchArgs`]; new binaries should call
/// [`BenchArgs::parse`] so they also pick up `--threads` and `--json`.
pub fn scale_from_args() -> Scale {
    BenchArgs::parse().scale
}

/// Record a finished run's simulator-event count in the process tally
/// (reported by [`SweepReport::finish`]) and return its virtual ms.
pub fn ms_of(stats: &RunStats) -> f64 {
    sweep::record_sim_events(stats.sim_events);
    stats.elapsed_ms()
}

/// A dataset instantiated for benchmarking.
pub struct Dataset {
    /// Preset descriptor (name, family).
    pub preset: Preset,
    /// The built graph.
    pub graph: Arc<Csr>,
    /// BFS source.
    pub source: VertexId,
}

impl Dataset {
    /// Build one preset at `scale`.
    pub fn build(preset: Preset, scale: Scale) -> Self {
        let graph = Arc::new(preset.build(scale));
        let source = preset.bfs_source(&graph);
        Dataset {
            preset,
            graph,
            source,
        }
    }

    /// All six Table I datasets.
    pub fn all(scale: Scale) -> Vec<Dataset> {
        Preset::ALL
            .iter()
            .map(|&p| Dataset::build(p, scale))
            .collect()
    }

    /// Partitioning policy from the paper: METIS-like BFS-grown
    /// partitions everywhere except twitter, which uses random.
    pub fn partition(&self, n_parts: usize) -> Arc<Partition> {
        if n_parts == 1 {
            return Arc::new(Partition::single(self.graph.n_vertices()));
        }
        if self.preset.name == "twitter_s" {
            Arc::new(Partition::random(self.graph.n_vertices(), n_parts, 42))
        } else {
            Arc::new(Partition::bfs_grow(&self.graph, n_parts, 42))
        }
    }
}

/// The frameworks of the NVLink BFS comparison (Table II), in row order.
pub const BFS_NVLINK_FRAMEWORKS: [&str; 4] = [
    "Gunrock",
    "Groute",
    "Atos (queue+persistent kernel)",
    "Atos (priority queue+discrete kernel)",
];

/// The frameworks of the NVLink PageRank comparison (Table IV).
pub const PR_NVLINK_FRAMEWORKS: [&str; 4] = [
    "Gunrock",
    "Groute",
    "Atos (discrete kernel)",
    "Atos (persistent kernel)",
];

/// Run one NVLink BFS framework; returns virtual ms. Atos cells execute
/// on `sweep::sim_threads()` engine shards (`--sim-threads`) — the tables
/// are byte-identical at any shard count — under the
/// `sweep::load_balance()` discipline (`--load-balance`, default owner;
/// baseline frameworks ignore it).
pub fn bfs_nvlink_ms(framework: &str, ds: &Dataset, gpus: usize) -> f64 {
    let part = ds.partition(gpus);
    let fabric = Fabric::daisy(gpus);
    let shards = sweep::sim_threads();
    let stats = match framework {
        "Gunrock" => bsp_bfs(ds.graph.clone(), part, ds.source, fabric).stats,
        "Groute" => groute_bfs(ds.graph.clone(), part, ds.source, fabric).stats,
        "Atos (queue+persistent kernel)" => run_bfs_sharded(
            ds.graph.clone(),
            part,
            ds.source,
            fabric,
            AtosConfig::standard_persistent().with_lb(sweep::load_balance()),
            shards,
        )
        .stats,
        "Atos (priority queue+discrete kernel)" => run_bfs_sharded(
            ds.graph.clone(),
            part,
            ds.source,
            fabric,
            AtosConfig::priority_discrete().with_lb(sweep::load_balance()),
            shards,
        )
        .stats,
        other => panic!("unknown framework {other}"),
    };
    ms_of(&stats)
}

/// Run one NVLink PageRank framework; returns virtual ms.
pub fn pr_nvlink_ms(framework: &str, ds: &Dataset, gpus: usize) -> f64 {
    let part = ds.partition(gpus);
    let fabric = Fabric::daisy(gpus);
    let shards = sweep::sim_threads();
    let stats = match framework {
        "Gunrock" => bsp_pagerank(ds.graph.clone(), part, ALPHA, EPSILON, fabric).stats,
        "Groute" => groute_pagerank(ds.graph.clone(), part, ALPHA, EPSILON, fabric).stats,
        "Atos (discrete kernel)" => run_pagerank_sharded(
            ds.graph.clone(),
            part,
            ALPHA,
            EPSILON,
            fabric,
            AtosConfig::standard_discrete().with_lb(sweep::load_balance()),
            shards,
        )
        .stats,
        "Atos (persistent kernel)" => run_pagerank_sharded(
            ds.graph.clone(),
            part,
            ALPHA,
            EPSILON,
            fabric,
            AtosConfig::standard_persistent().with_lb(sweep::load_balance()),
            shards,
        )
        .stats,
        other => panic!("unknown framework {other}"),
    };
    ms_of(&stats)
}

/// Run one InfiniBand framework (`"Galois"` or `"Atos"`) for `app`
/// (`"bfs"` or `"pr"`); returns virtual ms.
pub fn ib_ms(framework: &str, app: &str, ds: &Dataset, gpus: usize) -> f64 {
    let part = ds.partition(gpus);
    let fabric = Fabric::ib_cluster(gpus);
    let shards = sweep::sim_threads();
    let stats = match (framework, app) {
        ("Galois", "bfs") => galois_bfs(ds.graph.clone(), part, ds.source, fabric).stats,
        ("Galois", "pr") => galois_pagerank(ds.graph.clone(), part, ALPHA, EPSILON, fabric).stats,
        ("Atos", "bfs") => run_bfs_sharded(
            ds.graph.clone(),
            part,
            ds.source,
            fabric,
            AtosConfig::ib_bfs().with_lb(sweep::load_balance()),
            shards,
        )
        .stats,
        ("Atos", "pr") => run_pagerank_sharded(
            ds.graph.clone(),
            part,
            ALPHA,
            EPSILON,
            fabric,
            AtosConfig::ib_pagerank().with_lb(sweep::load_balance()),
            shards,
        )
        .stats,
        other => panic!("unknown combination {other:?}"),
    };
    ms_of(&stats)
}

/// Print one paper-style table block: rows = datasets, cols = GPU counts,
/// speedups vs `baseline` (same-shaped matrix) in parentheses.
pub fn print_table_block(
    title: &str,
    gpu_counts: &[usize],
    rows: &[(String, Vec<f64>)],
    baseline: Option<&[(String, Vec<f64>)]>,
) {
    println!("\nApplication: {title}");
    print!("{:<22}", "dataset");
    for g in gpu_counts {
        print!("{:>18}", format!("{g} GPU{}", if *g > 1 { "s" } else { "" }));
    }
    println!();
    for (i, (name, ms)) in rows.iter().enumerate() {
        print!("{name:<22}");
        for (j, v) in ms.iter().enumerate() {
            let cell = match baseline {
                Some(base) => {
                    let b = base[i].1[j];
                    format!("{:.5} (x{:.2})", round_sig(*v), b / v)
                }
                None => format!("{:.5} (x1)", round_sig(*v)),
            };
            print!("{cell:>18}");
        }
        println!();
    }
}

/// Round to ~3 significant figures for table readability.
pub fn round_sig(v: f64) -> f64 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    let mag = v.abs().log10().floor();
    let factor = 10f64.powf(2.0 - mag);
    (v * factor).round() / factor
}

/// Self-relative strong-scaling series: `ms[i] → ms[0] / ms[i]`.
pub fn relative_speedup(ms: &[f64]) -> Vec<f64> {
    if ms.is_empty() {
        return Vec::new();
    }
    ms.iter().map(|&v| ms[0] / v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_build_quick() {
        let all = Dataset::all(Scale::Tiny);
        assert_eq!(all.len(), 6);
        for d in &all {
            assert!(d.graph.n_edges() > 0);
            assert_eq!(d.partition(4).n_parts(), 4);
            assert_eq!(d.partition(1).n_parts(), 1);
        }
    }

    #[test]
    fn all_nvlink_framework_runners_work() {
        let ds = Dataset::build(Preset::by_name("road_usa_s").unwrap(), Scale::Tiny);
        for f in BFS_NVLINK_FRAMEWORKS {
            assert!(bfs_nvlink_ms(f, &ds, 2) > 0.0, "{f}");
        }
        for f in PR_NVLINK_FRAMEWORKS {
            assert!(pr_nvlink_ms(f, &ds, 2) > 0.0, "{f}");
        }
    }

    #[test]
    fn ib_runners_work() {
        let ds = Dataset::build(Preset::by_name("hollywood_2009_s").unwrap(), Scale::Tiny);
        for f in ["Galois", "Atos"] {
            for app in ["bfs", "pr"] {
                assert!(ib_ms(f, app, &ds, 2) > 0.0, "{f}/{app}");
            }
        }
    }

    #[test]
    fn relative_speedup_is_self_normalized() {
        let s = relative_speedup(&[10.0, 5.0, 2.5]);
        assert_eq!(s, vec![1.0, 2.0, 4.0]);
        assert!(relative_speedup(&[]).is_empty());
    }

    #[test]
    fn rounding_keeps_three_figures() {
        assert_eq!(round_sig(1234.5), 1230.0);
        assert_eq!(round_sig(0.0123456), 0.0123);
        assert_eq!(round_sig(0.0), 0.0);
    }
}
