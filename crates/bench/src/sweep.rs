//! Parallel sweep harness shared by every table/figure binary.
//!
//! The (dataset × GPU count × framework × app) grids the binaries
//! regenerate are embarrassingly parallel: each cell is one independent
//! simulated run, and the simulation is a pure function of its inputs.
//! [`SweepRunner`] fans the cells over scoped worker threads and returns
//! the results keyed by grid index, so the printed tables are
//! byte-identical to a serial sweep no matter how the threads interleave
//! — parallelism only reorders wall-clock completion, never results.
//!
//! [`BenchArgs`] is the shared CLI surface (`--quick`, `--threads N`,
//! `--json PATH`, plus the `ATOS_BENCH_THREADS` environment override),
//! and [`SweepReport`] records each binary's wall-clock time, thread
//! count, and total simulator events into `results/BENCH_sweep.json`.
//! With `--run-id <sha>@<stamp>` the report entry is keyed
//! `<binary>@<run-id>` instead of plain `<binary>`, so successive runs
//! *append* to the committed history rather than overwrite it — the id
//! is always passed in (typically `git rev-parse --short HEAD` plus
//! `date -u`), never sampled in-process, keeping wall-clock identity out
//! of the simulation crates. All timing goes to stderr or the JSON file;
//! stdout carries only the tables, which must stay identical across
//! thread counts.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
// atos-lint: allow(facade_bypass) — host-side sweep bookkeeping (event
// totals, wall-clock timing) around the system under test, never built
// under `--cfg atos_check`.
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use atos_core::LoadBalance;
use atos_graph::generators::Scale;

/// Default location of the sweep timing report, relative to the working
/// directory (the repo root, when run via `cargo run`).
pub const DEFAULT_REPORT_PATH: &str = "results/BENCH_sweep.json";

/// Parsed command line shared by the table/figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Graph scale: `Scale::Tiny` under `--quick`, else `Scale::Full`.
    pub scale: Scale,
    /// Worker threads for the sweep (>= 1).
    pub threads: usize,
    /// Timing-report destination override from `--json PATH`.
    pub json: Option<PathBuf>,
    /// Chrome/Perfetto trace destination from `--trace PATH`: when set,
    /// the binary performs one traced reference run and writes its
    /// virtual-time timeline there (see [`crate::observability`]).
    pub trace: Option<PathBuf>,
    /// Metrics-snapshot destination from `--metrics PATH`: when set, the
    /// binary dumps a [`atos_core::MetricsRegistry`] JSON snapshot of the
    /// reference run plus host-queue contention counters.
    pub metrics: Option<PathBuf>,
    /// Flight-recorder destination from `--flight-dump PATH`: when set
    /// together with `--sim-threads K > 1`, the reference run's per-shard
    /// flight-recorder rings (last [`atos_core::FlightRecorder`] windows
    /// per shard) are dumped there as deterministic JSON.
    pub flight_dump: Option<PathBuf>,
    /// Run identity from `--run-id ID` (conventionally
    /// `<git sha>@<timestamp>`, both produced by the caller): when set,
    /// the timing-report entry is keyed `<binary>@<ID>` so the report
    /// accumulates a history instead of overwriting the binary's entry.
    pub run_id: Option<String>,
    /// Engine shards per simulated run from `--sim-threads K` (default 1
    /// — the sequential engine). With `K > 1` each Atos run executes on
    /// the sharded window-barrier runtime (`Runtime::run_sharded`):
    /// byte-identical tables, parallel host wall-clock. Orthogonal to
    /// `--threads`, which fans *independent* sweep cells.
    pub sim_threads: usize,
    /// Load-balance discipline from `--load-balance {owner|steal|chunk|
    /// priority}` (default `owner` — the paper's static owner-computes
    /// assignment). Applied by the framework runners to every Atos run's
    /// [`atos_core::AtosConfig`]; baseline frameworks ignore it.
    pub load_balance: LoadBalance,
}

impl BenchArgs {
    /// Parse the process's argv and environment; prints an error and
    /// exits with status 2 on unknown or malformed arguments (rather than
    /// silently starting a potentially minutes-long full-scale sweep).
    pub fn parse() -> Self {
        crate::pipe_friendly();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let env = std::env::var("ATOS_BENCH_THREADS").ok();
        match Self::parse_from(&args, env.as_deref(), default_threads()) {
            Ok(a) => {
                set_sim_threads(a.sim_threads);
                set_load_balance(a.load_balance);
                a
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Pure parser: `args` is argv without the program name,
    /// `env_threads` the value of `ATOS_BENCH_THREADS` (if set), and
    /// `default_threads` the fallback thread count. Precedence for the
    /// thread count: `--threads` flag, then environment, then default;
    /// the result is clamped to at least 1.
    pub fn parse_from(
        args: &[String],
        env_threads: Option<&str>,
        default_threads: usize,
    ) -> Result<Self, String> {
        let mut scale = Scale::Full;
        let mut threads: Option<usize> = None;
        let mut json: Option<PathBuf> = None;
        let mut trace: Option<PathBuf> = None;
        let mut metrics: Option<PathBuf> = None;
        let mut flight_dump: Option<PathBuf> = None;
        let mut run_id: Option<String> = None;
        let mut sim_threads = 1usize;
        let mut load_balance = LoadBalance::Owner;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => scale = Scale::Tiny,
                "--threads" => {
                    let v = it.next().ok_or("--threads requires a value")?;
                    threads =
                        Some(v.parse().map_err(|_| format!("invalid --threads value `{v}`"))?);
                }
                "--json" => {
                    let v = it.next().ok_or("--json requires a path")?;
                    json = Some(PathBuf::from(v));
                }
                "--trace" => {
                    let v = it.next().ok_or("--trace requires a path")?;
                    trace = Some(PathBuf::from(v));
                }
                "--metrics" => {
                    let v = it.next().ok_or("--metrics requires a path")?;
                    metrics = Some(PathBuf::from(v));
                }
                "--flight-dump" => {
                    let v = it.next().ok_or("--flight-dump requires a path")?;
                    flight_dump = Some(PathBuf::from(v));
                }
                "--run-id" => {
                    let v = it.next().ok_or("--run-id requires a value")?;
                    run_id = Some(v.clone());
                }
                "--sim-threads" => {
                    let v = it.next().ok_or("--sim-threads requires a value")?;
                    sim_threads = v
                        .parse()
                        .map_err(|_| format!("invalid --sim-threads value `{v}`"))?;
                }
                "--load-balance" => {
                    let v = it.next().ok_or("--load-balance requires a value")?;
                    load_balance = LoadBalance::parse(v).ok_or_else(|| {
                        format!(
                            "invalid --load-balance value `{v}` \
                             (expected owner, steal, chunk, or priority)"
                        )
                    })?;
                }
                other => {
                    return Err(format!(
                        "unknown argument `{other}` (supported: --quick, --threads N, \
                         --json PATH, --trace PATH, --metrics PATH, --flight-dump PATH, \
                         --run-id ID, --sim-threads K, \
                         --load-balance {{owner|steal|chunk|priority}})"
                    ))
                }
            }
        }
        let threads = match (threads, env_threads) {
            (Some(t), _) => t,
            (None, Some(e)) => e
                .trim()
                .parse()
                .map_err(|_| format!("invalid ATOS_BENCH_THREADS value `{e}`"))?,
            (None, None) => default_threads,
        };
        Ok(BenchArgs {
            scale,
            threads: threads.max(1),
            json,
            trace,
            metrics,
            flight_dump,
            run_id,
            sim_threads: sim_threads.max(1),
            load_balance,
        })
    }
}

/// Engine shard count each Atos run should use, set once at argument
/// parse time and read by the framework runners (`crate::bfs_nvlink_ms`
/// and friends) when they construct a run. A process-wide atomic rather
/// than a threaded parameter: the sweep grid fans cells over worker
/// threads, and every cell of one binary invocation shares the setting.
static SIM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the engine shard count for subsequent Atos runs (clamped to >= 1).
pub fn set_sim_threads(k: usize) {
    SIM_THREADS.store(k.max(1), Ordering::Relaxed);
}

/// Engine shard count Atos runs execute with (see [`set_sim_threads`]).
pub fn sim_threads() -> usize {
    SIM_THREADS.load(Ordering::Relaxed)
}

/// Load-balance discipline each Atos run should use, set once at
/// argument parse time and read by the framework runners — the same
/// process-wide pattern as [`SIM_THREADS`], and for the same reason:
/// every cell of one binary invocation shares the setting.
static LOAD_BALANCE: AtomicUsize = AtomicUsize::new(0);

/// Set the load-balance discipline for subsequent Atos runs.
pub fn set_load_balance(lb: LoadBalance) {
    LOAD_BALANCE.store(lb.code() as usize, Ordering::Relaxed);
}

/// Load-balance discipline Atos runs execute with (see
/// [`set_load_balance`]).
pub fn load_balance() -> LoadBalance {
    LoadBalance::from_code(LOAD_BALANCE.load(Ordering::Relaxed) as u8)
        .unwrap_or(LoadBalance::Owner)
}

/// Host parallelism used when neither `--threads` nor
/// `ATOS_BENCH_THREADS` is given.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Fans independent sweep cells over scoped worker threads.
///
/// Workers claim cells from a shared atomic cursor (dynamic scheduling —
/// simulated runs vary wildly in cost, so static chunking would leave
/// threads idle) and deposit each result in the slot of its grid index.
/// The output vector is therefore ordered exactly like the input no
/// matter which worker computed which cell.
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// Runner with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// Runner configured from parsed [`BenchArgs`].
    pub fn from_args(args: &BenchArgs) -> Self {
        Self::new(args.threads)
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item; `f` receives `(grid_index, &item)` and
    /// the result vector is indexed like `items`. With one worker (or one
    /// item) no threads are spawned — the cells run inline, in order.
    /// A panic in any cell propagates after the scope joins.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i, &items[i]);
                    *slots[i].lock().unwrap() = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("sweep cell not computed"))
            .collect()
    }
}

/// Process-wide tally of simulator events across every run a binary
/// performs (each [`atos_core::RunStats::sim_events`] is added once).
static SIM_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Add one run's simulator-event count to the process tally.
pub fn record_sim_events(n: u64) {
    SIM_EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// Total simulator events recorded so far in this process.
pub fn total_sim_events() -> u64 {
    SIM_EVENTS.load(Ordering::Relaxed)
}

/// Wall-clock timer for one binary's sweep; [`SweepReport::finish`]
/// appends/updates the binary's entry in the timing report and prints a
/// one-line summary to stderr (never stdout).
pub struct SweepReport {
    binary: String,
    threads: usize,
    sim_threads: usize,
    json: Option<PathBuf>,
    started: Instant,
}

impl SweepReport {
    /// Start timing `binary` under the parsed arguments. A `--run-id`
    /// suffixes the report key (`<binary>@<id>`) so the run lands as a
    /// new history entry instead of replacing the binary's last one.
    pub fn start(binary: &str, args: &BenchArgs) -> Self {
        let key = match &args.run_id {
            Some(id) => format!("{binary}@{id}"),
            None => binary.to_string(),
        };
        SweepReport {
            binary: key,
            threads: args.threads,
            sim_threads: args.sim_threads,
            json: args.json.clone(),
            started: Instant::now(),
        }
    }

    /// Stop the clock, write the report entry, and log to stderr.
    pub fn finish(self) {
        let wall_s = self.started.elapsed().as_secs_f64();
        let events = total_sim_events();
        let path = self
            .json
            .unwrap_or_else(|| PathBuf::from(DEFAULT_REPORT_PATH));
        eprintln!(
            "[sweep] {}: {:.3}s wall, {} thread{}, {} engine shard{}, {} sim events -> {}",
            self.binary,
            wall_s,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.sim_threads,
            if self.sim_threads == 1 { "" } else { "s" },
            events,
            path.display()
        );
        if let Err(e) = write_report_entry(
            &path,
            &self.binary,
            wall_s,
            self.threads,
            self.sim_threads,
            events,
        ) {
            eprintln!("[sweep] warning: could not write {}: {e}", path.display());
        }
    }
}

/// Read-modify-write one binary's entry in the line-oriented JSON report
/// (`{"<binary>": {"wall_s": ..., "threads": ..., "sim_threads": ...,
/// "sim_events": ...}}`). Existing entries for other binaries — including
/// pre-`sim_threads` history lines — are preserved verbatim; output is
/// sorted by binary name so the file is diff-stable.
pub fn write_report_entry(
    path: &Path,
    binary: &str,
    wall_s: f64,
    threads: usize,
    sim_threads: usize,
    sim_events: u64,
) -> io::Result<()> {
    let mut entries: BTreeMap<String, String> = BTreeMap::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some(rest) = line.strip_prefix('"') {
                if let Some((name, value)) = rest.split_once("\": ") {
                    if value.starts_with('{') && value.ends_with('}') {
                        entries.insert(name.to_string(), value.to_string());
                    }
                }
            }
        }
    }
    entries.insert(
        binary.to_string(),
        format!(
            "{{\"wall_s\": {wall_s:.3}, \"threads\": {threads}, \
             \"sim_threads\": {sim_threads}, \"sim_events\": {sim_events}}}"
        ),
    );
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out = String::from("{\n");
    let last = entries.len().saturating_sub(1);
    for (i, (k, v)) in entries.iter().enumerate() {
        out.push_str("  \"");
        out.push_str(k);
        out.push_str("\": ");
        out.push_str(v);
        if i != last {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parser_defaults() {
        let a = BenchArgs::parse_from(&[], None, 6).unwrap();
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.threads, 6);
        assert_eq!(a.json, None);
        assert_eq!(a.trace, None);
        assert_eq!(a.metrics, None);
        assert_eq!(a.flight_dump, None);
        assert_eq!(a.run_id, None);
        assert_eq!(a.sim_threads, 1);
        assert_eq!(a.load_balance, LoadBalance::Owner);
    }

    #[test]
    fn parser_accepts_all_flags() {
        let a = BenchArgs::parse_from(
            &s(&[
                "--quick",
                "--threads",
                "4",
                "--json",
                "/tmp/r.json",
                "--trace",
                "/tmp/t.json",
                "--metrics",
                "/tmp/m.json",
                "--flight-dump",
                "/tmp/f.json",
                "--run-id",
                "abc123@2026-01-01T00:00:00Z",
                "--sim-threads",
                "4",
                "--load-balance",
                "steal",
            ]),
            None,
            1,
        )
        .unwrap();
        assert_eq!(a.scale, Scale::Tiny);
        assert_eq!(a.threads, 4);
        assert_eq!(a.json, Some(PathBuf::from("/tmp/r.json")));
        assert_eq!(a.trace, Some(PathBuf::from("/tmp/t.json")));
        assert_eq!(a.metrics, Some(PathBuf::from("/tmp/m.json")));
        assert_eq!(a.flight_dump, Some(PathBuf::from("/tmp/f.json")));
        assert_eq!(a.run_id.as_deref(), Some("abc123@2026-01-01T00:00:00Z"));
        assert_eq!(a.sim_threads, 4);
        assert_eq!(a.load_balance, LoadBalance::Steal);
    }

    #[test]
    fn parser_accepts_every_load_balance_discipline() {
        for lb in LoadBalance::ALL {
            let a =
                BenchArgs::parse_from(&s(&["--load-balance", lb.name()]), None, 1).unwrap();
            assert_eq!(a.load_balance, lb);
        }
        assert!(BenchArgs::parse_from(&s(&["--load-balance"]), None, 1).is_err());
        assert!(BenchArgs::parse_from(&s(&["--load-balance", "magic"]), None, 1).is_err());
    }


    #[test]
    fn parser_clamps_sim_threads_and_rejects_garbage() {
        let a = BenchArgs::parse_from(&s(&["--sim-threads", "0"]), None, 1).unwrap();
        assert_eq!(a.sim_threads, 1);
        assert!(BenchArgs::parse_from(&s(&["--sim-threads"]), None, 1).is_err());
        assert!(BenchArgs::parse_from(&s(&["--sim-threads", "two"]), None, 1).is_err());
    }

    #[test]
    fn parser_thread_precedence_flag_env_default() {
        // Environment overrides the default...
        let a = BenchArgs::parse_from(&[], Some("3"), 8).unwrap();
        assert_eq!(a.threads, 3);
        // ...and the flag overrides the environment.
        let a = BenchArgs::parse_from(&s(&["--threads", "2"]), Some("3"), 8).unwrap();
        assert_eq!(a.threads, 2);
        // Zero clamps to one worker.
        let a = BenchArgs::parse_from(&s(&["--threads", "0"]), None, 8).unwrap();
        assert_eq!(a.threads, 1);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(BenchArgs::parse_from(&s(&["--frobnicate"]), None, 1).is_err());
        assert!(BenchArgs::parse_from(&s(&["--threads"]), None, 1).is_err());
        assert!(BenchArgs::parse_from(&s(&["--threads", "many"]), None, 1).is_err());
        assert!(BenchArgs::parse_from(&s(&["--json"]), None, 1).is_err());
        assert!(BenchArgs::parse_from(&s(&["--trace"]), None, 1).is_err());
        assert!(BenchArgs::parse_from(&s(&["--metrics"]), None, 1).is_err());
        assert!(BenchArgs::parse_from(&s(&["--flight-dump"]), None, 1).is_err());
        assert!(BenchArgs::parse_from(&s(&["--run-id"]), None, 1).is_err());
        assert!(BenchArgs::parse_from(&[], Some("lots"), 1).is_err());
    }

    #[test]
    fn runner_results_are_keyed_by_index() {
        let items: Vec<u64> = (0..97).collect();
        let serial = SweepRunner::new(1).run(&items, |i, &x| (i as u64) * 1000 + x * x);
        let parallel = SweepRunner::new(4).run(&items, |i, &x| (i as u64) * 1000 + x * x);
        assert_eq!(serial, parallel);
        assert_eq!(serial[5], 5025);
    }

    #[test]
    fn runner_handles_empty_and_oversubscribed() {
        let empty: Vec<u32> = vec![];
        assert!(SweepRunner::new(8).run(&empty, |_, &x| x).is_empty());
        // More workers than items.
        let out = SweepRunner::new(64).run(&[1u32, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn report_round_trips_and_merges() {
        let dir = std::env::temp_dir().join(format!("atos-sweep-test-{}", std::process::id()));
        let path = dir.join("BENCH_sweep.json");
        let _ = std::fs::remove_dir_all(&dir);
        write_report_entry(&path, "table2", 1.5, 4, 1, 100).unwrap();
        write_report_entry(&path, "table5", 2.0, 2, 4, 200).unwrap();
        // Re-running a binary replaces its entry.
        write_report_entry(&path, "table2", 9.25, 8, 2, 300).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\n  \"table2\": {\"wall_s\": 9.250, \"threads\": 8, \"sim_threads\": 2, \
             \"sim_events\": 300},\n  \
             \"table5\": {\"wall_s\": 2.000, \"threads\": 2, \"sim_threads\": 4, \
             \"sim_events\": 200}\n}\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_preserves_pre_sim_threads_entries() {
        // History lines written before the sim_threads field existed must
        // survive a merge untouched.
        let dir = std::env::temp_dir().join(format!("atos-sweep-old-{}", std::process::id()));
        let path = dir.join("BENCH_sweep.json");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            &path,
            "{\n  \"fig1@old\": {\"wall_s\": 1.000, \"threads\": 1, \"sim_events\": 5}\n}\n",
        )
        .unwrap();
        write_report_entry(&path, "fig1@new", 2.0, 1, 4, 9).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("\"fig1@old\": {\"wall_s\": 1.000, \"threads\": 1, \"sim_events\": 5}"),
            "{text}"
        );
        assert!(
            text.contains("\"fig1@new\": {\"wall_s\": 2.000, \"threads\": 1, \"sim_threads\": 4, \"sim_events\": 9}"),
            "{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_id_keys_entries_into_a_history() {
        let mut args = BenchArgs::parse_from(&[], None, 1).unwrap();
        args.run_id = Some("abc123@t0".to_string());
        let r = SweepReport::start("fig5", &args);
        assert_eq!(r.binary, "fig5@abc123@t0");

        // Two runs of the same binary under different run ids accumulate
        // as separate entries; a re-run of the same id replaces its own.
        let dir = std::env::temp_dir().join(format!("atos-sweep-runid-{}", std::process::id()));
        let path = dir.join("BENCH_sweep.json");
        let _ = std::fs::remove_dir_all(&dir);
        write_report_entry(&path, "fig5@abc123@t0", 1.0, 1, 1, 10).unwrap();
        write_report_entry(&path, "fig5@def456@t1", 2.0, 1, 1, 20).unwrap();
        write_report_entry(&path, "fig5@abc123@t0", 3.0, 1, 1, 30).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"fig5@abc123@t0\": {\"wall_s\": 3.000"), "{text}");
        assert!(text.contains("\"fig5@def456@t1\": {\"wall_s\": 2.000"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_event_tally_accumulates() {
        let before = total_sim_events();
        record_sim_events(7);
        record_sim_events(5);
        assert!(total_sim_events() >= before + 12);
    }
}
