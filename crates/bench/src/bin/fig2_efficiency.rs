//! Figure 2: bandwidth efficiency (fraction of wire bytes that are
//! payload) vs. requested bytes, on PCIe gen 3 and NVLink.
//!
//! The series are closed-form packet-model evaluations — far too cheap to
//! be worth fanning out — so this binary only adopts the shared CLI and
//! timing report.

use atos_bench::{BenchArgs, SweepReport};
use atos_sim::packet::{figure2_series, PacketModel};

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("fig2_efficiency", &args);
    println!("Figure 2: bandwidth efficiency vs requested bytes");
    println!("{:<18}{:>14}{:>14}", "requested bytes", "PCIe gen 3", "NVLink");
    let pcie = figure2_series(PacketModel::PcieGen3);
    let nv = figure2_series(PacketModel::NvLink);
    for (p, n) in pcie.iter().zip(&nv) {
        assert_eq!(p.0, n.0);
        println!(
            "{:<18}{:>13.1}%{:>13.1}%",
            p.0,
            p.1 * 100.0,
            n.1 * 100.0
        );
    }
    report.finish();
}
