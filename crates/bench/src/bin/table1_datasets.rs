//! Table I: summary of the datasets used in the experiments.
//!
//! Prints vertex/edge counts, estimated diameter, degree extremes, and the
//! structural family for each scaled preset, to be compared against the
//! paper's Table I originals (EXPERIMENTS.md holds the side-by-side).

use atos_bench::{scale_from_args, Dataset};
use atos_graph::stats::stats;

fn main() {
    let scale = scale_from_args();
    println!("Table I: summary of the datasets (scaled presets, {scale:?})");
    println!(
        "{:<22}{:>10}{:>12}{:>8}{:>12}{:>12}{:>8}  type",
        "Dataset", "Vertices", "Edges", "Diam.", "Max indeg", "Max outdeg", "Avg",
    );
    for ds in Dataset::all(scale) {
        let s = stats(&ds.graph);
        println!(
            "{:<22}{:>10}{:>12}{:>8}{:>12}{:>12}{:>8.1}  {}",
            ds.preset.name,
            s.vertices,
            s.edges,
            s.diameter_est,
            s.max_in_degree,
            s.max_out_degree,
            s.avg_degree,
            match ds.preset.kind {
                atos_graph::generators::GraphKind::ScaleFree => "scale-free",
                atos_graph::generators::GraphKind::MeshLike => "mesh-like",
            }
        );
    }
}
