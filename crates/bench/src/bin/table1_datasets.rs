//! Table I: summary of the datasets used in the experiments.
//!
//! Prints vertex/edge counts, estimated diameter, degree extremes, and the
//! structural family for each scaled preset, to be compared against the
//! paper's Table I originals (EXPERIMENTS.md holds the side-by-side).
//!
//! Dataset construction + statistics are the cost here, so each preset is
//! one sweep cell; rows print in preset order regardless of thread count.

use atos_bench::{BenchArgs, Dataset, SweepReport, SweepRunner};
use atos_graph::generators::Preset;
use atos_graph::stats::stats;

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("table1_datasets", &args);
    println!("Table I: summary of the datasets (scaled presets, {:?})", args.scale);
    println!(
        "{:<22}{:>10}{:>12}{:>8}{:>12}{:>12}{:>8}  type",
        "Dataset", "Vertices", "Edges", "Diam.", "Max indeg", "Max outdeg", "Avg",
    );
    let rows = SweepRunner::from_args(&args).run(&Preset::ALL, |_, preset| {
        let ds = Dataset::build(*preset, args.scale);
        let s = stats(&ds.graph);
        format!(
            "{:<22}{:>10}{:>12}{:>8}{:>12}{:>12}{:>8.1}  {}",
            ds.preset.name,
            s.vertices,
            s.edges,
            s.diameter_est,
            s.max_in_degree,
            s.max_out_degree,
            s.avg_degree,
            match ds.preset.kind {
                atos_graph::generators::GraphKind::ScaleFree => "scale-free",
                atos_graph::generators::GraphKind::MeshLike => "mesh-like",
            }
        )
    });
    for row in rows {
        println!("{row}");
    }
    report.finish();
}
