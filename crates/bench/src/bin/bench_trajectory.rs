//! Benchmark-trajectory runner: measures the engine microbench (wheel vs
//! retained heap reference), the fig5/fig8 quick workloads, the shard
//! strong-scaling curve, and the load-balance discipline sweep
//! (`lb_sweep`: per-discipline quick-BFS wall clock + steal counters,
//! delta-stepping vs Dijkstra-order SSSP), gates the fresh numbers
//! against the last committed entries in
//! `results/BENCH_trajectory.json`, and (with `--append`) records them.
//!
//! Usage:
//!
//! ```text
//! bench_trajectory [--sha SHA] [--stamp STAMP] [--events N] [--samples K]
//!                  [--skip-engine] [--skip-e2e] [--skip-sharded] [--skip-lb]
//!                  [--deny-regression PCT] [--min-speedup X]
//!                  [--min-shard-speedup X]
//!                  [--append] [--out PATH]
//! ```
//!
//! The run id is `SHA@STAMP`, both passed in from the command line (the
//! repo's determinism policy keeps wall-clock identity out of the crates;
//! `scripts/verify.sh` supplies `git rev-parse` + `date -u`). With
//! `--deny-regression PCT` the process exits 1 if any freshly measured
//! metric regresses more than PCT percent against the last committed
//! entry of the same kind; `--min-speedup X` additionally enforces the
//! absolute wheel-vs-heap floor on the 1M-event uniform drain, and
//! `--min-shard-speedup X` the K=4 shard-scaling floor on the fig5 Atos
//! cells. The shard floor is only *enforced* when the host has at least 4
//! cores — shard threads are clamped to host parallelism, so on a smaller
//! host the curve is honestly flat and the floor is reported as
//! unenforceable instead of failing. Nothing is written unless `--append`
//! is given, so the gate can run in CI without dirtying the work tree.

use std::collections::BTreeMap;
use std::path::PathBuf;

use atos_bench::trajectory::{
    append_entries, check_regression, fig5_quick_workload, fig8_quick_workload, last_of_kind,
    measure_engine, measure_lb_sweep, measure_sharded_scaling, read_trajectory, TrajectoryEntry,
    DEFAULT_TRAJECTORY_PATH,
};

struct Args {
    sha: String,
    stamp: String,
    events: usize,
    samples: usize,
    skip_engine: bool,
    skip_e2e: bool,
    skip_sharded: bool,
    skip_lb: bool,
    deny_regression: Option<f64>,
    min_speedup: Option<f64>,
    min_shard_speedup: Option<f64>,
    append: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        sha: "local".to_string(),
        stamp: "unstamped".to_string(),
        events: 1_000_000,
        samples: 3,
        skip_engine: false,
        skip_e2e: false,
        skip_sharded: false,
        skip_lb: false,
        deny_regression: None,
        min_speedup: None,
        min_shard_speedup: None,
        append: false,
        out: PathBuf::from(DEFAULT_TRAJECTORY_PATH),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--sha" => a.sha = value("--sha")?,
            "--stamp" => a.stamp = value("--stamp")?,
            "--events" => {
                let v = value("--events")?;
                a.events = v.parse().map_err(|_| format!("invalid --events value `{v}`"))?;
            }
            "--samples" => {
                let v = value("--samples")?;
                a.samples = v.parse().map_err(|_| format!("invalid --samples value `{v}`"))?;
            }
            "--skip-engine" => a.skip_engine = true,
            "--skip-e2e" => a.skip_e2e = true,
            "--skip-sharded" => a.skip_sharded = true,
            "--skip-lb" => a.skip_lb = true,
            "--deny-regression" => {
                let v = value("--deny-regression")?;
                a.deny_regression =
                    Some(v.parse().map_err(|_| format!("invalid --deny-regression value `{v}`"))?);
            }
            "--min-speedup" => {
                let v = value("--min-speedup")?;
                a.min_speedup =
                    Some(v.parse().map_err(|_| format!("invalid --min-speedup value `{v}`"))?);
            }
            "--min-shard-speedup" => {
                let v = value("--min-shard-speedup")?;
                a.min_shard_speedup = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --min-shard-speedup value `{v}`"))?,
                );
            }
            "--append" => a.append = true,
            "--out" => a.out = PathBuf::from(value("--out")?),
            other => {
                return Err(format!(
                    "unknown argument `{other}` (supported: --sha, --stamp, --events N, \
                     --samples K, --skip-engine, --skip-e2e, --skip-sharded, --skip-lb, \
                     --deny-regression PCT, --min-speedup X, --min-shard-speedup X, \
                     --append, --out PATH)"
                ))
            }
        }
    }
    Ok(a)
}

fn print_metrics(kind: &str, metrics: &BTreeMap<String, f64>) {
    println!("{kind}:");
    for (k, v) in metrics {
        if k.ends_with("_ms") {
            println!("  {k:<24} {v:>12.3} ms");
        } else if k.ends_with("_speedup_x") {
            println!("  {k:<24} {v:>12.2} x");
        } else if v.fract() != 0.0 {
            // Fractional diagnostics (barrier_frac, imbalance ratios).
            println!("  {k:<24} {v:>12.3}");
        } else {
            println!("  {k:<24} {v:>12.0}");
        }
    }
}

fn main() {
    atos_bench::pipe_friendly();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let run_id = format!("{}@{}", args.sha, args.stamp);
    let history = match read_trajectory(&args.out) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: could not read {}: {e}", args.out.display());
            std::process::exit(2);
        }
    };

    let mut failures: Vec<String> = Vec::new();
    let mut new_entries: Vec<TrajectoryEntry> = Vec::new();

    if !args.skip_engine {
        let metrics = measure_engine(args.events, args.samples);
        print_metrics("engine_microbench", &metrics);
        if let Some(floor) = args.min_speedup {
            let got = metrics["uniform_speedup_x"];
            if got < floor {
                failures.push(format!(
                    "engine_microbench [uniform_speedup_x]: {got:.2}x below the {floor:.2}x floor"
                ));
            }
        }
        new_entries.push(TrajectoryEntry {
            run_id: run_id.clone(),
            kind: "engine_microbench".to_string(),
            metrics,
        });
    }

    if !args.skip_e2e {
        let mut metrics = BTreeMap::new();
        metrics.insert("fig5_quick_ms".to_string(), fig5_quick_workload());
        metrics.insert("fig8_quick_ms".to_string(), fig8_quick_workload());
        print_metrics("e2e_quick", &metrics);
        new_entries.push(TrajectoryEntry {
            run_id: run_id.clone(),
            kind: "e2e_quick".to_string(),
            metrics,
        });
    }

    if !args.skip_sharded {
        let metrics = measure_sharded_scaling(args.samples);
        print_metrics("sharded_scaling", &metrics);
        if let Some(floor) = args.min_shard_speedup {
            let cores = metrics["host_cores"];
            let got = metrics["fig5_sharded_k4_speedup_x"];
            if cores >= 4.0 {
                if got < floor {
                    failures.push(format!(
                        "sharded_scaling [fig5_sharded_k4_speedup_x]: {got:.2}x below the \
                         {floor:.2}x floor on a {cores:.0}-core host"
                    ));
                }
            } else {
                eprintln!(
                    "[trajectory] note: --min-shard-speedup {floor:.2} not enforceable on a \
                     {cores:.0}-core host (shard threads clamp to host parallelism; measured \
                     {got:.2}x at K=4)"
                );
            }
        }
        new_entries.push(TrajectoryEntry {
            run_id: run_id.clone(),
            kind: "sharded_scaling".to_string(),
            metrics,
        });
    }

    if !args.skip_lb {
        let metrics = measure_lb_sweep(args.samples);
        print_metrics("lb_sweep", &metrics);
        new_entries.push(TrajectoryEntry {
            run_id: run_id.clone(),
            kind: "lb_sweep".to_string(),
            metrics,
        });
    }

    if let Some(pct) = args.deny_regression {
        for cur in &new_entries {
            match last_of_kind(&history, &cur.kind) {
                Some(prev) => failures.extend(check_regression(prev, cur, pct)),
                None => eprintln!(
                    "[trajectory] no committed {} entry in {} — nothing to gate against",
                    cur.kind,
                    args.out.display()
                ),
            }
        }
    }

    if args.append {
        if let Err(e) = append_entries(&args.out, &new_entries) {
            eprintln!("error: could not write {}: {e}", args.out.display());
            std::process::exit(2);
        }
        println!(
            "[trajectory] appended {} entr{} as {run_id} -> {}",
            new_entries.len(),
            if new_entries.len() == 1 { "y" } else { "ies" },
            args.out.display()
        );
    }

    if !failures.is_empty() {
        eprintln!("[trajectory] FAIL: {} regression(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("[trajectory] ok ({run_id})");
}
