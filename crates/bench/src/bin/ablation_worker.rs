//! Ablation: worker granularity (thread / warp / CTA) and fetch size.
//!
//! The paper fixes 512-thread CTA workers ("which achieve the best
//! performance for both BFS and PageRank") citing its single-GPU
//! predecessor for the sweep; this binary reproduces that sweep on the
//! simulator's cost model: smaller workers lose neighbor-list coalescing
//! (higher per-edge cost), larger fetch amortizes pops but delays
//! communication.
//!
//! Each (worker shape, fetch) point is one sweep cell.

use atos_apps::bfs::BfsApp;
use atos_bench::{sweep::record_sim_events, BenchArgs, Dataset, SweepReport, SweepRunner};
use atos_core::{AtosConfig, Runtime, WorkerConfig, WorkerSize};
use atos_graph::generators::Preset;
use atos_sim::Fabric;

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("ablation_worker", &args);
    let ds = Dataset::build(Preset::by_name("soc-LiveJournal1_s").unwrap(), args.scale);
    let part = ds.partition(4);

    println!("Worker-shape ablation: BFS soc-LiveJournal1_s, 4 NVLink GPUs\n");
    println!(
        "{:<14}{:>8}{:>14}{:>14}{:>12}",
        "worker", "fetch", "time (ms)", "steps", "messages"
    );
    let shapes = [
        ("thread", WorkerSize::Thread),
        ("warp", WorkerSize::Warp),
        ("cta-256", WorkerSize::Cta(256)),
        ("cta-512", WorkerSize::Cta(512)),
    ];
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for s in 0..shapes.len() {
        for fetch in [8usize, 32, 128] {
            cells.push((s, fetch));
        }
    }
    let rows = SweepRunner::from_args(&args).run(&cells, |_, &(s, fetch)| {
        let worker = WorkerConfig {
            size: shapes[s].1,
            fetch,
            num_workers: 160,
        };
        let cfg = AtosConfig {
            worker,
            ..AtosConfig::standard_persistent()
        };
        let app = BfsApp::new(ds.graph.clone(), part.clone(), ds.source);
        let mut rt = Runtime::with_cost_model(app, Fabric::daisy(4), cfg, worker.cost_model());
        rt.seed(part.owner(ds.source), [(ds.source, 0u32)]);
        let stats = rt.run();
        record_sim_events(stats.sim_events);
        format!(
            "{:<14}{:>8}{:>14.3}{:>14}{:>12}",
            shapes[s].0,
            fetch,
            stats.elapsed_ms(),
            stats.steps_per_pe.iter().sum::<u64>(),
            stats.messages
        )
    });
    for r in rows {
        println!("{r}");
    }
    println!("\nCTA workers win on scale-free graphs: coalesced neighbor-list");
    println!("reads dominate, and the per-pop overhead amortizes across lanes.");
    report.finish();
}
