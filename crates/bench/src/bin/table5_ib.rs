//! Table V: BFS and PageRank runtimes in ms (speedups vs. Galois) on
//! Summit (InfiniBand), one GPU per node, 1–8 GPUs.

use atos_bench::{ib_ms, print_table_block, scale_from_args, Dataset};

fn main() {
    let scale = scale_from_args();
    let datasets = Dataset::all(scale);
    let gpus = [1usize, 2, 3, 4, 5, 6, 7, 8];

    println!("Table V: BFS and PageRank runtimes in ms (speedups vs Galois) on Summit (IB)");
    for app in ["bfs", "pr"] {
        let title = if app == "bfs" { "BFS" } else { "PageRank" };
        let mut galois_rows = Vec::new();
        let mut atos_rows = Vec::new();
        for ds in &datasets {
            let label = format!("{}{}", ds.preset.name, ds.preset.kind.suffix());
            let gms: Vec<f64> = gpus.iter().map(|&g| ib_ms("Galois", app, ds, g)).collect();
            let ams: Vec<f64> = gpus.iter().map(|&g| ib_ms("Atos", app, ds, g)).collect();
            galois_rows.push((label.clone(), gms));
            atos_rows.push((label, ams));
        }
        print_table_block(&format!("{title} on Galois"), &gpus, &galois_rows, None);
        print_table_block(
            &format!("{title} on Atos"),
            &gpus,
            &atos_rows,
            Some(&galois_rows),
        );
    }
}
