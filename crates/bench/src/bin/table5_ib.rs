//! Table V: BFS and PageRank runtimes in ms (speedups vs. Galois) on
//! Summit (InfiniBand), one GPU per node, 1–8 GPUs.
//!
//! The (app, dataset, framework, gpus) grid is fanned over the sweep
//! harness; results are keyed by grid index, so the table is
//! byte-identical at any `--threads` setting.

use atos_bench::{ib_ms, print_table_block, BenchArgs, Dataset, SweepReport, SweepRunner};

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("table5_ib", &args);
    let datasets = Dataset::all(args.scale);
    let gpus = [1usize, 2, 3, 4, 5, 6, 7, 8];
    let apps = ["bfs", "pr"];
    let frameworks = ["Galois", "Atos"];

    let mut cells: Vec<(usize, usize, usize, usize)> = Vec::new();
    for a in 0..apps.len() {
        for d in 0..datasets.len() {
            for f in 0..frameworks.len() {
                for &g in &gpus {
                    cells.push((a, d, f, g));
                }
            }
        }
    }
    let ms = SweepRunner::from_args(&args).run(&cells, |_, &(a, d, f, g)| {
        ib_ms(frameworks[f], apps[a], &datasets[d], g)
    });

    println!("Table V: BFS and PageRank runtimes in ms (speedups vs Galois) on Summit (IB)");
    let mut it = ms.iter();
    for app in apps {
        let title = if app == "bfs" { "BFS" } else { "PageRank" };
        let mut galois_rows = Vec::new();
        let mut atos_rows = Vec::new();
        for ds in &datasets {
            let label = format!("{}{}", ds.preset.name, ds.preset.kind.suffix());
            let gms: Vec<f64> = gpus.iter().map(|_| *it.next().unwrap()).collect();
            let ams: Vec<f64> = gpus.iter().map(|_| *it.next().unwrap()).collect();
            galois_rows.push((label.clone(), gms));
            atos_rows.push((label, ams));
        }
        print_table_block(&format!("{title} on Galois"), &gpus, &galois_rows, None);
        print_table_block(
            &format!("{title} on Atos"),
            &gpus,
            &atos_rows,
            Some(&galois_rows),
        );
    }
    report.finish();
}
