//! Ablation: communication smoothing.
//!
//! The paper's claim (Sections I and IV): Atos's spread-out, fine-grained
//! communication "smooths the spikes in network communication that
//! typically occur when communication is isolated in a single phase".
//! This binary quantifies it: traffic burstiness (coefficient of variation
//! of wire bytes per 50 µs bucket) and peak-to-mean ratio for each
//! framework on the same workload.

use atos_apps::bfs::run_bfs;
use atos_apps::pagerank::run_pagerank;
use atos_baselines::{bsp_bfs, bsp_pagerank, groute_bfs};
use atos_bench::{scale_from_args, Dataset, ALPHA, EPSILON};
use atos_core::{AtosConfig, RunStats};
use atos_graph::generators::Preset;
use atos_sim::Fabric;

fn row(name: &str, stats: &RunStats) {
    println!(
        "{:<42}{:>12.3}{:>12}{:>14.2}{:>16.1}",
        name,
        stats.elapsed_ms(),
        stats.messages,
        stats.burstiness.unwrap_or(f64::NAN),
        stats.wire_bytes as f64 / 1e6,
    );
}

fn main() {
    let scale = scale_from_args();
    let ds = Dataset::build(Preset::by_name("soc-LiveJournal1_s").unwrap(), scale);
    let part = ds.partition(4);

    println!("Communication smoothing, BFS + PageRank on soc-LiveJournal1_s, 4 GPUs\n");
    println!(
        "{:<42}{:>12}{:>12}{:>14}{:>16}",
        "framework", "time (ms)", "messages", "burstiness", "wire MB"
    );

    let bsp = bsp_bfs(ds.graph.clone(), part.clone(), ds.source, Fabric::daisy(4));
    row("BFS: Gunrock-like (BSP)", &bsp.stats);
    let groute = groute_bfs(ds.graph.clone(), part.clone(), ds.source, Fabric::daisy(4));
    row("BFS: Groute-like", &groute.stats);
    let atos = run_bfs(
        ds.graph.clone(),
        part.clone(),
        ds.source,
        Fabric::daisy(4),
        AtosConfig::standard_persistent(),
    );
    row("BFS: Atos (queue+persistent)", &atos.stats);

    let bsp_pr = bsp_pagerank(ds.graph.clone(), part.clone(), ALPHA, EPSILON, Fabric::daisy(4));
    row("PR: Gunrock-like (BSP)", &bsp_pr.stats);
    let atos_pr = run_pagerank(
        ds.graph.clone(),
        part.clone(),
        ALPHA,
        EPSILON,
        Fabric::daisy(4),
        AtosConfig::standard_persistent(),
    );
    row("PR: Atos (queue+persistent)", &atos_pr.stats);

    println!("\nLower burstiness = smoother interconnect usage. BSP isolates all");
    println!("traffic at iteration barriers; Atos issues one-sided pushes from");
    println!("inside the kernel, spreading bytes across the whole runtime.");
}
