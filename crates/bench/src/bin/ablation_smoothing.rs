//! Ablation: communication smoothing.
//!
//! The paper's claim (Sections I and IV): Atos's spread-out, fine-grained
//! communication "smooths the spikes in network communication that
//! typically occur when communication is isolated in a single phase".
//! This binary quantifies it: traffic burstiness (coefficient of variation
//! of wire bytes per [`atos_sim::trace::BUCKET_NS`] bucket) and
//! peak-to-mean ratio for each framework on the same workload.
//!
//! The five framework runs are independent; each is one sweep cell.

use atos_apps::bfs::run_bfs;
use atos_apps::pagerank::run_pagerank;
use atos_baselines::{bsp_bfs, bsp_pagerank, groute_bfs};
use atos_bench::{
    sweep::record_sim_events, BenchArgs, Dataset, SweepReport, SweepRunner, ALPHA, EPSILON,
};
use atos_core::{AtosConfig, RunStats};
use atos_graph::generators::Preset;
use atos_sim::Fabric;

fn row(name: &str, stats: &RunStats) {
    println!(
        "{:<42}{:>12.3}{:>12}{:>14.2}{:>16.1}",
        name,
        stats.elapsed_ms(),
        stats.messages,
        stats.burstiness.unwrap_or(f64::NAN),
        stats.wire_bytes as f64 / 1e6,
    );
}

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("ablation_smoothing", &args);
    let ds = Dataset::build(Preset::by_name("soc-LiveJournal1_s").unwrap(), args.scale);
    let part = ds.partition(4);

    println!("Communication smoothing, BFS + PageRank on soc-LiveJournal1_s, 4 GPUs\n");
    println!(
        "{:<42}{:>12}{:>12}{:>14}{:>16}",
        "framework", "time (ms)", "messages", "burstiness", "wire MB"
    );

    let labels = [
        "BFS: Gunrock-like (BSP)",
        "BFS: Groute-like",
        "BFS: Atos (queue+persistent)",
        "PR: Gunrock-like (BSP)",
        "PR: Atos (queue+persistent)",
    ];
    let cells: Vec<usize> = (0..labels.len()).collect();
    let runs = SweepRunner::from_args(&args).run(&cells, |_, &which| {
        let stats = match which {
            0 => bsp_bfs(ds.graph.clone(), part.clone(), ds.source, Fabric::daisy(4)).stats,
            1 => groute_bfs(ds.graph.clone(), part.clone(), ds.source, Fabric::daisy(4)).stats,
            2 => {
                run_bfs(
                    ds.graph.clone(),
                    part.clone(),
                    ds.source,
                    Fabric::daisy(4),
                    AtosConfig::standard_persistent(),
                )
                .stats
            }
            3 => {
                bsp_pagerank(ds.graph.clone(), part.clone(), ALPHA, EPSILON, Fabric::daisy(4))
                    .stats
            }
            _ => {
                run_pagerank(
                    ds.graph.clone(),
                    part.clone(),
                    ALPHA,
                    EPSILON,
                    Fabric::daisy(4),
                    AtosConfig::standard_persistent(),
                )
                .stats
            }
        };
        record_sim_events(stats.sim_events);
        stats
    });
    for (label, stats) in labels.iter().zip(&runs) {
        row(label, stats);
    }

    println!("\nLower burstiness = smoother interconnect usage. BSP isolates all");
    println!("traffic at iteration barriers; Atos issues one-sided pushes from");
    println!("inside the kernel, spreading bytes across the whole runtime.");
    report.finish();
}
