//! Figures 6 & 7: latency tolerance across NVLink topologies.
//!
//! Figure 6 contrasts the all-to-all Daisy topology with a Summit node's
//! dual-socket layout, where cross-socket traffic pays X-bus latency.
//! Figure 7 strong-scales Gunrock vs Atos on one Summit node (1–6 GPUs)
//! for BFS (soc-LiveJournal1, indochina) and PageRank (same), showing
//! Gunrock's scaling collapse beyond 3 GPUs and Atos's latency tolerance.
//!
//! Each (dataset, app, framework, gpus) cell is one sweep unit.

use std::sync::Arc;

use atos_apps::bfs::run_bfs;
use atos_apps::pagerank::run_pagerank;
use atos_baselines::{bsp_bfs, bsp_pagerank};
use atos_bench::{
    ms_of, relative_speedup, BenchArgs, Dataset, SweepReport, SweepRunner, ALPHA, EPSILON,
};
use atos_core::AtosConfig;
use atos_graph::generators::Preset;
use atos_graph::partition::Partition;
use atos_sim::Fabric;

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("fig7_summit_node", &args);
    let gpus = [1usize, 2, 3, 4, 5, 6];
    let names = ["soc-LiveJournal1_s", "indochina_2004_s"];
    let apps = ["BFS", "PageRank"];
    let frameworks = ["Gunrock", "Atos"];
    let datasets: Vec<Dataset> = names
        .iter()
        .map(|n| Dataset::build(Preset::by_name(n).unwrap(), args.scale))
        .collect();

    let mut cells: Vec<(usize, usize, usize, usize)> = Vec::new();
    for d in 0..datasets.len() {
        for a in 0..apps.len() {
            for f in 0..frameworks.len() {
                for &g in &gpus {
                    cells.push((d, a, f, g));
                }
            }
        }
    }
    let ms = SweepRunner::from_args(&args).run(&cells, |_, &(d, a, f, g)| {
        let ds = &datasets[d];
        let part = if g == 1 {
            Arc::new(Partition::single(ds.graph.n_vertices()))
        } else {
            Arc::new(Partition::bfs_grow(&ds.graph, g, 42))
        };
        let fabric = Fabric::summit_node(g);
        let stats = match (frameworks[f], apps[a]) {
            ("Gunrock", "BFS") => bsp_bfs(ds.graph.clone(), part, ds.source, fabric).stats,
            ("Gunrock", _) => {
                bsp_pagerank(ds.graph.clone(), part, ALPHA, EPSILON, fabric).stats
            }
            ("Atos", "BFS") => run_bfs(
                ds.graph.clone(),
                part,
                ds.source,
                fabric,
                AtosConfig::priority_discrete(),
            )
            .stats,
            ("Atos", _) => run_pagerank(
                ds.graph.clone(),
                part,
                ALPHA,
                EPSILON,
                fabric,
                AtosConfig::standard_discrete(),
            )
            .stats,
            _ => unreachable!(),
        };
        ms_of(&stats)
    });

    println!("Figure 7: strong scaling on one Summit node (dual-socket NVLink)");
    println!("(Figure 6's two topologies are Fabric::daisy and Fabric::summit_node.)");
    let mut it = ms.iter();
    for name in names {
        for app in apps {
            println!("\n-- {app}-{name} --");
            print!("{:<22}", "framework");
            for g in gpus {
                print!("{:>10}", format!("{g} GPU"));
            }
            println!();
            for fw in frameworks {
                let series: Vec<f64> = gpus.iter().map(|_| *it.next().unwrap()).collect();
                let rel = relative_speedup(&series);
                print!("{fw:<22}");
                for r in rel {
                    print!("{r:>10.2}");
                }
                println!();
            }
        }
    }
    report.finish();
}
