//! Figures 6 & 7: latency tolerance across NVLink topologies.
//!
//! Figure 6 contrasts the all-to-all Daisy topology with a Summit node's
//! dual-socket layout, where cross-socket traffic pays X-bus latency.
//! Figure 7 strong-scales Gunrock vs Atos on one Summit node (1–6 GPUs)
//! for BFS (soc-LiveJournal1, indochina) and PageRank (same), showing
//! Gunrock's scaling collapse beyond 3 GPUs and Atos's latency tolerance.

use std::sync::Arc;

use atos_apps::bfs::run_bfs;
use atos_apps::pagerank::run_pagerank;
use atos_baselines::{bsp_bfs, bsp_pagerank};
use atos_bench::{relative_speedup, scale_from_args, Dataset, ALPHA, EPSILON};
use atos_core::AtosConfig;
use atos_graph::generators::Preset;
use atos_graph::partition::Partition;
use atos_sim::Fabric;

fn main() {
    let scale = scale_from_args();
    let gpus = [1usize, 2, 3, 4, 5, 6];
    let names = ["soc-LiveJournal1_s", "indochina_2004_s"];
    println!("Figure 7: strong scaling on one Summit node (dual-socket NVLink)");
    println!("(Figure 6's two topologies are Fabric::daisy and Fabric::summit_node.)");

    for name in names {
        let ds = Dataset::build(Preset::by_name(name).unwrap(), scale);
        for app in ["BFS", "PageRank"] {
            println!("\n-- {app}-{name} --");
            print!("{:<22}", "framework");
            for g in gpus {
                print!("{:>10}", format!("{g} GPU"));
            }
            println!();
            for fw in ["Gunrock", "Atos"] {
                let ms: Vec<f64> = gpus
                    .iter()
                    .map(|&g| {
                        let part = if g == 1 {
                            Arc::new(Partition::single(ds.graph.n_vertices()))
                        } else {
                            Arc::new(Partition::bfs_grow(&ds.graph, g, 42))
                        };
                        let fabric = Fabric::summit_node(g);
                        match (fw, app) {
                            ("Gunrock", "BFS") => {
                                bsp_bfs(ds.graph.clone(), part, ds.source, fabric)
                                    .stats
                                    .elapsed_ms()
                            }
                            ("Gunrock", _) => {
                                bsp_pagerank(ds.graph.clone(), part, ALPHA, EPSILON, fabric)
                                    .stats
                                    .elapsed_ms()
                            }
                            ("Atos", "BFS") => run_bfs(
                                ds.graph.clone(),
                                part,
                                ds.source,
                                fabric,
                                AtosConfig::priority_discrete(),
                            )
                            .stats
                            .elapsed_ms(),
                            ("Atos", _) => run_pagerank(
                                ds.graph.clone(),
                                part,
                                ALPHA,
                                EPSILON,
                                fabric,
                                AtosConfig::standard_discrete(),
                            )
                            .stats
                            .elapsed_ms(),
                            _ => unreachable!(),
                        }
                    })
                    .collect();
                let rel = relative_speedup(&ms);
                print!("{fw:<22}");
                for r in rel {
                    print!("{r:>10.2}");
                }
                println!();
            }
        }
    }
}
