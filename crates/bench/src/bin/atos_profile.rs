//! `atos-profile` — bottleneck report from a sharded-run metrics snapshot.
//!
//! Usage:
//!
//! ```text
//! atos-profile METRICS.json      # read a --metrics snapshot from a file
//! atos-profile -                 # ...or from stdin
//! some-bench --quick --sim-threads 4 --metrics /dev/stdout | atos-profile -
//! ```
//!
//! The snapshot comes from any bench binary run with
//! `--sim-threads K --metrics PATH` (K > 1). The report prints per-shard
//! barrier-wait quantiles, exchange volumes, an imbalance verdict, the
//! barrier-overhead fraction, and a scaling-headroom estimate; see
//! EXPERIMENTS.md "diagnosing a flat scaling curve". Exits 1 (with the
//! reason on stderr) when the snapshot is malformed or carries no sharded
//! telemetry.

use std::io::Read;

fn main() {
    atos_bench::pipe_friendly();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() > 1 {
        eprintln!("usage: atos-profile [METRICS.json | -]");
        std::process::exit(2);
    }
    let source = args.first().map(String::as_str).unwrap_or("-");
    let text = if source == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("error: could not read stdin: {e}");
            std::process::exit(1);
        }
        buf
    } else {
        match std::fs::read_to_string(source) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: could not read {source}: {e}");
                std::process::exit(1);
            }
        }
    };
    match atos_bench::render_report(&text) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
