//! Figure 8: strong scaling of BFS on four datasets on the 8-node
//! InfiniBand system (speedup relative to each framework's own 1-GPU
//! runtime). Cells are fanned over the parallel sweep harness.

use atos_bench::{ib_ms, relative_speedup, BenchArgs, Dataset, SweepReport, SweepRunner};
use atos_graph::generators::Preset;

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("fig8_scaling_ib_bfs", &args);
    let gpus = [1usize, 2, 3, 4, 5, 6, 7, 8];
    let frameworks = ["Galois", "Atos"];
    let datasets: Vec<Dataset> = Preset::SCALING
        .iter()
        .map(|n| Dataset::build(Preset::by_name(n).unwrap(), args.scale))
        .collect();

    let mut cells: Vec<(usize, usize, usize)> = Vec::new();
    for d in 0..datasets.len() {
        for f in 0..frameworks.len() {
            for &g in &gpus {
                cells.push((d, f, g));
            }
        }
    }
    let ms = SweepRunner::from_args(&args).run(&cells, |_, &(d, f, g)| {
        ib_ms(frameworks[f], "bfs", &datasets[d], g)
    });

    println!("Figure 8: BFS strong scaling on Summit (IB), self-relative");
    let mut it = ms.iter();
    for ds in &datasets {
        println!("\n-- {} --", ds.preset.name);
        print!("{:<10}", "framework");
        for g in gpus {
            print!("{:>8}", format!("{g}GPU"));
        }
        println!();
        for fw in frameworks {
            let series: Vec<f64> = gpus.iter().map(|_| *it.next().unwrap()).collect();
            print!("{fw:<10}");
            for r in relative_speedup(&series) {
                print!("{r:>8.2}");
            }
            println!();
        }
    }
    report.finish();
}
