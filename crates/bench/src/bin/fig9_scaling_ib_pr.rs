//! Figure 9: strong scaling of PageRank on four datasets on the 8-node
//! InfiniBand system (speedup relative to each framework's own 1-GPU
//! runtime).

use atos_bench::{ib_ms, relative_speedup, scale_from_args, Dataset};
use atos_graph::generators::Preset;

fn main() {
    let scale = scale_from_args();
    let gpus = [1usize, 2, 3, 4, 5, 6, 7, 8];
    println!("Figure 9: PageRank strong scaling on Summit (IB), self-relative");
    for name in Preset::SCALING {
        let ds = Dataset::build(Preset::by_name(name).unwrap(), scale);
        println!("\n-- {} --", ds.preset.name);
        print!("{:<10}", "framework");
        for g in gpus {
            print!("{:>8}", format!("{g}GPU"));
        }
        println!();
        for fw in ["Galois", "Atos"] {
            let ms: Vec<f64> = gpus.iter().map(|&g| ib_ms(fw, "pr", &ds, g)).collect();
            print!("{fw:<10}");
            for r in relative_speedup(&ms) {
                print!("{r:>8.2}");
            }
            println!();
        }
    }
}
