//! Figure 1: runtime of concurrent push / pop / pop-and-push vs. thread
//! count for our counter queue (warp and CTA workers), the broker queue,
//! and the CAS queue (warp and CTA).
//!
//! This is the one experiment that runs on *real host threads and
//! atomics*, not the simulator — the queue algorithms are memory-model
//! constructs and their contention behavior is measured directly. For
//! that reason the measurement loop stays serial regardless of
//! `--threads`: fanning contention measurements over sweep workers would
//! have them steal each other's cores and corrupt the timings. The flag
//! is still accepted (and recorded in the report) for interface
//! uniformity.

use atos_bench::{BenchArgs, SweepReport};
use atos_graph::generators::Scale;
use atos_queue::bench_harness::{run, Experiment, QueueKind, OPS_PER_VIRTUAL_THREAD};

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("fig1_queue", &args);
    let points: Vec<usize> = if args.scale == Scale::Tiny {
        vec![1 << 10, 1 << 13]
    } else {
        vec![1 << 10, 1 << 12, 1 << 14, 1 << 15, 1 << 16, 96 * 1024, 128 * 1024]
    };
    println!(
        "Figure 1: queue microbenchmarks ({} ops per virtual thread)",
        OPS_PER_VIRTUAL_THREAD
    );
    for exp in Experiment::ALL {
        println!("\n== {} ==", exp.label());
        print!("{:<18}", "#threads");
        for kind in QueueKind::ALL {
            print!("{:>18}", kind.label());
        }
        println!();
        for &n in &points {
            print!("{n:<18}");
            for kind in QueueKind::ALL {
                // Median of 3 to damp scheduler noise.
                let mut ts: Vec<f64> = (0..3)
                    .map(|_| run(kind, exp, n).elapsed.as_secs_f64() * 1e3)
                    .collect();
                ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
                print!("{:>18}", format!("{:.3} ms", ts[1]));
            }
            println!();
        }
    }
    report.finish();
}
