//! Figure 5: strong scaling of BFS (left) and PageRank (right) on four
//! datasets on the NVLink system. Each framework's speedup is relative to
//! its own single-GPU runtime (self-to-self).
//!
//! Every (app, dataset, framework, gpus) cell is one sweep unit; the
//! self-relative normalization happens after the grid completes.

use atos_bench::{
    bfs_nvlink_ms, pr_nvlink_ms, relative_speedup, BenchArgs, Dataset, SweepReport, SweepRunner,
    BFS_NVLINK_FRAMEWORKS, PR_NVLINK_FRAMEWORKS,
};
use atos_graph::generators::Preset;

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("fig5_scaling_nvlink", &args);
    let gpus = [1usize, 2, 3, 4];
    let datasets: Vec<Dataset> = Preset::SCALING
        .iter()
        .map(|n| Dataset::build(Preset::by_name(n).unwrap(), args.scale))
        .collect();
    let apps = [
        ("BFS", BFS_NVLINK_FRAMEWORKS.as_slice()),
        ("PageRank", PR_NVLINK_FRAMEWORKS.as_slice()),
    ];

    let mut cells: Vec<(usize, usize, usize, usize)> = Vec::new();
    for (a, (_, frameworks)) in apps.iter().enumerate() {
        for d in 0..datasets.len() {
            for f in 0..frameworks.len() {
                for &g in &gpus {
                    cells.push((a, d, f, g));
                }
            }
        }
    }
    let ms = SweepRunner::from_args(&args).run(&cells, |_, &(a, d, f, g)| {
        let fw = apps[a].1[f];
        if apps[a].0 == "BFS" {
            bfs_nvlink_ms(fw, &datasets[d], g)
        } else {
            pr_nvlink_ms(fw, &datasets[d], g)
        }
    });

    let mut it = ms.iter();
    for (app, frameworks) in apps {
        println!("\nFigure 5 ({app}): relative speedup vs own 1-GPU runtime");
        for ds in &datasets {
            println!("\n-- {} --", ds.preset.name);
            print!("{:<40}", "framework");
            for g in gpus {
                print!("{:>10}", format!("{g} GPU"));
            }
            println!();
            for fw in frameworks {
                let series: Vec<f64> = gpus.iter().map(|_| *it.next().unwrap()).collect();
                let rel = relative_speedup(&series);
                print!("{fw:<40}");
                for r in rel {
                    print!("{r:>10.2}");
                }
                println!();
            }
        }
    }
    report.finish();
}
