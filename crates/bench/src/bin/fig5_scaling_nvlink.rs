//! Figure 5: strong scaling of BFS (left) and PageRank (right) on four
//! datasets on the NVLink system. Each framework's speedup is relative to
//! its own single-GPU runtime (self-to-self).

use atos_bench::{
    bfs_nvlink_ms, pr_nvlink_ms, relative_speedup, scale_from_args, Dataset,
    BFS_NVLINK_FRAMEWORKS, PR_NVLINK_FRAMEWORKS,
};
use atos_graph::generators::Preset;

fn main() {
    let scale = scale_from_args();
    let gpus = [1usize, 2, 3, 4];
    let datasets: Vec<Dataset> = Preset::SCALING
        .iter()
        .map(|n| Dataset::build(Preset::by_name(n).unwrap(), scale))
        .collect();

    for (app, frameworks) in [
        ("BFS", BFS_NVLINK_FRAMEWORKS.as_slice()),
        ("PageRank", PR_NVLINK_FRAMEWORKS.as_slice()),
    ] {
        println!("\nFigure 5 ({app}): relative speedup vs own 1-GPU runtime");
        for ds in &datasets {
            println!("\n-- {} --", ds.preset.name);
            print!("{:<40}", "framework");
            for g in gpus {
                print!("{:>10}", format!("{g} GPU"));
            }
            println!();
            for fw in frameworks {
                let ms: Vec<f64> = gpus
                    .iter()
                    .map(|&g| {
                        if app == "BFS" {
                            bfs_nvlink_ms(fw, ds, g)
                        } else {
                            pr_nvlink_ms(fw, ds, g)
                        }
                    })
                    .collect();
                let rel = relative_speedup(&ms);
                print!("{fw:<40}");
                for r in rel {
                    print!("{r:>10.2}");
                }
                println!();
            }
        }
    }
}
