//! Figure 4: message latency and achieved bandwidth vs. message size on
//! the InfiniBand system; identifies the batch-size sweet spot the
//! aggregator uses (the paper picks 2^20 B).
//!
//! "each send is performed as a blocking send operation followed by a
//! system memory fence ... and a remote counter update" — modeled as a
//! GPU-initiated transfer of the payload followed by an 8-byte counter
//! update on the same path.
//!
//! Each message size is one sweep cell (a fresh two-node fabric per
//! point, so cells are independent).

use atos_bench::{BenchArgs, SweepReport, SweepRunner};
use atos_sim::{ControlPath, Fabric, PeId};

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("fig4_ib_sweep", &args);
    println!("Figure 4: IB latency and bandwidth vs message size");
    println!(
        "{:<14}{:>16}{:>18}",
        "log2(bytes)", "latency (ms)", "bandwidth (GB/s)"
    );
    let cp = ControlPath::gpu_direct();
    let sizes: Vec<u32> = (0..=30u32).collect();
    let points = SweepRunner::from_args(&args).run(&sizes, |_, &lg| {
        let bytes = 1u64 << lg;
        let mut fabric = Fabric::ib_cluster(2);
        let t0 = 0;
        let arrive = fabric.transfer(t0, PeId(0), PeId(1), bytes, cp);
        // Trailing 8-byte counter update (flag the receiver).
        let done = fabric.transfer(arrive, PeId(0), PeId(1), 8, cp);
        let latency_ms = done as f64 / 1e6;
        let bw = bytes as f64 / (done as f64); // bytes/ns == GB/s
        (latency_ms, bw)
    });
    let mut best = (0u32, f64::MAX);
    for (lg, &(latency_ms, bw)) in sizes.iter().zip(&points) {
        println!("{lg:<14}{latency_ms:>16.4}{bw:>18.3}");
        // Score the latency/bandwidth knee like the paper: smallest size
        // within 90% of peak bandwidth.
        if bw > 0.9 * 12.5 && latency_ms < best.1 {
            best = (*lg, latency_ms);
        }
    }
    println!(
        "\nKnee: 2^{} bytes reaches >90% of peak injection bandwidth at {:.3} ms latency",
        best.0, best.1
    );
    println!("(The paper selects BATCH_SIZE = 2^20 B = 1 MiB.)");
    report.finish();
}
