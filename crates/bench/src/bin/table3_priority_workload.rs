//! Table III: normalized BFS workload without → with the priority queue.
//!
//! Counts total vertex visits normalized by an ideal traversal that visits
//! each reachable vertex exactly once, for the scale-free datasets on 1–4
//! NVLink GPUs. The paper's claim: speculation causes redundant work that
//! grows with GPU count, and depth-ordered priority scheduling reduces it.

use atos_apps::bfs::run_bfs;
use atos_bench::{scale_from_args, Dataset};
use atos_core::AtosConfig;
use atos_graph::generators::GraphKind;
use atos_sim::Fabric;

fn main() {
    let scale = scale_from_args();
    let gpus = [1usize, 2, 3, 4];
    println!("Table III: normalized workload without -> with priority queue");
    print!("{:<22}", "Dataset");
    for g in gpus {
        print!("{:>18}", format!("{g} GPU{}", if g > 1 { "s" } else { "" }));
    }
    println!();
    for ds in Dataset::all(scale) {
        if ds.preset.kind != GraphKind::ScaleFree {
            continue;
        }
        print!("{:<22}", ds.preset.name);
        for g in gpus {
            let part = ds.partition(g);
            let fifo = run_bfs(
                ds.graph.clone(),
                part.clone(),
                ds.source,
                Fabric::daisy(g),
                AtosConfig::standard_persistent(),
            );
            let prio = run_bfs(
                ds.graph.clone(),
                part,
                ds.source,
                Fabric::daisy(g),
                AtosConfig::priority_discrete(),
            );
            print!(
                "{:>18}",
                format!(
                    "{:.3} -> {:.3}",
                    fifo.normalized_workload(),
                    prio.normalized_workload()
                )
            );
        }
        println!();
    }
}
