//! Table III: normalized BFS workload without → with the priority queue,
//! plus the same priority story told end-to-end: Dijkstra-order vs
//! delta-stepping SSSP.
//!
//! The BFS block counts total vertex visits normalized by an ideal
//! traversal that visits each reachable vertex exactly once, for the
//! scale-free datasets on 1–4 NVLink GPUs. The paper's claim: speculation
//! causes redundant work that grows with GPU count, and depth-ordered
//! priority scheduling reduces it.
//!
//! The SSSP block promotes the priority workload to a first-class
//! algorithm comparison: Dijkstra-order SSSP (priority queue, delta = 1 —
//! work-optimal but serializing) against light/heavy split delta-stepping
//! ([`atos_apps::sssp::run_sssp_delta`], delta = 8), reporting virtual
//! milliseconds. Both formulations are asserted to produce identical
//! distances before either number is printed.
//!
//! Each (dataset, gpus) cell runs both configurations and is one unit of
//! the parallel sweep.

use std::sync::Arc;

use atos_apps::bfs::run_bfs;
use atos_apps::sssp::{run_sssp, run_sssp_delta};
use atos_bench::{sweep::record_sim_events, BenchArgs, Dataset, SweepReport, SweepRunner};
use atos_core::AtosConfig;
use atos_graph::generators::GraphKind;
use atos_graph::weights::EdgeWeights;
use atos_sim::Fabric;

/// Delta-stepping bucket width for the SSSP block (weights are 1..=64,
/// so delta 8 leaves most edges heavy — the regime where the split
/// matters).
const SSSP_DELTA: u64 = 8;
/// Maximum edge weight for the SSSP block's synthetic weights.
const SSSP_MAX_WEIGHT: u32 = 64;
/// Seed for the SSSP block's synthetic weights.
const SSSP_WEIGHT_SEED: u64 = 1;

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("table3_priority_workload", &args);
    let gpus = [1usize, 2, 3, 4];
    let datasets: Vec<Dataset> = Dataset::all(args.scale)
        .into_iter()
        .filter(|ds| ds.preset.kind == GraphKind::ScaleFree)
        .collect();

    let mut cells: Vec<(usize, usize)> = Vec::new();
    for d in 0..datasets.len() {
        for &g in &gpus {
            cells.push((d, g));
        }
    }
    let pairs = SweepRunner::from_args(&args).run(&cells, |_, &(d, g)| {
        let ds = &datasets[d];
        let part = ds.partition(g);
        let fifo = run_bfs(
            ds.graph.clone(),
            part.clone(),
            ds.source,
            Fabric::daisy(g),
            AtosConfig::standard_persistent(),
        );
        let prio = run_bfs(
            ds.graph.clone(),
            part,
            ds.source,
            Fabric::daisy(g),
            AtosConfig::priority_discrete(),
        );
        record_sim_events(fifo.stats.sim_events + prio.stats.sim_events);
        (fifo.normalized_workload(), prio.normalized_workload())
    });

    println!("Table III: normalized workload without -> with priority queue");
    print!("{:<22}", "Dataset");
    for g in gpus {
        print!("{:>18}", format!("{g} GPU{}", if g > 1 { "s" } else { "" }));
    }
    println!();
    let mut it = pairs.iter();
    for ds in &datasets {
        print!("{:<22}", ds.preset.name);
        for _ in gpus {
            let (fifo, prio) = it.next().unwrap();
            print!("{:>18}", format!("{fifo:.3} -> {prio:.3}"));
        }
        println!();
    }

    let sssp_pairs = SweepRunner::from_args(&args).run(&cells, |_, &(d, g)| {
        let ds = &datasets[d];
        let part = ds.partition(g);
        let weights = Arc::new(EdgeWeights::random(&ds.graph, SSSP_MAX_WEIGHT, SSSP_WEIGHT_SEED));
        let dij = run_sssp(
            ds.graph.clone(),
            weights.clone(),
            part.clone(),
            ds.source,
            1,
            Fabric::daisy(g),
            AtosConfig::priority_discrete(),
        );
        let delta = run_sssp_delta(
            ds.graph.clone(),
            weights,
            part,
            ds.source,
            SSSP_DELTA,
            Fabric::daisy(g),
            AtosConfig::priority_discrete(),
        );
        assert_eq!(
            delta.dist, dij.dist,
            "delta-stepping diverged from Dijkstra-order on {} at {g} GPUs",
            ds.preset.name
        );
        record_sim_events(dij.stats.sim_events + delta.stats.sim_events);
        (dij.stats.elapsed_ms(), delta.stats.elapsed_ms())
    });

    println!();
    println!("SSSP: Dijkstra-order (delta=1) -> delta-stepping (delta={SSSP_DELTA}), virtual ms");
    print!("{:<22}", "Dataset");
    for g in gpus {
        print!("{:>22}", format!("{g} GPU{}", if g > 1 { "s" } else { "" }));
    }
    println!();
    let mut it = sssp_pairs.iter();
    for ds in &datasets {
        print!("{:<22}", ds.preset.name);
        for _ in gpus {
            let (dij, delta) = it.next().unwrap();
            print!("{:>22}", format!("{dij:.3} -> {delta:.3}"));
        }
        println!();
    }
    report.finish();
}
