//! Table III: normalized BFS workload without → with the priority queue.
//!
//! Counts total vertex visits normalized by an ideal traversal that visits
//! each reachable vertex exactly once, for the scale-free datasets on 1–4
//! NVLink GPUs. The paper's claim: speculation causes redundant work that
//! grows with GPU count, and depth-ordered priority scheduling reduces it.
//!
//! Each (dataset, gpus) cell runs both configurations and is one unit of
//! the parallel sweep.

use atos_apps::bfs::run_bfs;
use atos_bench::{sweep::record_sim_events, BenchArgs, Dataset, SweepReport, SweepRunner};
use atos_core::AtosConfig;
use atos_graph::generators::GraphKind;
use atos_sim::Fabric;

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("table3_priority_workload", &args);
    let gpus = [1usize, 2, 3, 4];
    let datasets: Vec<Dataset> = Dataset::all(args.scale)
        .into_iter()
        .filter(|ds| ds.preset.kind == GraphKind::ScaleFree)
        .collect();

    let mut cells: Vec<(usize, usize)> = Vec::new();
    for d in 0..datasets.len() {
        for &g in &gpus {
            cells.push((d, g));
        }
    }
    let pairs = SweepRunner::from_args(&args).run(&cells, |_, &(d, g)| {
        let ds = &datasets[d];
        let part = ds.partition(g);
        let fifo = run_bfs(
            ds.graph.clone(),
            part.clone(),
            ds.source,
            Fabric::daisy(g),
            AtosConfig::standard_persistent(),
        );
        let prio = run_bfs(
            ds.graph.clone(),
            part,
            ds.source,
            Fabric::daisy(g),
            AtosConfig::priority_discrete(),
        );
        record_sim_events(fifo.stats.sim_events + prio.stats.sim_events);
        (fifo.normalized_workload(), prio.normalized_workload())
    });

    println!("Table III: normalized workload without -> with priority queue");
    print!("{:<22}", "Dataset");
    for g in gpus {
        print!("{:>18}", format!("{g} GPU{}", if g > 1 { "s" } else { "" }));
    }
    println!();
    let mut it = pairs.iter();
    for ds in &datasets {
        print!("{:<22}", ds.preset.name);
        for _ in gpus {
            let (fifo, prio) = it.next().unwrap();
            print!("{:>18}", format!("{fifo:.3} -> {prio:.3}"));
        }
        println!();
    }
    report.finish();
}
