//! Table IV: PageRank runtimes in ms (speedup vs. Gunrock in parentheses)
//! on Daisy (NVLink), 1–4 GPUs, four frameworks × six datasets.
//!
//! Cells are fanned over the sweep harness; see table2_bfs_nvlink.

use atos_bench::{
    pr_nvlink_ms, print_table_block, BenchArgs, Dataset, SweepReport, SweepRunner,
    PR_NVLINK_FRAMEWORKS,
};

fn main() {
    let args = BenchArgs::parse();
    atos_bench::emit_artifacts(&args);
    let report = SweepReport::start("table4_pr_nvlink", &args);
    let datasets = Dataset::all(args.scale);
    let gpus = [1usize, 2, 3, 4];

    let mut cells: Vec<(usize, usize, usize)> = Vec::new();
    for f in 0..PR_NVLINK_FRAMEWORKS.len() {
        for d in 0..datasets.len() {
            for &g in &gpus {
                cells.push((f, d, g));
            }
        }
    }
    let ms = SweepRunner::from_args(&args).run(&cells, |_, &(f, d, g)| {
        pr_nvlink_ms(PR_NVLINK_FRAMEWORKS[f], &datasets[d], g)
    });

    let mut it = ms.iter();
    let matrices: Vec<Vec<(String, Vec<f64>)>> = PR_NVLINK_FRAMEWORKS
        .iter()
        .map(|_| {
            datasets
                .iter()
                .map(|ds| {
                    (
                        format!("{}{}", ds.preset.name, ds.preset.kind.suffix()),
                        gpus.iter().map(|_| *it.next().unwrap()).collect(),
                    )
                })
                .collect()
        })
        .collect();

    println!("Table IV: PageRank runtimes in ms (speedup vs Gunrock) on Daisy (NVLink)");
    let gunrock = matrices[0].clone();
    for (i, fw) in PR_NVLINK_FRAMEWORKS.iter().enumerate() {
        let base = if i == 0 { None } else { Some(gunrock.as_slice()) };
        print_table_block(&format!("PageRank on {fw}"), &gpus, &matrices[i], base);
    }
    report.finish();
}
