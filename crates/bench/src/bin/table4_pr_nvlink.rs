//! Table IV: PageRank runtimes in ms (speedup vs. Gunrock in parentheses)
//! on Daisy (NVLink), 1–4 GPUs, four frameworks × six datasets.

use atos_bench::{pr_nvlink_ms, print_table_block, scale_from_args, Dataset, PR_NVLINK_FRAMEWORKS};

fn main() {
    let scale = scale_from_args();
    let datasets = Dataset::all(scale);
    let gpus = [1usize, 2, 3, 4];

    let mut matrices: Vec<Vec<(String, Vec<f64>)>> = Vec::new();
    for fw in PR_NVLINK_FRAMEWORKS {
        let rows: Vec<(String, Vec<f64>)> = datasets
            .iter()
            .map(|ds| {
                let ms: Vec<f64> = gpus.iter().map(|&g| pr_nvlink_ms(fw, ds, g)).collect();
                (
                    format!("{}{}", ds.preset.name, ds.preset.kind.suffix()),
                    ms,
                )
            })
            .collect();
        matrices.push(rows);
    }

    println!("Table IV: PageRank runtimes in ms (speedup vs Gunrock) on Daisy (NVLink)");
    let gunrock = matrices[0].clone();
    for (i, fw) in PR_NVLINK_FRAMEWORKS.iter().enumerate() {
        let base = if i == 0 { None } else { Some(gunrock.as_slice()) };
        print_table_block(&format!("PageRank on {fw}"), &gpus, &matrices[i], base);
    }
}
