//! Criterion benchmarks for the substrates themselves (host wall-clock):
//! graph generation, CSR construction, partitioning, the event engine,
//! the runtime's allocation-free dispatch path, and end-to-end simulated
//! runs at test scale. These guard against performance regressions in the
//! simulator — the virtual-time results in the tables are only cheap to
//! regenerate if the simulator stays fast.
//!
//! Shared inputs (the RMAT graph, the preset graph + partition) are built
//! through the sweep harness so setup fans out when host cores allow;
//! measurements themselves run serially for stable numbers.

use std::sync::Arc;

use criterion::Criterion;

use atos_apps::bfs::run_bfs;
use atos_bench::sweep::{default_threads, BenchArgs, SweepReport, SweepRunner};
use atos_core::{Application, AtosConfig, CommMode, Emitter, Runtime};
use atos_graph::csr::Csr;
use atos_graph::generators::{rmat, Preset, Scale};
use atos_graph::partition::Partition;
use atos_sim::{Engine, Fabric};

fn bench_generators(c: &mut Criterion) {
    c.bench_function("rmat_scale14_200k_edges", |b| {
        b.iter(|| rmat(14, 200_000, (0.57, 0.19, 0.19, 0.05), 1))
    });
    c.bench_function("road_network_128x128", |b| {
        b.iter(|| atos_graph::generators::road_network(128, 128, 1))
    });
}

fn bench_partitioners(c: &mut Criterion, g: &Csr) {
    c.bench_function("partition_bfs_grow_4", |b| {
        b.iter(|| Partition::bfs_grow(g, 4, 1))
    });
    c.bench_function("partition_random_4", |b| {
        b.iter(|| Partition::random(g.n_vertices(), 4, 1))
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_100k_events", |b| {
        b.iter(|| {
            let mut e = Engine::new();
            for i in 0..100_000u64 {
                e.schedule_at(i % 977, i);
            }
            let mut n = 0u64;
            while e.pop().is_some() {
                n += 1;
            }
            n
        })
    });
    c.bench_function("engine_100k_events_batched", |b| {
        b.iter(|| {
            let mut e = Engine::new();
            e.schedule_batch((0..100_000u64).map(|i| (i % 977, i)));
            let mut n = 0u64;
            while e.pop().is_some() {
                n += 1;
            }
            n
        })
    });
}

/// Relay task bouncing between two PEs: every hop is one remote message,
/// so this isolates the dispatch/send/arrive path the allocation work
/// targeted (per-PE staging + pooled payloads; see runtime.rs).
struct Relay;

impl Application for Relay {
    type Task = u32;

    fn process(&mut self, pe: usize, task: u32, out: &mut Emitter<u32>) {
        if task > 0 {
            out.push(1 - pe, task - 1);
        }
    }

    fn on_receive(&mut self, _pe: usize, task: u32) -> Option<u32> {
        Some(task)
    }

    fn task_edges(&self, _t: &u32) -> u64 {
        1
    }
}

fn bench_dispatch(c: &mut Criterion) {
    c.bench_function("runtime_relay_20k_hops_direct", |b| {
        b.iter(|| {
            let mut rt = Runtime::new(
                Relay,
                Fabric::daisy(2),
                AtosConfig {
                    comm: CommMode::Direct { group: 32 },
                    ..AtosConfig::standard_persistent()
                },
            );
            rt.seed(0, [20_000u32]);
            rt.run().messages
        })
    });
}

/// Tracing overhead on the same relay workload: `NullTracer` (the
/// default, must cost nothing beyond `runtime_relay_20k_hops_direct`)
/// vs a live [`atos_core::TraceBuffer`] recording every step span and
/// message instant.
fn bench_tracer_overhead(c: &mut Criterion) {
    use atos_core::{NullTracer, RuntimeTuning, TraceBuffer};
    use atos_sim::GpuCostModel;

    let cfg = || AtosConfig {
        comm: CommMode::Direct { group: 32 },
        ..AtosConfig::standard_persistent()
    };
    c.bench_function("runtime_relay_20k_hops_null_tracer", |b| {
        b.iter(|| {
            let mut rt = Runtime::with_tracer(
                Relay,
                Fabric::daisy(2),
                cfg(),
                GpuCostModel::v100(),
                RuntimeTuning::default(),
                NullTracer,
            );
            rt.seed(0, [20_000u32]);
            rt.run().messages
        })
    });
    c.bench_function("runtime_relay_20k_hops_trace_buffer", |b| {
        b.iter(|| {
            let mut rt = Runtime::with_tracer(
                Relay,
                Fabric::daisy(2),
                cfg(),
                GpuCostModel::v100(),
                RuntimeTuning::default(),
                TraceBuffer::new(),
            );
            rt.seed(0, [20_000u32]);
            let msgs = rt.run().messages;
            (msgs, rt.tracer().len())
        })
    });
}

fn bench_end_to_end(c: &mut Criterion, g: Arc<Csr>, src: atos_graph::csr::VertexId, part: Arc<Partition>) {
    c.bench_function("sim_bfs_tiny_4gpu_persistent", |b| {
        b.iter(|| {
            run_bfs(
                g.clone(),
                part.clone(),
                src,
                Fabric::daisy(4),
                AtosConfig::standard_persistent(),
            )
        })
    });
}

/// Parallel-built shared inputs (one sweep cell each).
enum Setup {
    Rmat(Csr),
    EndToEnd(Arc<Csr>, atos_graph::csr::VertexId, Arc<Partition>),
}

fn main() {
    let args = BenchArgs {
        scale: Scale::Tiny,
        threads: default_threads(),
        sim_threads: 1,
        json: None,
        trace: None,
        metrics: None,
        flight_dump: None,
        run_id: None,
        load_balance: atos_core::LoadBalance::Owner,
    };
    let report = SweepReport::start("substrate_bench", &args);
    let mut built = SweepRunner::from_args(&args).run(&[0usize, 1], |_, &which| match which {
        0 => Setup::Rmat(rmat(14, 200_000, (0.57, 0.19, 0.19, 0.05), 1)),
        _ => {
            let p = Preset::by_name("soc-LiveJournal1_s").unwrap();
            let g = Arc::new(p.build(Scale::Tiny));
            let src = p.bfs_source(&g);
            let part = Arc::new(Partition::bfs_grow(&g, 4, 1));
            Setup::EndToEnd(g, src, part)
        }
    });
    let Setup::EndToEnd(g, src, part) = built.pop().unwrap() else {
        unreachable!()
    };
    let Setup::Rmat(rmat_graph) = built.pop().unwrap() else {
        unreachable!()
    };

    let mut c = Criterion::default().sample_size(10);
    bench_generators(&mut c);
    bench_partitioners(&mut c, &rmat_graph);
    bench_engine(&mut c);
    bench_dispatch(&mut c);
    bench_tracer_overhead(&mut c);
    bench_end_to_end(&mut c, g, src, part);
    report.finish();
}
