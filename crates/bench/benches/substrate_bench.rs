//! Criterion benchmarks for the substrates themselves (host wall-clock):
//! graph generation, CSR construction, partitioning, the event engine,
//! and end-to-end simulated runs at test scale. These guard against
//! performance regressions in the simulator — the virtual-time results in
//! the tables are only cheap to regenerate if the simulator stays fast.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use atos_apps::bfs::run_bfs;
use atos_core::AtosConfig;
use atos_graph::generators::{rmat, Preset, Scale};
use atos_graph::partition::Partition;
use atos_sim::{Engine, Fabric};

fn bench_generators(c: &mut Criterion) {
    c.bench_function("rmat_scale14_200k_edges", |b| {
        b.iter(|| rmat(14, 200_000, (0.57, 0.19, 0.19, 0.05), 1))
    });
    c.bench_function("road_network_128x128", |b| {
        b.iter(|| atos_graph::generators::road_network(128, 128, 1))
    });
}

fn bench_partitioners(c: &mut Criterion) {
    let g = rmat(14, 200_000, (0.57, 0.19, 0.19, 0.05), 1);
    c.bench_function("partition_bfs_grow_4", |b| {
        b.iter(|| Partition::bfs_grow(&g, 4, 1))
    });
    c.bench_function("partition_random_4", |b| {
        b.iter(|| Partition::random(g.n_vertices(), 4, 1))
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_100k_events", |b| {
        b.iter(|| {
            let mut e = Engine::new();
            for i in 0..100_000u64 {
                e.schedule_at(i % 977, i);
            }
            let mut n = 0u64;
            while e.pop().is_some() {
                n += 1;
            }
            n
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let p = Preset::by_name("soc-LiveJournal1_s").unwrap();
    let g = Arc::new(p.build(Scale::Tiny));
    let src = p.bfs_source(&g);
    let part = Arc::new(Partition::bfs_grow(&g, 4, 1));
    c.bench_function("sim_bfs_tiny_4gpu_persistent", |b| {
        b.iter(|| {
            run_bfs(
                g.clone(),
                part.clone(),
                src,
                Fabric::daisy(4),
                AtosConfig::standard_persistent(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generators, bench_partitioners, bench_engine, bench_end_to_end
}
criterion_main!(benches);
