//! Criterion benchmarks for the Figure 1 queue comparison — wall-clock
//! time of the three contention experiments across the five queue
//! configurations, on real host threads.
//!
//! Like the fig1_queue binary, the measurements themselves stay serial:
//! the queues are contention benchmarks on real threads, and concurrent
//! sweep workers would steal their cores. The explicit `main` (instead of
//! `criterion_main!`) lets the run record wall-clock + thread count into
//! the shared `results/BENCH_sweep.json` report.

use criterion::{criterion_group, BenchmarkId, Criterion};

use atos_bench::sweep::{BenchArgs, SweepReport};
use atos_queue::bench_harness::{run, Experiment, QueueKind};

fn bench_queues(c: &mut Criterion) {
    // Virtual-thread count representative of a busy GPU; the fig1_queue
    // binary sweeps the full range.
    const N: usize = 1 << 14;
    for exp in Experiment::ALL {
        let mut group = c.benchmark_group(exp.label().replace(' ', "_"));
        group.sample_size(10);
        for kind in QueueKind::ALL {
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.label().replace(' ', "_")),
                &kind,
                |b, &kind| b.iter(|| run(kind, exp, N)),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queues);

fn main() {
    // Measurement is serial by design (see module docs); threads is
    // recorded as 1 in the report to say so.
    let args = BenchArgs {
        threads: 1,
        ..BenchArgs::parse_from(&[], None, 1).expect("static args")
    };
    let report = SweepReport::start("queue_bench", &args);
    benches();
    report.finish();
}
