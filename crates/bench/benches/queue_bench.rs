//! Criterion benchmarks for the Figure 1 queue comparison — wall-clock
//! time of the three contention experiments across the five queue
//! configurations, on real host threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use atos_queue::bench_harness::{run, Experiment, QueueKind};

fn bench_queues(c: &mut Criterion) {
    // Virtual-thread count representative of a busy GPU; the fig1_queue
    // binary sweeps the full range.
    const N: usize = 1 << 14;
    for exp in Experiment::ALL {
        let mut group = c.benchmark_group(exp.label().replace(' ', "_"));
        group.sample_size(10);
        for kind in QueueKind::ALL {
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.label().replace(' ', "_")),
                &kind,
                |b, &kind| b.iter(|| run(kind, exp, N)),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
