//! Criterion benchmarks for the timing-wheel event engine against the
//! retained heap reference (`atos_sim::engine::reference::HeapEngine`),
//! across the three arrival-time distributions the trajectory tracks:
//! uniform (cascade-heavy), bursty (equal-time drains), and near-now
//! skewed (the heap's best case).
//!
//! Under `cargo bench` each workload schedules and drains 1M events —
//! the acceptance microbench (the wheel must hold ≥ 2× on uniform).
//! Under `cargo test` the criterion shim runs each body once as a smoke
//! test, so the event count drops to keep debug builds fast. Both
//! runners fold the drain into an order-sensitive checksum, so every
//! bench run re-proves the wheel pops the exact heap sequence.

use criterion::{criterion_group, BenchmarkId, Criterion};

use atos_bench::sweep::{BenchArgs, SweepReport};
use atos_bench::trajectory::{gen_times, run_heap, run_wheel, Dist};

fn bench_engine(c: &mut Criterion) {
    let bench_mode = std::env::args().any(|a| a == "--bench");
    let n: usize = if bench_mode { 1_000_000 } else { 50_000 };
    for dist in Dist::ALL {
        let times = gen_times(dist, n, 0x5EED_0000 + dist as u64);
        let mut group = c.benchmark_group(format!("engine_{}_{n}", dist.label()));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("wheel"), &times, |b, t| {
            b.iter(|| run_wheel(t))
        });
        group.bench_with_input(BenchmarkId::from_parameter("heap"), &times, |b, t| {
            b.iter(|| run_heap(t))
        });
        group.finish();
        assert_eq!(
            run_wheel(&times),
            run_heap(&times),
            "wheel and heap drains diverged on {} distribution",
            dist.label()
        );
    }
}

criterion_group!(benches, bench_engine);

fn main() {
    // Single-threaded by design: the engines under test are sequential
    // data structures and sweep workers would only add scheduler noise.
    let args = BenchArgs {
        threads: 1,
        ..BenchArgs::parse_from(&[], None, 1).expect("static args")
    };
    let report = SweepReport::start("engine_bench", &args);
    benches();
    report.finish();
}
