//! Golden-file checks for the Perfetto exporter on a deterministic BFS.
//!
//! Virtual-time traces are pure functions of the modeled execution, so
//! the exported Chrome `trace_event` JSON must be *byte-identical* across
//! runs (and host thread counts — nothing wall-clock ever enters the
//! trace). These tests pin that property, the trace_event format
//! contract, and the presence of every instrumented subsystem.

use atos_bench::observability::{reference_run, reference_run_sharded};
use atos_graph::generators::Scale;
use atos_trace::{json, perfetto};

/// Metrics keys that legitimately differ between two identical sharded
/// runs: anything derived from host wall-clock (barrier waits and their
/// aggregates) or from real-thread contention probes. Everything else —
/// including every virtual-time shard histogram — must be deterministic.
///
/// The list is no longer hand-maintained: atos-lint's determinism-taint
/// pass generates it (`--wall-clock-inventory`) by tracing clock reads
/// and thread-contention probes through the call graph into metric
/// sinks, and the artifact is committed at `results/wall_clock_keys.txt`.
/// `crates/lint/tests/cli.rs` asserts regeneration is a no-op, so this
/// test and the analyzer cannot drift apart.
const WALL_CLOCK_INVENTORY: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/wall_clock_keys.txt"
));

fn is_wall_clock_key(key: &str) -> bool {
    WALL_CLOCK_INVENTORY.lines().any(|line| {
        match line.trim().split_once(' ') {
            Some(("exact", k)) => key == k,
            // Fragment entries match per-shard prefixed keys
            // (`shard.3.barrier_wait_ns`, ...).
            Some(("frag", k)) => key.contains(k),
            _ => false, // comments and blanks
        }
    })
}

#[test]
fn trace_export_is_byte_identical_across_runs() {
    let (buf_a, reg_a) = reference_run(Scale::Tiny);
    let (buf_b, reg_b) = reference_run(Scale::Tiny);
    let json_a = perfetto::to_chrome_json(&buf_a);
    let json_b = perfetto::to_chrome_json(&buf_b);
    assert_eq!(json_a, json_b, "trace must be a deterministic artifact");
    // Run counters are equal too; only the inventoried wall-clock /
    // host-contention keys may differ between the two reference runs.
    for (key, val) in reg_a.iter() {
        if is_wall_clock_key(key) {
            continue;
        }
        assert_eq!(reg_b.get(key), Some(val), "metric {key} must be deterministic");
    }
}

#[test]
fn trace_export_is_valid_chrome_trace_event_json() {
    let (buf, _) = reference_run(Scale::Tiny);
    let exported = perfetto::to_chrome_json(&buf);

    // Parses as JSON with the documented envelope.
    let parsed = json::parse(&exported).expect("well-formed JSON");
    let obj = match parsed {
        json::Json::Obj(o) => o,
        other => panic!("top level must be an object, got {other:?}"),
    };
    assert!(obj.contains_key("traceEvents"));
    assert_eq!(
        obj.get("displayTimeUnit"),
        Some(&json::Json::Str("ms".to_string()))
    );

    // Passes the strict validator: required fields per phase, sorted
    // non-decreasing timestamps, properly nested spans per track.
    let summary = perfetto::validate_chrome_trace(&exported).expect("valid trace_event stream");
    assert!(summary.spans > 0, "per-PE step spans present");
    assert!(summary.instants > 0, "message instants present");
    assert!(summary.counters > 0, "occupancy counters present");

    // Every instrumented subsystem shows up by name.
    for name in ["step", "send", "msg", "worklist", "recvq"] {
        assert!(summary.names.contains(name), "missing event name {name}");
    }
    assert!(
        summary.names.contains("flush[size]") || summary.names.contains("flush[age]"),
        "aggregator flush spans present"
    );
}

#[test]
fn metrics_snapshot_round_trips_through_json() {
    let (_, reg) = reference_run(Scale::Tiny);
    let text = reg.to_json();
    let parsed = json::parse(&text).expect("metrics JSON parses");
    let obj = match parsed {
        json::Json::Obj(o) => o,
        other => panic!("metrics must serialize to an object, got {other:?}"),
    };
    assert_eq!(obj.len(), reg.len());
    for (key, val) in reg.iter() {
        assert_eq!(
            obj.get(key),
            Some(&json::Json::Num(val as f64)),
            "metric {key} survives serialization"
        );
    }
}

#[test]
fn sharded_metrics_round_trip_with_histogram_kind() {
    // The registry now holds two kinds; both must survive serialization
    // with one global sorted key order (counters and histograms
    // interleaved, not segregated).
    let (_, reg, _) = reference_run_sharded(Scale::Tiny, 4);
    let text = reg.to_json();
    let parsed = json::parse(&text).expect("metrics JSON parses");
    let obj = match &parsed {
        json::Json::Obj(o) => o,
        other => panic!("metrics must serialize to an object, got {other:?}"),
    };
    assert_eq!(obj.len(), reg.len());
    for (key, val) in reg.iter() {
        assert_eq!(
            obj.get(key),
            Some(&json::Json::Num(val as f64)),
            "counter {key} survives serialization"
        );
    }
    let mut hist_keys = 0;
    for (key, hist) in reg.iter_histograms() {
        hist_keys += 1;
        let summary = atos_trace::Histogram::summary_from_json(
            obj.get(key).unwrap_or_else(|| panic!("histogram {key} serialized")),
        )
        .unwrap_or_else(|| panic!("histogram {key} summary parses"));
        assert_eq!(summary.count, hist.count(), "{key} count");
        assert_eq!(summary.max, hist.max(), "{key} max");
        assert_eq!(summary.p50, hist.p50(), "{key} p50");
    }
    assert!(hist_keys > 0, "sharded run exports histogram metrics");
    // The serialized key stream is globally sorted.
    let keys: Vec<&String> = obj.keys().collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "keys must be sorted");
}

#[test]
fn sharded_trace_golden_is_byte_identical_and_shard_aware() {
    // Two identical K=4 sharded reference runs: the Perfetto export is a
    // deterministic artifact (shard window/exchange events are stamped in
    // virtual time only), and every non-wall-clock metric — including the
    // per-shard virtual-time histograms — matches exactly.
    let (buf_a, reg_a, prof_a) = reference_run_sharded(Scale::Tiny, 4);
    let (buf_b, reg_b, prof_b) = reference_run_sharded(Scale::Tiny, 4);
    let json_a = perfetto::to_chrome_json(&buf_a);
    let json_b = perfetto::to_chrome_json(&buf_b);
    assert_eq!(json_a, json_b, "sharded trace must be deterministic");

    let summary = perfetto::validate_chrome_trace(&json_a).expect("valid trace_event stream");
    assert!(summary.spans > 0);
    for name in ["step", "msg", "window"] {
        assert!(summary.names.contains(name), "missing event name {name}");
    }

    for (key, val) in reg_a.iter() {
        if is_wall_clock_key(key) {
            continue;
        }
        assert_eq!(reg_b.get(key), Some(val), "metric {key} must be deterministic");
    }
    for (key, hist) in reg_a.iter_histograms() {
        if is_wall_clock_key(key) {
            continue;
        }
        assert_eq!(
            reg_b.histogram(key),
            Some(hist),
            "histogram {key} must be deterministic"
        );
    }

    // The flight recorders replay the same windows (wall-clock field
    // aside), and their JSON dumps agree once barrier waits are zeroed.
    let (a, b) = (prof_a.expect("profile"), prof_b.expect("profile"));
    for (sa, sb) in a.shards.iter().zip(b.shards.iter()) {
        assert_eq!(sa.windows, sb.windows);
        assert_eq!(sa.events, sb.events);
        assert_eq!(sa.published, sb.published);
        assert_eq!(sa.drained, sb.drained);
        let ra = sa.flight.records();
        let rb = sb.flight.records();
        assert_eq!(ra.len(), rb.len());
        for (wa, wb) in ra.iter().zip(rb.iter()) {
            let mut wa = *wa;
            let mut wb = *wb;
            wa.barrier_wait_ns = 0;
            wb.barrier_wait_ns = 0;
            assert_eq!(wa, wb, "shard {} flight record", sa.shard);
        }
    }
}
