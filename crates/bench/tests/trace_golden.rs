//! Golden-file checks for the Perfetto exporter on a deterministic BFS.
//!
//! Virtual-time traces are pure functions of the modeled execution, so
//! the exported Chrome `trace_event` JSON must be *byte-identical* across
//! runs (and host thread counts — nothing wall-clock ever enters the
//! trace). These tests pin that property, the trace_event format
//! contract, and the presence of every instrumented subsystem.

use atos_bench::observability::reference_run;
use atos_graph::generators::Scale;
use atos_trace::{json, perfetto};

#[test]
fn trace_export_is_byte_identical_across_runs() {
    let (buf_a, reg_a) = reference_run(Scale::Tiny);
    let (buf_b, reg_b) = reference_run(Scale::Tiny);
    let json_a = perfetto::to_chrome_json(&buf_a);
    let json_b = perfetto::to_chrome_json(&buf_b);
    assert_eq!(json_a, json_b, "trace must be a deterministic artifact");
    // Run counters are equal too; only the host-contention keys (real
    // threads) may differ between the two reference runs.
    for (key, val) in reg_a.iter() {
        if key.starts_with("queue.cas_retries")
            || key.starts_with("queue.reservation_conflicts")
            || key.starts_with("queue.host_occupancy_hwm")
        {
            continue;
        }
        assert_eq!(reg_b.get(key), Some(val), "metric {key} must be deterministic");
    }
}

#[test]
fn trace_export_is_valid_chrome_trace_event_json() {
    let (buf, _) = reference_run(Scale::Tiny);
    let exported = perfetto::to_chrome_json(&buf);

    // Parses as JSON with the documented envelope.
    let parsed = json::parse(&exported).expect("well-formed JSON");
    let obj = match parsed {
        json::Json::Obj(o) => o,
        other => panic!("top level must be an object, got {other:?}"),
    };
    assert!(obj.contains_key("traceEvents"));
    assert_eq!(
        obj.get("displayTimeUnit"),
        Some(&json::Json::Str("ms".to_string()))
    );

    // Passes the strict validator: required fields per phase, sorted
    // non-decreasing timestamps, properly nested spans per track.
    let summary = perfetto::validate_chrome_trace(&exported).expect("valid trace_event stream");
    assert!(summary.spans > 0, "per-PE step spans present");
    assert!(summary.instants > 0, "message instants present");
    assert!(summary.counters > 0, "occupancy counters present");

    // Every instrumented subsystem shows up by name.
    for name in ["step", "send", "msg", "worklist", "recvq"] {
        assert!(summary.names.contains(name), "missing event name {name}");
    }
    assert!(
        summary.names.contains("flush[size]") || summary.names.contains("flush[age]"),
        "aggregator flush spans present"
    );
}

#[test]
fn metrics_snapshot_round_trips_through_json() {
    let (_, reg) = reference_run(Scale::Tiny);
    let text = reg.to_json();
    let parsed = json::parse(&text).expect("metrics JSON parses");
    let obj = match parsed {
        json::Json::Obj(o) => o,
        other => panic!("metrics must serialize to an object, got {other:?}"),
    };
    assert_eq!(obj.len(), reg.len());
    for (key, val) in reg.iter() {
        assert_eq!(
            obj.get(key),
            Some(&json::Json::Num(val as f64)),
            "metric {key} survives serialization"
        );
    }
}
