//! Determinism under parallelism.
//!
//! The sweep harness promises that `--threads N` only changes wall-clock
//! time, never output: the simulation is a pure function of its inputs
//! and results are keyed by grid index. These tests pin that down two
//! ways: byte-identical stdout of an actual table binary at 1 vs 4
//! worker threads, and bit-identical run statistics for repeated runs of
//! the same configuration.

use std::path::PathBuf;
use std::process::Command;

use atos_bench::{bfs_nvlink_ms, ib_ms, Dataset, SweepRunner};
use atos_graph::generators::{Preset, Scale};

/// Run one of this crate's binaries with `args`, returning (stdout, ok).
fn run_binary(exe: &str, args: &[&str], json: &std::path::Path) -> (Vec<u8>, bool) {
    let mut cmd = Command::new(exe);
    cmd.args(args).arg("--json").arg(json);
    let out = cmd.output().expect("binary should spawn");
    (out.stdout, out.status.success())
}

#[test]
fn table2_stdout_is_byte_identical_across_thread_counts() {
    let exe = env!("CARGO_BIN_EXE_table2_bfs_nvlink");
    let dir = std::env::temp_dir().join(format!("atos-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json: PathBuf = dir.join("sweep.json");

    let (serial, ok1) = run_binary(exe, &["--quick", "--threads", "1"], &json);
    let (parallel, ok4) = run_binary(exe, &["--quick", "--threads", "4"], &json);
    assert!(ok1 && ok4, "table2_bfs_nvlink --quick should succeed");
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "stdout must not depend on the worker-thread count"
    );
    // The timing report must exist and carry this binary's entry.
    let report = std::fs::read_to_string(&json).expect("sweep report written");
    assert!(report.contains("\"table2_bfs_nvlink\""), "{report}");
    assert!(report.contains("\"threads\": 4"), "{report}");
    assert!(report.contains("\"sim_events\""), "{report}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_configuration_runs_twice_identically() {
    // Bit-identical virtual times for repeated identical configs — the
    // simulator has no hidden global state, so the sweep can run cells in
    // any order on any thread.
    let ds = Dataset::build(Preset::by_name("road_usa_s").unwrap(), Scale::Tiny);
    let a = bfs_nvlink_ms("Atos (queue+persistent kernel)", &ds, 3);
    let b = bfs_nvlink_ms("Atos (queue+persistent kernel)", &ds, 3);
    assert_eq!(a.to_bits(), b.to_bits());
    let a = ib_ms("Atos", "pr", &ds, 2);
    let b = ib_ms("Atos", "pr", &ds, 2);
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn sweep_grid_matches_serial_reference() {
    // The harness itself must hand back results exactly as a serial loop
    // would produce them, for a real (framework × gpus) grid.
    let ds = Dataset::build(Preset::by_name("hollywood_2009_s").unwrap(), Scale::Tiny);
    let cells: Vec<(usize, usize)> = (0..2).flat_map(|f| (1..=4).map(move |g| (f, g))).collect();
    let fw = ["Galois", "Atos"];
    let serial: Vec<f64> = cells
        .iter()
        .map(|&(f, g)| ib_ms(fw[f], "bfs", &ds, g))
        .collect();
    let parallel = SweepRunner::new(4).run(&cells, |_, &(f, g)| ib_ms(fw[f], "bfs", &ds, g));
    assert_eq!(serial, parallel);
}
