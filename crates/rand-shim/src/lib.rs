//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the *minimal* surface it actually uses: `SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}`.
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across runs and platforms, which is all the graph generators and
//! partitioners require (they fix explicit seeds everywhere).
//!
//! Sequences differ from the real `rand::rngs::SmallRng`, so generated
//! graphs differ from artifacts produced with the upstream crate; every
//! consumer in this workspace compares shapes and invariants, not stored
//! byte-level artifacts, so only internal determinism matters.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from `range` (half-open).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Sample a value of `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over the full domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Standard-distribution sampling (the `rand::distributions::Standard` role).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample (the `rand` `SampleRange` role).
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < span / 2^64 — irrelevant for the graph
                // generators and test-case sampling this shim serves.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u32..3);
            assert!(w < 3);
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of 10k uniform draws is near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn bool_and_spread() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
    }
}
