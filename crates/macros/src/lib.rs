//! Marker attributes consumed by the [`atos-lint`] static analyzer.
//!
//! Both attributes are *inert at runtime*: they expand to the annotated
//! item unchanged, so they cost nothing in any build. Their payload is the
//! annotation itself, which `atos-lint` reads back out of the source text:
//!
//! * [`macro@atos_hot`] marks a function as being on the runtime hot path.
//!   The `hot-path-alloc` lint then forbids allocating calls (`vec!`,
//!   `format!`, `Box::new`, `with_capacity`, `collect`, …) in its body and
//!   in workspace functions it calls directly, and
//!   `crates/core/tests/alloc_count.rs` asserts every annotated runtime
//!   function is exercised by a counted allocation scenario — the static
//!   denylist and the dynamic guard cannot drift apart.
//! * [`macro@allow_atos_lint`] suppresses named `atos-lint` rules for one
//!   item, e.g. `#[allow_atos_lint(panic_in_kernel)]`. Suppressions are
//!   part of the reviewed source, so every exemption is visible in diffs;
//!   policy (when a suppression is acceptable) lives in DESIGN.md §7.
//! * [`macro@atos_alloc_ok`] vets one function as allocation-acceptable
//!   when reached *transitively* from a hot path: the interprocedural
//!   `hot-path-alloc` propagation stops at the annotated definition
//!   instead of reporting every hot caller. Use it for setup-phase
//!   helpers (arena growth, one-time table builds) whose allocations are
//!   amortized by design and covered by `alloc_count.rs` scenarios.
//! * [`macro@atos_shard`] classifies the fields of a `ShardableApp` impl
//!   for the `shard-escape` lint. Placed on the impl's `fork` method (the
//!   one fn every shardable app must define), it declares each field as
//!   `owner(..)` — owner-indexed authoritative state that only the owning
//!   PE may write, `private(..)` — per-sender scratch that never crosses
//!   the shard boundary, or `shared(..)` — immutable topology/config.
//!   Fields left out are inferred from the `fork`/`join` bodies.
//!
//! [`atos-lint`]: ../atos_lint/index.html

use proc_macro::TokenStream;

/// Mark a function as runtime-hot-path. Inert; read by `atos-lint`'s
/// `hot-path-alloc` rule and by the `alloc_count` coverage test.
#[proc_macro_attribute]
pub fn atos_hot(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Suppress the named `atos-lint` rules (snake_case, e.g.
/// `#[allow_atos_lint(panic_in_kernel, hot_path_alloc)]`) for this item.
/// Inert; read back from the source by `atos-lint`.
#[proc_macro_attribute]
pub fn allow_atos_lint(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Vet this function's allocations as acceptable on hot paths that reach
/// it transitively (amortized setup work). Inert; read back from the
/// source by `atos-lint`'s interprocedural `hot-path-alloc` propagation.
#[proc_macro_attribute]
pub fn atos_alloc_ok(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Declare the ownership classes of a `ShardableApp`'s fields for the
/// `shard-escape` lint, e.g.
/// `#[atos_shard(owner(depth), private(mirror), shared(graph, partition))]`
/// on the impl's `fork` method. `owner` fields are vertex-indexed
/// authoritative state (writable only at indices the current PE owns),
/// `private` fields are per-sender scratch adopted wholesale by `join`,
/// and `shared` fields are immutable after construction. Inert; read back
/// from the source by `atos-lint`.
#[proc_macro_attribute]
pub fn atos_shard(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
