//! Chrome/Perfetto `trace_event` JSON export and validation.
//!
//! The exporter emits the [Trace Event Format] consumed by
//! `ui.perfetto.dev` and `chrome://tracing`: one `"X"` complete event per
//! span, `"i"` instants, `"C"` counters, and `"M"` metadata naming each
//! track. Timestamps are virtual **microseconds** with three decimal
//! places — exact nanosecond resolution rendered with integer arithmetic,
//! so the output is byte-identical across runs of a deterministic
//! simulation.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeSet;

use crate::json::{self, Json};
use crate::{EventKind, Time, TraceBuffer, TraceEvent};

/// Render `ns` as microseconds with exact `.µµµ` nanosecond digits.
fn us(ns: Time) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn args_json(ev: &TraceEvent) -> String {
    let mut parts = Vec::new();
    if let EventKind::Counter { value } = ev.kind {
        parts.push(format!("\"value\":{value}"));
    }
    for (name, val) in ev.arg_names.iter().zip(ev.arg_vals.iter()) {
        if !name.is_empty() {
            parts.push(format!("\"{}\":{val}", json::escape(name)));
        }
    }
    format!("{{{}}}", parts.join(","))
}

/// Serialize `buf` as a Chrome `trace_event` JSON document.
///
/// Events are sorted by `(time, track, recording order)`, preceded by
/// `process_name` / `thread_name` metadata for every track, so the output
/// is deterministic and loads with labeled timelines.
pub fn to_chrome_json(buf: &TraceBuffer) -> String {
    let mut order: Vec<(usize, &TraceEvent)> = buf.events().iter().enumerate().collect();
    order.sort_by_key(|&(i, e)| (e.at, e.track, i));

    let mut lines = Vec::with_capacity(order.len() + buf.tracks().len() + 1);
    lines.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"atos (virtual time)\"}}"
            .to_string(),
    );
    for track in buf.tracks() {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            track.0,
            json::escape(&track.label())
        ));
    }
    for (_, ev) in order {
        let common = format!(
            "\"name\":\"{}\",\"cat\":\"atos\",\"pid\":0,\"tid\":{},\"ts\":{}",
            json::escape(ev.name),
            ev.track.0,
            us(ev.at)
        );
        let line = match ev.kind {
            EventKind::Span { dur } => format!(
                "{{{common},\"ph\":\"X\",\"dur\":{},\"args\":{}}}",
                us(dur),
                args_json(ev)
            ),
            EventKind::Instant => {
                format!("{{{common},\"ph\":\"i\",\"s\":\"t\",\"args\":{}}}", args_json(ev))
            }
            EventKind::Counter { .. } => {
                format!("{{{common},\"ph\":\"C\",\"args\":{}}}", args_json(ev))
            }
        };
        lines.push(line);
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// What [`validate_chrome_trace`] learned about a document.
#[derive(Debug, Default, Clone)]
pub struct ChromeTraceSummary {
    /// Total events including metadata.
    pub events: usize,
    /// `"X"` complete spans.
    pub spans: usize,
    /// `"i"` instants.
    pub instants: usize,
    /// `"C"` counter samples.
    pub counters: usize,
    /// Distinct non-metadata event names.
    pub names: BTreeSet<String>,
}

/// Parse `text` and check it is structurally valid Chrome `trace_event`
/// JSON: required fields per phase, globally non-decreasing timestamps,
/// and properly nested (never partially overlapping) spans per track.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;

    let mut summary = ChromeTraceSummary {
        events: events.len(),
        ..ChromeTraceSummary::default()
    };
    let mut last_ts = f64::NEG_INFINITY;
    // Per-tid stack of open span end-times, for nesting checks.
    let mut stacks: std::collections::BTreeMap<i64, Vec<f64>> = Default::default();
    const EPS: f64 = 1e-6;

    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing ph"))?;
        ev.get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| at("missing pid"))?;
        if ph == "M" {
            continue;
        }
        summary.names.insert(name.to_string());
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| at("missing ts"))?;
        if ts < 0.0 {
            return Err(at("negative ts"));
        }
        if ts + EPS < last_ts {
            return Err(at(&format!("timestamp regression: {ts} after {last_ts}")));
        }
        last_ts = last_ts.max(ts);
        let tid = ev
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| at("missing tid"))? as i64;
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| at("span missing dur"))?;
                if dur < 0.0 {
                    return Err(at("negative dur"));
                }
                let stack = stacks.entry(tid).or_default();
                while stack.last().is_some_and(|&end| ts + EPS >= end) {
                    stack.pop();
                }
                if let Some(&end) = stack.last() {
                    if ts + dur > end + EPS {
                        return Err(at(&format!(
                            "span [{ts}, {}] partially overlaps enclosing span ending {end}",
                            ts + dur
                        )));
                    }
                }
                stack.push(ts + dur);
                summary.spans += 1;
            }
            "i" => summary.instants += 1,
            "C" => summary.counters += 1,
            other => return Err(at(&format!("unsupported phase {other:?}"))),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tracer, Track};

    fn demo() -> TraceBuffer {
        let mut b = TraceBuffer::new();
        b.span(Track::pe(0), 0, 1500, "step", ["tasks", "edges"], [4, 9]);
        b.span(Track::pe(1), 200, 300, "step", ["tasks", ""], [1, 0]);
        b.instant(Track::pe(1), 600, "msg", ["latency", ""], [400, 0]);
        b.counter(Track::pe(0), 1500, "worklist", 2);
        b.span(Track::agg(0, 1), 100, 900, "flush[size]", ["bytes", ""], [256, 0]);
        b
    }

    #[test]
    fn export_validates_and_counts() {
        let text = to_chrome_json(&demo());
        let s = validate_chrome_trace(&text).unwrap();
        assert_eq!(s.spans, 3);
        assert_eq!(s.instants, 1);
        assert_eq!(s.counters, 1);
        assert!(s.names.contains("step"));
        assert!(s.names.contains("flush[size]"));
        assert!(s.names.contains("msg"));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(to_chrome_json(&demo()), to_chrome_json(&demo()));
    }

    #[test]
    fn timestamps_are_exact_microseconds() {
        let mut b = TraceBuffer::new();
        b.instant(Track::pe(0), 1_234_567, "msg", ["", ""], [0, 0]);
        let text = to_chrome_json(&b);
        assert!(text.contains("\"ts\":1234.567"), "{text}");
    }

    #[test]
    fn validator_rejects_regressions_and_overlaps() {
        let bad_ts = r#"{"traceEvents":[
            {"name":"a","ph":"i","s":"t","pid":0,"tid":0,"ts":5.0},
            {"name":"b","ph":"i","s":"t","pid":0,"tid":0,"ts":1.0}
        ]}"#;
        assert!(validate_chrome_trace(bad_ts)
            .unwrap_err()
            .contains("regression"));

        let overlap = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":0.0,"dur":10.0},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":5.0,"dur":10.0}
        ]}"#;
        assert!(validate_chrome_trace(overlap)
            .unwrap_err()
            .contains("overlaps"));

        let nested = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":0,"ts":0.0,"dur":10.0},
            {"name":"b","ph":"X","pid":0,"tid":0,"ts":2.0,"dur":3.0},
            {"name":"c","ph":"X","pid":0,"tid":0,"ts":6.0,"dur":4.0}
        ]}"#;
        assert!(validate_chrome_trace(nested).is_ok());
    }

    #[test]
    fn validator_requires_fields() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents":[{"ph":"i"}]}"#).is_err());
    }
}
