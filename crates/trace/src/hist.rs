//! Fixed-bucket log-linear histogram (HDR-style) for latency-shaped
//! distributions.
//!
//! The bucket layout is the classic log-linear compromise: values below
//! [`SUB_BUCKETS`] get one bucket each (exact), and every octave above
//! that is split into [`SUB_BUCKETS`] linear sub-buckets, bounding the
//! relative quantile error at `1 / SUB_BUCKETS` (≈3%) across the full
//! `u64` range. The bucket array is allocated once at construction;
//! [`Histogram::record`] is branch-light integer arithmetic plus one
//! slot increment — no allocation, no floating point — so it is safe on
//! the shard-worker hot path (enforced by `atos-lint`'s hot-path scope
//! and `alloc_count.rs`).
//!
//! Histograms are mergeable ([`Histogram::merge`]): merging two
//! histograms is exactly equivalent to recording the concatenation of
//! their inputs, which is what lets per-shard telemetry fold into a
//! run-wide distribution deterministically.

use crate::json;

/// Power-of-two linear resolution: one bucket per value below this, and
/// this many sub-buckets per octave above.
pub const SUB_BUCKETS: usize = 32;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Total bucket count: the linear region plus `SUB_BUCKETS` buckets for
/// each of the remaining octaves of a `u64`.
pub const N_BUCKETS: usize = SUB_BUCKETS * (64 - SUB_BITS as usize + 1);

/// The quantiles every summary export carries, as (label, q) pairs.
pub const SUMMARY_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// A fixed-bucket log-linear histogram over `u64` samples.
///
/// Tracks exact `count`, `sum`, `min`, and `max` alongside the bucketed
/// distribution; quantile queries return the *lower bound* of the bucket
/// containing the target rank (exact for values below [`SUB_BUCKETS`],
/// within `1/SUB_BUCKETS` relatively above), except that the final rank
/// reports the exact maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for `v`: identity below [`SUB_BUCKETS`], log-linear
/// above. Always `< N_BUCKETS` (the top octave's last sub-bucket is
/// index `N_BUCKETS - 1`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let mantissa = (v >> (exp - SUB_BITS)) as usize - SUB_BUCKETS;
        (exp - SUB_BITS + 1) as usize * SUB_BUCKETS + mantissa
    }
}

/// Smallest value mapping to bucket `i` — the representative a quantile
/// query reports for ranks landing in that bucket.
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    debug_assert!(i < N_BUCKETS);
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let octave = (i / SUB_BUCKETS - 1) as u32;
        let mantissa = (i % SUB_BUCKETS) as u64;
        (SUB_BUCKETS as u64 + mantissa) << octave
    }
}

impl Histogram {
    /// New empty histogram. The single allocation lives here; recording
    /// into an existing histogram never allocates.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0u64; N_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample. Allocation-free: integer bucket arithmetic and
    /// five field updates.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Value at quantile `q ∈ [0, 1]`: the floor of the bucket holding
    /// rank `ceil(q · count)` (clamped to `[1, count]`), except the top
    /// rank, which reports the exact maximum. Returns 0 when empty.
    /// Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if target == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_floor(i);
            }
        }
        self.max
    }

    /// Median ([`Histogram::quantile`] at 0.50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold `other` into `self`. Equivalent to having recorded `other`'s
    /// samples into `self` directly (bucket-exactly — both sides use the
    /// same fixed layout).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Serialize the summary as a single-line JSON object with keys in
    /// sorted order: `count, max, mean, min, p50, p90, p99, p999, sum`.
    /// Deterministic: a pure function of the recorded multiset.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"max\": {}, \"mean\": {:.3}, \"min\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"sum\": {}}}",
            self.count,
            self.max(),
            self.mean(),
            self.min(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.sum
        )
    }

    /// Parse a summary produced by [`Histogram::to_json`] into
    /// `(count, min, max, p50, p90, p99, p999)`. Quantile-level summary
    /// only — bucket counts are not exported — so this supports report
    /// tooling (`atos-profile`), not lossless reconstruction.
    pub fn summary_from_json(v: &json::Json) -> Option<HistogramSummary> {
        let num = |k: &str| v.get(k).and_then(|x| x.as_num());
        Some(HistogramSummary {
            count: num("count")? as u64,
            min: num("min")? as u64,
            max: num("max")? as u64,
            mean: num("mean")?,
            p50: num("p50")? as u64,
            p90: num("p90")? as u64,
            p99: num("p99")? as u64,
            p999: num("p999")? as u64,
            sum: num("sum")? as u64,
        })
    }
}

/// The quantile-level summary a histogram exports to JSON — what report
/// tooling (`atos-profile`) reads back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// Mean (3-decimal precision after a JSON round trip).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Sum of samples.
    pub sum: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
        }
    }

    #[test]
    fn bucket_floor_inverts_bucket_index() {
        // The floor of v's bucket maps back to the same bucket, and is
        // never above v.
        for &v in &[0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < N_BUCKETS, "v={v} i={i}");
            let floor = bucket_floor(i);
            assert!(floor <= v, "floor({i})={floor} > v={v}");
            assert_eq!(bucket_index(floor), i, "floor not in own bucket, v={v}");
        }
    }

    #[test]
    fn bucket_floors_strictly_increase() {
        for i in 1..N_BUCKETS {
            assert!(
                bucket_floor(i) > bucket_floor(i - 1),
                "floor({}) !> floor({})",
                i,
                i - 1
            );
        }
    }

    #[test]
    fn relative_error_bounded() {
        // Bucket width / floor <= 1/SUB_BUCKETS above the linear region.
        for i in SUB_BUCKETS..N_BUCKETS - 1 {
            let lo = bucket_floor(i);
            let hi = bucket_floor(i + 1);
            assert!(hi - lo <= lo / SUB_BUCKETS as u64 + 1, "bucket {i}");
        }
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_exact_quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        // All values in the exact linear region.
        assert_eq!(h.p50(), 5);
        assert_eq!(h.quantile(0.9), 9);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert_eq!(h.sum(), 55);
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn top_rank_reports_exact_max() {
        let mut h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(1.0), 1_000_003);
        assert_eq!(h.p999(), 1_000_003);
    }

    #[test]
    fn merge_equals_concat() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 99, 12_345, 7] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64 << 40, 0, 31, 32] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn json_summary_round_trips() {
        let mut h = Histogram::new();
        for v in [5u64, 50, 500, 5000] {
            h.record(v);
        }
        let text = h.to_json();
        let parsed = json::parse(&text).unwrap();
        let s = Histogram::summary_from_json(&parsed).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5000);
        assert_eq!(s.p50, h.p50());
        assert_eq!(s.p99, h.p99());
        assert_eq!(s.sum, h.sum());
    }

    #[test]
    fn json_keys_sorted() {
        let h = Histogram::new();
        let text = h.to_json();
        let keys = ["count", "max", "mean", "min", "p50", "p90", "p99", "p999", "sum"];
        let mut last = 0;
        for k in keys {
            let pos = text.find(&format!("\"{k}\"")).unwrap();
            assert!(pos > last || last == 0, "key {k} out of order");
            last = pos;
        }
    }
}
