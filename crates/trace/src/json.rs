//! Minimal JSON parser for validating exporter output.
//!
//! The workspace builds without registry access, so there is no serde;
//! this recursive-descent parser covers the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, literals) and exists so tests
//! and the [`perfetto`](crate::perfetto) validator can round-trip the
//! exporters' output. It is not a performance-oriented parser.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as f64.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parse a complete JSON document. Trailing whitespace is allowed;
/// trailing garbage is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogates are rejected rather than paired:
                            // the exporters never emit them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u{hex} escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    // SAFETY: `bytes` came from a `&str` and `pos` only
                    // advances by whole scalar widths (`len_utf8` below),
                    // so `rest` starts on a UTF-8 boundary.
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Escape a string for embedding in JSON output (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escape_decodes() {
        assert_eq!(parse(r#""Aé""#).unwrap().as_str(), Some("Aé"));
        assert!(parse(r#""\ud800""#).is_err()); // lone surrogate
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse(" { } ").unwrap(), Json::Obj(BTreeMap::new()));
    }
}
