//! In-memory trace sink with timeline query helpers.

use crate::{EventKind, Time, TraceEvent, Tracer, Track};

/// Collects every [`TraceEvent`] in memory, in recording order.
///
/// Recording order is *not* globally time-sorted: the runtime records
/// message-arrival instants at dispatch time with future timestamps, so
/// query helpers sort where order matters. Per-track span sequences are
/// non-overlapping by construction (one PE does one thing at a time).
#[derive(Debug, Default, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

/// Summary statistics over the gaps between successive event times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterarrivalStats {
    /// Number of gaps (events minus one).
    pub count: usize,
    /// Mean gap in virtual ns.
    pub mean_ns: f64,
    /// Smallest gap in virtual ns.
    pub min_ns: Time,
    /// Largest gap in virtual ns.
    pub max_ns: Time,
}

impl TraceBuffer {
    /// New empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Discard all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Keep only the events for which `f` returns true, preserving
    /// recording order. Used by equivalence tests to project a sharded
    /// trace down to the tracks a sequential run produces.
    pub fn retain(&mut self, f: impl FnMut(&TraceEvent) -> bool) {
        self.events.retain(f);
    }

    /// All distinct tracks that appear in the buffer, sorted.
    pub fn tracks(&self) -> Vec<Track> {
        let mut t: Vec<Track> = self.events.iter().map(|e| e.track).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Spans on `track`, sorted by start time, as `(start, dur, name)`.
    pub fn spans_on(&self, track: Track) -> Vec<(Time, Time, &'static str)> {
        let mut spans: Vec<(Time, Time, &'static str)> = self
            .events
            .iter()
            .filter(|e| e.track == track)
            .filter_map(|e| match e.kind {
                EventKind::Span { dur } => Some((e.at, dur, e.name)),
                _ => None,
            })
            .collect();
        spans.sort_unstable_by_key(|&(at, dur, _)| (at, dur));
        spans
    }

    /// Busy/idle decomposition of `track` over `[0, run_end]`: total span
    /// time vs everything else. Spans on one track are assumed disjoint
    /// (true for PE step spans and aggregation windows).
    pub fn busy_idle(&self, track: Track, run_end: Time) -> (Time, Time) {
        let busy: Time = self
            .spans_on(track)
            .iter()
            .map(|&(at, dur, _)| dur.min(run_end.saturating_sub(at)))
            .sum();
        (busy, run_end.saturating_sub(busy))
    }

    /// Time-series of counter `name` on `track`, sorted by time.
    pub fn counter_series(&self, track: Track, name: &str) -> Vec<(Time, u64)> {
        let mut series: Vec<(Time, u64)> = self
            .events
            .iter()
            .filter(|e| e.track == track && e.name == name)
            .filter_map(|e| match e.kind {
                EventKind::Counter { value } => Some((e.at, value)),
                _ => None,
            })
            .collect();
        series.sort_unstable_by_key(|&(at, _)| at);
        series
    }

    /// Largest value counter `name` reaches anywhere in the buffer.
    pub fn counter_peak(&self, name: &str) -> Option<u64> {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match e.kind {
                EventKind::Counter { value } => Some(value),
                _ => None,
            })
            .max()
    }

    /// Events named `name` (any kind, any track), sorted by time.
    pub fn events_named(&self, name: &str) -> Vec<TraceEvent> {
        let mut evs: Vec<TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.name == name)
            .copied()
            .collect();
        evs.sort_by_key(|e| e.at);
        evs
    }

    /// Interarrival statistics over the (time-sorted) *end* times of
    /// events whose name starts with `prefix` — e.g. `"flush"` matches
    /// both `flush[size]` and `flush[age]` spans. Returns `None` with
    /// fewer than two matching events.
    pub fn interarrival(&self, prefix: &str) -> Option<InterarrivalStats> {
        let mut ends: Vec<Time> = self
            .events
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .map(|e| match e.kind {
                EventKind::Span { dur } => e.at + dur,
                _ => e.at,
            })
            .collect();
        if ends.len() < 2 {
            return None;
        }
        ends.sort_unstable();
        let gaps: Vec<Time> = ends.windows(2).map(|w| w[1] - w[0]).collect();
        let sum: Time = gaps.iter().sum();
        Some(InterarrivalStats {
            count: gaps.len(),
            mean_ns: sum as f64 / gaps.len() as f64,
            min_ns: *gaps.iter().min().unwrap(),
            max_ns: *gaps.iter().max().unwrap(),
        })
    }
}

impl Tracer for TraceBuffer {
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> TraceBuffer {
        let mut b = TraceBuffer::new();
        b.span(Track::pe(0), 0, 100, "step", ["tasks", ""], [4, 0]);
        b.span(Track::pe(0), 250, 50, "step", ["tasks", ""], [1, 0]);
        b.span(Track::pe(1), 10, 20, "step", ["tasks", ""], [2, 0]);
        b.counter(Track::pe(0), 0, "worklist", 4);
        b.counter(Track::pe(0), 250, "worklist", 1);
        b.instant(Track::pe(1), 90, "msg", ["latency", ""], [80, 0]);
        b.span(Track::agg(0, 1), 0, 60, "flush[size]", ["bytes", ""], [128, 0]);
        b.span(Track::agg(0, 1), 100, 40, "flush[age]", ["bytes", ""], [32, 0]);
        b
    }

    #[test]
    fn busy_idle_decomposes_run() {
        let b = demo();
        let (busy, idle) = b.busy_idle(Track::pe(0), 300);
        assert_eq!(busy, 150);
        assert_eq!(idle, 150);
        // Span running past run_end is clipped.
        let (busy, _) = b.busy_idle(Track::pe(0), 260);
        assert_eq!(busy, 110);
    }

    #[test]
    fn counter_series_sorted_and_peak() {
        let b = demo();
        assert_eq!(
            b.counter_series(Track::pe(0), "worklist"),
            vec![(0, 4), (250, 1)]
        );
        assert_eq!(b.counter_peak("worklist"), Some(4));
        assert_eq!(b.counter_peak("nope"), None);
    }

    #[test]
    fn interarrival_over_prefix() {
        let b = demo();
        // flush spans end at 60 and 140 -> one gap of 80.
        let s = b.interarrival("flush").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min_ns, 80);
        assert_eq!(s.max_ns, 80);
        assert!((s.mean_ns - 80.0).abs() < 1e-9);
        assert!(b.interarrival("msg").is_none()); // single event
    }

    #[test]
    fn tracks_and_named_queries() {
        let b = demo();
        assert_eq!(
            b.tracks(),
            vec![Track::pe(0), Track::pe(1), Track::agg(0, 1)]
        );
        assert_eq!(b.events_named("step").len(), 3);
        assert_eq!(b.spans_on(Track::pe(1)).len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut b = demo();
        assert!(!b.is_empty());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
