//! Virtual-time tracing and metrics for the Atos workspace.
//!
//! The paper's central claims are *temporal* — Atos "smooths the
//! interconnection usage" (Fig. 10), overlaps communication with compute,
//! and keeps PEs busy between kernel boundaries — so end-of-run aggregates
//! are not enough to diagnose scheduling pathologies. This crate provides
//! the timeline layer:
//!
//! * [`Tracer`] — an object-safe event sink trait. Producers (the sim
//!   engine, the core runtime, the bench harness) call the default
//!   [`span`](Tracer::span) / [`instant`](Tracer::instant) /
//!   [`counter`](Tracer::counter) helpers, which are guarded by
//!   [`is_enabled`](Tracer::is_enabled) so a monomorphized [`NullTracer`]
//!   compiles to nothing — the disabled path adds zero allocations and
//!   (after inlining) zero instructions per task.
//! * [`TraceBuffer`] — an in-memory sink with query helpers (per-track
//!   busy/idle timelines, counter time-series, interarrival statistics)
//!   used by tests and analysis code.
//! * [`perfetto`] — a Chrome/Perfetto `trace_event` JSON writer plus a
//!   validator, so traces load directly in `ui.perfetto.dev`.
//! * [`MetricsRegistry`] — a named-counter snapshot serialized to JSON by
//!   the bench binaries' `--metrics` flag.
//!
//! All timestamps are **virtual nanoseconds** from the simulator clock,
//! not wall time: a trace is a deterministic artifact of the modeled
//! execution and is byte-identical across runs and host thread counts.
//!
//! This crate is a workspace leaf (it depends on nothing) so every other
//! crate can use it without cycles; [`Time`] mirrors `atos_sim::Time`.

#![warn(missing_docs)]

pub mod buffer;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod perfetto;

pub use buffer::{InterarrivalStats, TraceBuffer};
pub use hist::{Histogram, HistogramSummary};
pub use metrics::MetricsRegistry;

/// Virtual time in nanoseconds (mirrors `atos_sim::Time`; duplicated here
/// so the trace crate stays a dependency-free leaf).
pub type Time = u64;

/// Identifies the timeline ("thread" in Chrome trace terms) an event
/// belongs to. Encoding:
///
/// * `0 ..= 0xFFFF` — per-PE tracks ([`Track::pe`]): kernel-step spans,
///   message instants, occupancy counters.
/// * `0x1_0000 ..` — per-`(src, dst)` aggregation-window tracks
///   ([`Track::agg`]). Windows on one src→dst pair are sequential in
///   virtual time, so spans on one track never overlap and nest trivially.
/// * `0x2000_0000 ..` — per-shard tracks ([`Track::shard`]): window
///   spans and exchange telemetry of the sharded window-barrier runtime.
/// * [`Track::ENGINE`] — simulator-engine-wide events (event-heap depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track(pub u32);

const AGG_BASE: u32 = 1 << 16;
const AGG_STRIDE: u32 = 1 << 12;
const SHARD_BASE: u32 = 1 << 29;

impl Track {
    /// Engine-wide track (event-heap occupancy and dispatch counts).
    pub const ENGINE: Track = Track(u32::MAX);

    /// The track of processing element `pe`.
    pub fn pe(pe: usize) -> Track {
        debug_assert!(pe < AGG_BASE as usize, "pe index {pe} out of track range");
        Track(pe as u32)
    }

    /// The aggregation-window track for messages staged at `src` bound
    /// for `dst`.
    pub fn agg(src: usize, dst: usize) -> Track {
        debug_assert!(src < AGG_STRIDE as usize && dst < AGG_STRIDE as usize);
        Track(AGG_BASE + (src as u32) * AGG_STRIDE + dst as u32)
    }

    /// The telemetry track of engine shard `s` in a sharded run: one
    /// `window` span per execution window plus exchange instants, so a
    /// Perfetto view shows the window cadence of every shard side by
    /// side with its PEs' step spans.
    pub fn shard(s: usize) -> Track {
        debug_assert!(s < AGG_BASE as usize, "shard index {s} out of track range");
        Track(SHARD_BASE + s as u32)
    }

    /// Human-readable label, used for Perfetto `thread_name` metadata.
    pub fn label(self) -> String {
        if self == Track::ENGINE {
            "engine".to_string()
        } else if self.0 < AGG_BASE {
            format!("pe{}", self.0)
        } else if self.0 >= SHARD_BASE {
            format!("shard{}", self.0 - SHARD_BASE)
        } else {
            let rel = self.0 - AGG_BASE;
            format!("agg {}->{}", rel / AGG_STRIDE, rel % AGG_STRIDE)
        }
    }
}

impl core::fmt::Display for Track {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

/// What kind of mark an event leaves on its track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration starting at [`TraceEvent::at`] and lasting `dur` ns
    /// (Chrome `"X"` complete event).
    Span {
        /// Duration in virtual nanoseconds.
        dur: Time,
    },
    /// A point-in-time mark (Chrome `"i"` instant).
    Instant,
    /// A sampled counter value (Chrome `"C"` counter event).
    Counter {
        /// The sampled value.
        value: u64,
    },
}

/// One trace record. `name` and `arg_names` are `&'static str` so
/// recording never allocates; producers attach up to two numeric
/// arguments (unused slots carry an empty name and are not exported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual-time stamp (span start for [`EventKind::Span`]).
    pub at: Time,
    /// Timeline the event belongs to.
    pub track: Track,
    /// Event name (e.g. `"step"`, `"flush[size]"`, `"msg"`).
    pub name: &'static str,
    /// Span / instant / counter discriminator.
    pub kind: EventKind,
    /// Names for the numeric arguments; `""` marks an unused slot.
    pub arg_names: [&'static str; 2],
    /// Values for the numeric arguments, parallel to `arg_names`.
    pub arg_vals: [u64; 2],
}

/// An event sink stamped in virtual time.
///
/// Object safe: hot paths that must stay monomorphized take a generic
/// `Tr: Tracer` (defaulted to [`NullTracer`]), while convenience entry
/// points accept `&mut dyn Tracer`. The provided helpers check
/// [`is_enabled`](Tracer::is_enabled) first, so with `NullTracer` the
/// compiler deletes the recording code entirely.
pub trait Tracer {
    /// Whether events are being collected. Producers may use this to skip
    /// argument computation; the provided helpers already check it.
    fn is_enabled(&self) -> bool;

    /// Record one event. Only called when [`is_enabled`](Tracer::is_enabled)
    /// returns true (via the helpers); direct callers should honor the same
    /// contract.
    fn record(&mut self, ev: TraceEvent);

    /// Record a duration of `dur` ns starting at `at`.
    #[inline]
    fn span(
        &mut self,
        track: Track,
        at: Time,
        dur: Time,
        name: &'static str,
        arg_names: [&'static str; 2],
        arg_vals: [u64; 2],
    ) {
        if self.is_enabled() {
            self.record(TraceEvent {
                at,
                track,
                name,
                kind: EventKind::Span { dur },
                arg_names,
                arg_vals,
            });
        }
    }

    /// Record a point-in-time mark at `at`.
    #[inline]
    fn instant(
        &mut self,
        track: Track,
        at: Time,
        name: &'static str,
        arg_names: [&'static str; 2],
        arg_vals: [u64; 2],
    ) {
        if self.is_enabled() {
            self.record(TraceEvent {
                at,
                track,
                name,
                kind: EventKind::Instant,
                arg_names,
                arg_vals,
            });
        }
    }

    /// Record a sampled counter value at `at`.
    #[inline]
    fn counter(&mut self, track: Track, at: Time, name: &'static str, value: u64) {
        if self.is_enabled() {
            self.record(TraceEvent {
                at,
                track,
                name,
                kind: EventKind::Counter { value },
                arg_names: ["", ""],
                arg_vals: [0, 0],
            });
        }
    }
}

/// The disabled sink: [`is_enabled`](Tracer::is_enabled) is a constant
/// `false`, so every monomorphized tracing call inlines to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// A runtime-switchable sink: `None` behaves like [`NullTracer`] (the
/// `is_enabled` guard is a branch on the discriminant, so the disabled
/// path stays allocation-free), `Some` forwards. The sharded runtime
/// gives each shard an `Option<TraceBuffer>` so per-shard collection
/// turns on exactly when the parent runtime's tracer is enabled.
impl<T: Tracer> Tracer for Option<T> {
    #[inline]
    fn is_enabled(&self) -> bool {
        self.as_ref().is_some_and(Tracer::is_enabled)
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        if let Some(t) = self {
            t.record(ev);
        }
    }
}

/// Forwarding impl so `&mut dyn Tracer` (and `&mut TraceBuffer`) can be
/// passed wherever a generic `Tr: Tracer` is expected.
impl<T: Tracer + ?Sized> Tracer for &mut T {
    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        (**self).record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_records_nothing_and_is_disabled() {
        let mut t = NullTracer;
        assert!(!t.is_enabled());
        t.span(Track::pe(0), 0, 10, "step", ["", ""], [0, 0]);
        t.instant(Track::pe(0), 5, "msg", ["", ""], [0, 0]);
        t.counter(Track::pe(0), 5, "occ", 3);
        // Nothing observable; this test pins that the calls compile and
        // the guard path is exercised.
    }

    #[test]
    fn track_labels() {
        assert_eq!(Track::pe(3).label(), "pe3");
        assert_eq!(Track::agg(1, 2).label(), "agg 1->2");
        assert_eq!(Track::shard(2).label(), "shard2");
        assert_eq!(Track::ENGINE.label(), "engine");
        assert_eq!(format!("{}", Track::pe(0)), "pe0");
    }

    #[test]
    fn tracks_are_distinct() {
        assert_ne!(Track::pe(0), Track::agg(0, 0));
        assert_ne!(Track::agg(0, 1), Track::agg(1, 0));
        assert_ne!(Track::ENGINE, Track::pe(0));
        // Shard tracks sit above the densest agg track and below ENGINE.
        assert_ne!(Track::shard(0), Track::agg(0xFFF, 0xFFF));
        assert_ne!(Track::shard(0xFFFF), Track::ENGINE);
        assert!(Track::agg(0xFFF, 0xFFF) < Track::shard(0));
    }

    #[test]
    fn option_tracer_switches() {
        let mut off: Option<TraceBuffer> = None;
        assert!(!off.is_enabled());
        off.counter(Track::shard(0), 1, "x", 1); // guarded no-op
        let mut on = Some(TraceBuffer::new());
        assert!(on.is_enabled());
        on.span(Track::shard(1), 0, 10, "window", ["events", ""], [3, 0]);
        assert_eq!(on.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn dyn_tracer_forwards() {
        let mut buf = TraceBuffer::new();
        {
            let fwd: &mut dyn Tracer = &mut buf;
            assert!(fwd.is_enabled());
            fwd.span(Track::pe(1), 100, 50, "step", ["tasks", ""], [4, 0]);
        }
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.events()[0].name, "step");
    }
}
