//! Named-counter + histogram registry serialized to JSON by `--metrics`.

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::json;

/// A flat registry of named `u64` counters and [`Histogram`]s.
///
/// Keys use dotted namespaces (`"queue.cas_retries"`, `"agg.flushes_size"`,
/// `"shard0.barrier_wait_ns"`). `BTreeMap`s keep the JSON output
/// deterministically key-sorted; counters and histograms share one key
/// namespace (setting one kind removes the other under the same key).
/// Metrics are end-of-run snapshots — the hot path never touches the
/// registry; producers accumulate in their own counters/histograms and
/// dump here once.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Set `key` to `value`, overwriting any previous value (and removing
    /// a histogram previously stored under the same key).
    pub fn set(&mut self, key: &str, value: u64) {
        self.hists.remove(key);
        self.counters.insert(key.to_string(), value);
    }

    /// Add `delta` to `key` (creating it at zero).
    pub fn add(&mut self, key: &str, delta: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
    }

    /// Raise `key` to `value` if larger (creating it at zero).
    pub fn max(&mut self, key: &str, value: u64) {
        let e = self.counters.entry(key.to_string()).or_insert(0);
        *e = (*e).max(value);
    }

    /// Current value of counter `key`, if set.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// Store histogram `h` under `key`, overwriting any previous value
    /// (and removing a counter previously stored under the same key).
    pub fn set_histogram(&mut self, key: &str, h: Histogram) {
        self.counters.remove(key);
        self.hists.insert(key.to_string(), h);
    }

    /// The histogram stored under `key`, if any.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// Number of entries (counters plus histograms).
    pub fn len(&self) -> usize {
        self.counters.len() + self.hists.len()
    }

    /// True when nothing has been set.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Iterate counters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate histograms in key order.
    pub fn iter_histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serialize as a pretty-printed JSON object, keys sorted across both
    /// kinds. Counters export as bare numbers, histograms as one-line
    /// summary objects (`{"count": .., "p50": .., ...}`) so the document
    /// stays flat and diff-friendly.
    pub fn to_json(&self) -> String {
        let mut ck = self.counters.iter().peekable();
        let mut hk = self.hists.iter().peekable();
        let mut lines: Vec<String> = Vec::with_capacity(self.len());
        loop {
            // Merge the two sorted maps into one sorted key stream.
            let take_counter = match (ck.peek(), hk.peek()) {
                (Some((c, _)), Some((h, _))) => c < h,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_counter {
                let (k, v) = ck.next().unwrap();
                lines.push(format!("  \"{}\": {v}", json::escape(k)));
            } else {
                let (k, h) = hk.next().unwrap();
                lines.push(format!("  \"{}\": {}", json::escape(k), h.to_json()));
            }
        }
        let mut out = String::from("{\n");
        for (i, line) in lines.iter().enumerate() {
            let sep = if i + 1 == lines.len() { "" } else { "," };
            out.push_str(line);
            out.push_str(sep);
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_max_get() {
        let mut r = MetricsRegistry::new();
        r.set("a.x", 5);
        r.add("a.x", 2);
        r.add("a.y", 1);
        r.max("a.x", 3);
        r.max("a.x", 100);
        assert_eq!(r.get("a.x"), Some(100));
        assert_eq!(r.get("a.y"), Some(1));
        assert_eq!(r.get("nope"), None);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn json_is_sorted_and_parses() {
        let mut r = MetricsRegistry::new();
        r.set("z.last", 1);
        r.set("a.first", 2);
        let text = r.to_json();
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("a.first").unwrap().as_num(), Some(2.0));
        assert_eq!(v.get("z.last").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn empty_registry_serializes() {
        let r = MetricsRegistry::new();
        assert!(json::parse(&r.to_json()).is_ok());
    }

    #[test]
    fn histograms_interleave_sorted_with_counters() {
        let mut r = MetricsRegistry::new();
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        r.set("a.count", 7);
        r.set_histogram("b.lat_ns", h.clone());
        r.set("c.count", 9);
        assert_eq!(r.len(), 3);
        assert_eq!(r.histogram("b.lat_ns"), Some(&h));
        let text = r.to_json();
        let a = text.find("a.count").unwrap();
        let b = text.find("b.lat_ns").unwrap();
        let c = text.find("c.count").unwrap();
        assert!(a < b && b < c);
        // Parses back: counters as numbers, histograms as objects.
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("a.count").unwrap().as_num(), Some(7.0));
        let s = Histogram::summary_from_json(v.get("b.lat_ns").unwrap()).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
    }

    #[test]
    fn one_key_holds_one_kind() {
        let mut r = MetricsRegistry::new();
        r.set("k", 4);
        r.set_histogram("k", Histogram::new());
        assert_eq!(r.get("k"), None);
        assert!(r.histogram("k").is_some());
        assert_eq!(r.len(), 1);
        r.set("k", 5);
        assert!(r.histogram("k").is_none());
        assert_eq!(r.get("k"), Some(5));
        assert_eq!(r.len(), 1);
    }
}
