//! Named-counter registry serialized to JSON by `--metrics`.

use std::collections::BTreeMap;

use crate::json;

/// A flat registry of named `u64` counters.
///
/// Keys use dotted namespaces (`"queue.cas_retries"`, `"agg.flushes_size"`,
/// `"pe0.busy_ns"`). A `BTreeMap` keeps the JSON output deterministically
/// key-sorted. Metrics are end-of-run snapshots — the hot path never
/// touches the registry; producers accumulate in their own counters and
/// dump here once.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Set `key` to `value`, overwriting any previous value.
    pub fn set(&mut self, key: &str, value: u64) {
        self.counters.insert(key.to_string(), value);
    }

    /// Add `delta` to `key` (creating it at zero).
    pub fn add(&mut self, key: &str, delta: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
    }

    /// Raise `key` to `value` if larger (creating it at zero).
    pub fn max(&mut self, key: &str, value: u64) {
        let e = self.counters.entry(key.to_string()).or_insert(0);
        *e = (*e).max(value);
    }

    /// Current value of `key`, if set.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when no counter has been set.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Iterate counters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Serialize as a pretty-printed JSON object, keys sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i + 1 == self.counters.len() { "" } else { "," };
            out.push_str(&format!("  \"{}\": {v}{sep}\n", json::escape(k)));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_max_get() {
        let mut r = MetricsRegistry::new();
        r.set("a.x", 5);
        r.add("a.x", 2);
        r.add("a.y", 1);
        r.max("a.x", 3);
        r.max("a.x", 100);
        assert_eq!(r.get("a.x"), Some(100));
        assert_eq!(r.get("a.y"), Some(1));
        assert_eq!(r.get("nope"), None);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn json_is_sorted_and_parses() {
        let mut r = MetricsRegistry::new();
        r.set("z.last", 1);
        r.set("a.first", 2);
        let text = r.to_json();
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("a.first").unwrap().as_num(), Some(2.0));
        assert_eq!(v.get("z.last").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn empty_registry_serializes() {
        let r = MetricsRegistry::new();
        assert!(json::parse(&r.to_json()).is_ok());
    }
}
