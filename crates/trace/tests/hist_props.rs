//! Property tests for the log-linear histogram, checked against a naive
//! sorted-vec oracle.

use proptest::prelude::*;

use atos_trace::hist::{bucket_floor, bucket_index, N_BUCKETS, SUB_BUCKETS};
use atos_trace::Histogram;

/// Naive oracle: exact quantile over the sorted sample vector, using the
/// same rank convention as `Histogram::quantile` (rank `ceil(q·n)`
/// clamped to `[1, n]`, 1-indexed).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Mixed-magnitude sample strategy: low bits choose an octave, rest
/// choose a mantissa, so samples span the linear region through ~2^40.
fn shaped(raw: u64) -> u64 {
    let octave = (raw % 41) as u32;
    (raw >> 8) % (1u64 << octave).max(1)
}

proptest! {
    /// Quantiles are monotone in q.
    #[test]
    fn quantile_monotone(samples in proptest::collection::vec(0u64..u64::MAX, 1..400)) {
        let mut h = Histogram::new();
        for &raw in &samples {
            h.record(shaped(raw));
        }
        let qs = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let mut last = 0u64;
        for &q in &qs {
            let v = h.quantile(q);
            prop_assert!(v >= last, "quantile({q}) = {v} < previous {last}");
            last = v;
        }
    }

    /// Merging two histograms is exactly recording the concatenation.
    #[test]
    fn merge_equals_concat_record(
        xs in proptest::collection::vec(0u64..u64::MAX, 0..200),
        ys in proptest::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &raw in &xs {
            a.record(shaped(raw));
            both.record(shaped(raw));
        }
        for &raw in &ys {
            b.record(shaped(raw));
            both.record(shaped(raw));
        }
        a.merge(&b);
        prop_assert_eq!(&a, &both);
        prop_assert_eq!(a.to_json(), both.to_json());
    }

    /// The reported quantile is the floor of the bucket holding the
    /// oracle's rank: exact in the linear region, within 1/SUB_BUCKETS
    /// relative error above it, and never above the true rank value.
    #[test]
    fn quantile_matches_oracle_within_bucket(
        samples in proptest::collection::vec(0u64..u64::MAX, 1..300),
    ) {
        let mut h = Histogram::new();
        let mut sorted: Vec<u64> = samples.iter().map(|&r| shaped(r)).collect();
        for &v in &sorted {
            h.record(v);
        }
        sorted.sort_unstable();
        for &q in &[0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let truth = oracle_quantile(&sorted, q);
            let got = h.quantile(q);
            // The top rank is reported exactly (as is q=1.0's max).
            let n = sorted.len() as f64;
            let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
            if rank == sorted.len() {
                prop_assert_eq!(got, truth, "top rank must be exact max, q={}", q);
                continue;
            }
            prop_assert_eq!(
                got,
                bucket_floor(bucket_index(truth)),
                "q={} truth={}",
                q,
                truth
            );
            prop_assert!(got <= truth);
            if truth < SUB_BUCKETS as u64 {
                prop_assert_eq!(got, truth, "linear region must be exact, q={}", q);
            } else {
                // floor >= truth - truth/SUB_BUCKETS (one bucket width).
                prop_assert!(
                    truth - got <= truth / SUB_BUCKETS as u64 + 1,
                    "q={} truth={} got={}",
                    q,
                    truth,
                    got
                );
            }
        }
    }

    /// Bucket boundary exactness: every floor maps into its own bucket,
    /// the value one below a bucket's floor maps strictly lower, and
    /// indices are monotone in the value.
    #[test]
    fn bucket_boundaries_exact(i in 1usize..N_BUCKETS) {
        let floor = bucket_floor(i);
        prop_assert_eq!(bucket_index(floor), i);
        prop_assert_eq!(bucket_index(floor - 1), i - 1);
        prop_assert!(bucket_floor(i - 1) < floor);
    }

    /// min/max/count/sum agree with the oracle exactly.
    #[test]
    fn scalar_stats_exact(samples in proptest::collection::vec(0u64..u64::MAX, 1..300)) {
        let mut h = Histogram::new();
        let vals: Vec<u64> = samples.iter().map(|&r| shaped(r)).collect();
        for &v in &vals {
            h.record(v);
        }
        prop_assert_eq!(h.count(), vals.len() as u64);
        prop_assert_eq!(h.min(), *vals.iter().min().unwrap());
        prop_assert_eq!(h.max(), *vals.iter().max().unwrap());
        let sum: u64 = vals.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(h.sum(), sum);
    }
}
