//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use atos_graph::csr::{Csr, VertexId};
use atos_graph::generators::{grid_2d, rmat, road_network, uniform};
use atos_graph::partition::Partition;
use atos_graph::reference::{bfs, pagerank_push, UNREACHED};

fn arb_edges(n: usize, m: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    proptest::collection::vec((0..n as VertexId, 0..n as VertexId), 0..m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR round-trips the sorted deduplicated edge list.
    #[test]
    fn csr_roundtrip(edges in arb_edges(64, 400)) {
        let g = Csr::from_edges(64, &edges);
        let mut expect = edges.clone();
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<_> = g.edges().collect();
        prop_assert_eq!(got, expect);
    }

    /// Degrees sum to the edge count; neighbor lists are sorted.
    #[test]
    fn csr_degree_invariants(edges in arb_edges(48, 300)) {
        let g = Csr::from_edges(48, &edges);
        let total: usize = (0..48).map(|v| g.degree(v as VertexId)).sum();
        prop_assert_eq!(total, g.n_edges());
        for v in 0..48u32 {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        }
    }

    /// Transpose is an involution and preserves edge count.
    #[test]
    fn transpose_involution(edges in arb_edges(40, 250)) {
        let g = Csr::from_edges(40, &edges);
        let t = g.transpose();
        prop_assert_eq!(t.n_edges(), g.n_edges());
        prop_assert_eq!(t.transpose(), g);
    }

    /// Every partitioner assigns every vertex to a valid part.
    #[test]
    fn partitions_cover(n in 1usize..300, parts in 1usize..9, seed in 0u64..100) {
        for p in [
            Partition::random(n, parts, seed),
            Partition::block(n, parts),
        ] {
            prop_assert_eq!(p.n_vertices(), n);
            prop_assert_eq!(p.part_sizes().iter().sum::<usize>(), n);
            for v in 0..n {
                prop_assert!(p.owner(v as VertexId) < parts);
            }
        }
    }

    /// BFS-grown partitions cover arbitrary graphs too (including
    /// disconnected ones).
    #[test]
    fn bfs_grow_covers(edges in arb_edges(60, 200), parts in 1usize..6, seed in 0u64..20) {
        let g = Csr::from_edges(60, &edges);
        let p = Partition::bfs_grow(&g, parts, seed);
        prop_assert_eq!(p.part_sizes().iter().sum::<usize>(), 60);
    }

    /// BFS depths satisfy the relaxation fixed point: for every edge
    /// (u, v) with u reached, depth[v] <= depth[u] + 1, and every reached
    /// non-source vertex has a parent at depth - 1.
    #[test]
    fn bfs_is_a_shortest_path_fixed_point(edges in arb_edges(50, 250), src in 0u32..50) {
        let g = Csr::from_edges(50, &edges);
        let d = bfs(&g, src);
        prop_assert_eq!(d[src as usize], 0);
        for (u, v) in g.edges() {
            if d[u as usize] != UNREACHED {
                prop_assert!(d[v as usize] <= d[u as usize] + 1);
            }
        }
        let t = g.transpose();
        for v in 0..50u32 {
            let dv = d[v as usize];
            if dv != UNREACHED && dv > 0 {
                prop_assert!(
                    t.neighbors(v).iter().any(|&u| d[u as usize] == dv - 1),
                    "vertex {} at depth {} needs a parent", v, dv
                );
            }
        }
    }

    /// PageRank: ranks are nonnegative and total mass never exceeds n.
    #[test]
    fn pagerank_mass_bounds(edges in arb_edges(40, 200), eps_exp in 3u32..7) {
        let g = Csr::from_edges(40, &edges);
        let eps = 10f64.powi(-(eps_exp as i32));
        let pr = pagerank_push(&g, 0.85, eps);
        let total: f64 = pr.rank.iter().sum();
        prop_assert!(pr.rank.iter().all(|&r| r >= 0.0));
        prop_assert!(total <= 40.0 + 1e-9, "mass {total}");
    }

    /// Generators honor their size contracts.
    #[test]
    fn generator_contracts(scale in 4u32..9, m in 10usize..2000, seed in 0u64..50) {
        let g = rmat(scale, m, (0.57, 0.19, 0.19, 0.05), seed);
        prop_assert_eq!(g.n_vertices(), 1 << scale);
        prop_assert!(g.n_edges() <= m);
        let u = uniform(100, m, seed);
        prop_assert!(u.n_edges() <= m);
    }

    /// Grids and road networks are undirected (every edge has a reverse).
    #[test]
    fn meshes_are_symmetric(w in 2usize..12, h in 2usize..12, seed in 0u64..10) {
        for g in [grid_2d(w, h), road_network(w.max(4), h.max(4), seed)] {
            for (u, v) in g.edges() {
                prop_assert!(g.neighbors(v).contains(&u), "missing reverse of ({u},{v})");
            }
        }
    }
}
