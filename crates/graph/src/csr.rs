//! Compressed sparse row graph storage.
//!
//! Mirrors the `CSR` the paper's BFS worker iterates
//! (`neighborlist_start`, `neighbor_list_length`, `get_neighbor`): 64-bit
//! offsets so twitter-scale edge counts fit, 32-bit vertex ids to halve
//! memory traffic (the paper's graphs all fit u32).

/// Vertex identifier (u32: all Table I graphs fit, and halving index width
/// matters for bandwidth-bound traversal).
pub type VertexId = u32;

/// Immutable CSR adjacency structure (out-edges).
///
/// ```
/// use atos_graph::Csr;
/// let g = Csr::from_edges(3, &[(0, 1), (0, 2), (2, 1)]);
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.degree(2), 1);
/// assert_eq!(g.transpose().neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
}

impl Csr {
    /// Build from a directed edge list. Edges are sorted and deduplicated;
    /// self-loops are kept (harmless to BFS/PR) unless `drop_self_loops`.
    pub fn from_edges(n_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut sorted: Vec<(VertexId, VertexId)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| (u as usize) < n_vertices && (v as usize) < n_vertices)
            .collect();
        sorted.sort_unstable();
        sorted.dedup();
        let mut offsets = vec![0u64; n_vertices + 1];
        for &(u, _) in &sorted {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n_vertices {
            offsets[i + 1] += offsets[i];
        }
        let neighbors = sorted.into_iter().map(|(_, v)| v).collect();
        Csr { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    pub fn n_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.n_vertices() == 0 {
            return 0.0;
        }
        self.n_edges() as f64 / self.n_vertices() as f64
    }

    /// Transposed graph (in-edges become out-edges).
    pub fn transpose(&self) -> Csr {
        let n = self.n_vertices();
        let mut offsets = vec![0u64; n + 1];
        for &v in &self.neighbors {
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; self.neighbors.len()];
        for u in 0..n {
            for &v in self.neighbors(u as VertexId) {
                let c = &mut cursor[v as usize];
                neighbors[*c as usize] = u as VertexId;
                *c += 1;
            }
        }
        Csr { offsets, neighbors }
    }

    /// Undirected view: union of the graph and its transpose.
    pub fn symmetrize(&self) -> Csr {
        let mut edges = Vec::with_capacity(self.n_edges() * 2);
        for u in 0..self.n_vertices() as VertexId {
            for &v in self.neighbors(u) {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
        Csr::from_edges(self.n_vertices(), &edges)
    }

    /// Iterate all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n_vertices() as VertexId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Total out-degree over a set of vertices (frontier work estimate).
    pub fn frontier_edges(&self, frontier: &[VertexId]) -> u64 {
        frontier.iter().map(|&v| self.degree(v) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1,2 ; 1 -> 3 ; 2 -> 3
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn builds_and_indexes() {
        let g = diamond();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dedups_and_filters_out_of_range() {
        let g = Csr::from_edges(2, &[(0, 1), (0, 1), (0, 1), (1, 5), (9, 0)]);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        assert_eq!(t.n_edges(), g.n_edges());
        // Transposing twice is the identity.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn symmetrize_makes_undirected() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let s = g.symmetrize();
        assert_eq!(s.neighbors(1), &[0, 2]);
        assert_eq!(s.n_edges(), 4);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let rebuilt = Csr::from_edges(4, &edges);
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn frontier_edges_sums_degrees() {
        let g = diamond();
        assert_eq!(g.frontier_edges(&[0, 1]), 3);
        assert_eq!(g.frontier_edges(&[]), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.n_vertices(), 0);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }
}
