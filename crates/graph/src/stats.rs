//! Structural statistics — validates presets against Table I.

use crate::csr::{Csr, VertexId};
use crate::reference::{bfs, UNREACHED};

/// Summary statistics mirroring Table I's columns.
#[derive(Debug, Clone)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Estimated diameter (double-sweep lower bound).
    pub diameter_est: u32,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Average out-degree.
    pub avg_degree: f64,
}

/// Compute Table I-style stats for a graph.
pub fn stats(g: &Csr) -> GraphStats {
    let t = g.transpose();
    GraphStats {
        vertices: g.n_vertices(),
        edges: g.n_edges(),
        diameter_est: estimate_diameter(g),
        max_in_degree: t.max_degree(),
        max_out_degree: g.max_degree(),
        avg_degree: g.avg_degree(),
    }
}

/// Double-sweep diameter lower bound: BFS from the max-degree vertex, then
/// BFS again from the deepest reached vertex; the second eccentricity is a
/// strong lower bound on (and for meshes usually equal to) the diameter.
pub fn estimate_diameter(g: &Csr) -> u32 {
    if g.n_vertices() == 0 {
        return 0;
    }
    let start = (0..g.n_vertices() as VertexId)
        .max_by_key(|&v| g.degree(v))
        .unwrap();
    let first = bfs(g, start);
    let far = deepest(&first).unwrap_or(start);
    // On directed graphs the deepest vertex can be a sink, so the second
    // sweep may be shorter than the first; take the max of both.
    deepest_depth(&bfs(g, far)).max(deepest_depth(&first))
}

fn deepest(depths: &[u32]) -> Option<VertexId> {
    depths
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHED)
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v as VertexId)
}

fn deepest_depth(depths: &[u32]) -> u32 {
    depths
        .iter()
        .copied()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0)
}

/// Fraction of vertices reachable from `src`.
pub fn reachable_fraction(g: &Csr, src: VertexId) -> f64 {
    if g.n_vertices() == 0 {
        return 0.0;
    }
    let d = bfs(g, src);
    d.iter().filter(|&&x| x != UNREACHED).count() as f64 / g.n_vertices() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_2d, road_network, rmat, GraphKind, Preset, Scale};

    #[test]
    fn grid_diameter_exact() {
        let g = grid_2d(10, 6);
        assert_eq!(estimate_diameter(&g), 10 + 6 - 2);
    }

    #[test]
    fn mesh_presets_have_huge_diameter_scale_free_small() {
        for p in Preset::ALL {
            let g = p.build(Scale::Tiny);
            let d = estimate_diameter(&g);
            match p.kind {
                // Tiny road networks are ~48x48 grids: diameter ≈ 90+.
                GraphKind::MeshLike => assert!(d >= 50, "{}: diameter {d}", p.name),
                GraphKind::ScaleFree => assert!(d <= 30, "{}: diameter {d}", p.name),
            }
        }
    }

    #[test]
    fn stats_fields_consistent() {
        let g = rmat(9, 3000, (0.57, 0.19, 0.19, 0.05), 1);
        let s = stats(&g);
        assert_eq!(s.vertices, g.n_vertices());
        assert_eq!(s.edges, g.n_edges());
        assert_eq!(s.max_out_degree, g.max_degree());
        assert!((s.avg_degree - g.avg_degree()).abs() < 1e-12);
        assert!(s.max_in_degree > 0);
    }

    #[test]
    fn road_networks_mostly_connected_from_hub() {
        let g = road_network(48, 48, 7);
        let src = Preset::by_name("road_usa_s").unwrap().bfs_source(&g);
        assert!(reachable_fraction(&g, src) > 0.95);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(estimate_diameter(&g), 0);
        assert_eq!(reachable_fraction(&g, 0), 0.0);
    }
}
