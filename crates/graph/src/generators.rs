//! Seeded graph generators and the Table I preset catalog.
//!
//! Two families mirror the paper's dataset split:
//!
//! * [`rmat`] — recursive-matrix (Kronecker) scale-free graphs; skew is
//!   controlled by the `(a, b, c, d)` quadrant probabilities. `a ≫ d`
//!   yields the heavy hubs of indochina-2004; balanced-ish settings give
//!   LiveJournal-like social graphs.
//! * [`grid_2d`] / [`road_network`] — degree-≈4 meshes with enormous
//!   diameter; `road_network` perturbs the grid with deletions and a few
//!   shortcut edges so degrees and local structure resemble road graphs.
//!
//! All generators are deterministic in their seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Csr, VertexId};

/// Generate a scale-free directed graph with `2^scale` vertices and
/// `n_edges` edges via R-MAT recursive quadrant sampling.
pub fn rmat(scale: u32, n_edges: usize, probs: (f64, f64, f64, f64), seed: u64) -> Csr {
    let (a, b, c, _d) = probs;
    assert!(a + b + c < 1.0 + 1e-9, "quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << level;
            v |= dv << level;
        }
        edges.push((u as VertexId, v as VertexId));
    }
    Csr::from_edges(n, &edges)
}

/// Uniform random (Erdős–Rényi G(n, m)) directed graph.
pub fn uniform(n_vertices: usize, n_edges: usize, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges: Vec<(VertexId, VertexId)> = (0..n_edges)
        .map(|_| {
            (
                rng.gen_range(0..n_vertices) as VertexId,
                rng.gen_range(0..n_vertices) as VertexId,
            )
        })
        .collect();
    Csr::from_edges(n_vertices, &edges)
}

/// 4-connected `w × h` grid, bidirectional edges. Diameter = `w + h - 2`.
pub fn grid_2d(w: usize, h: usize) -> Csr {
    let n = w * h;
    let at = |x: usize, y: usize| (y * w + x) as VertexId;
    let mut edges = Vec::with_capacity(4 * n);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((at(x, y), at(x + 1, y)));
                edges.push((at(x + 1, y), at(x, y)));
            }
            if y + 1 < h {
                edges.push((at(x, y), at(x, y + 1)));
                edges.push((at(x, y + 1), at(x, y)));
            }
        }
    }
    Csr::from_edges(n, &edges)
}

/// Road-network-like mesh: a `w × h` grid with a fraction of edges deleted
/// and a few long-range "highway" shortcuts added, keeping average degree
/// ≈ 2–3 and diameter in the thousands (road_usa / osm-eur structure).
pub fn road_network(w: usize, h: usize, seed: u64) -> Csr {
    let n = w * h;
    let at = |x: usize, y: usize| (y * w + x) as VertexId;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(4 * n);
    let push_bidir = |edges: &mut Vec<(VertexId, VertexId)>, u: VertexId, v: VertexId| {
        edges.push((u, v));
        edges.push((v, u));
    };
    for y in 0..h {
        for x in 0..w {
            // Delete ~12% of grid edges to break the regular lattice (but
            // keep row 0 / column 0 intact so the graph stays connected).
            if x + 1 < w && (y == 0 || rng.gen::<f64>() > 0.12) {
                push_bidir(&mut edges, at(x, y), at(x + 1, y));
            }
            if y + 1 < h && (x == 0 || rng.gen::<f64>() > 0.12) {
                push_bidir(&mut edges, at(x, y), at(x, y + 1));
            }
        }
    }
    // Sparse highways: n/2048 shortcuts of bounded length, which perturb
    // shortest paths without collapsing the diameter.
    for _ in 0..(n / 2048) {
        let x = rng.gen_range(0..w);
        let y = rng.gen_range(0..h);
        let dx = rng.gen_range(0..(w / 16).max(2));
        let dy = rng.gen_range(0..(h / 16).max(2));
        let x2 = (x + dx).min(w - 1);
        let y2 = (y + dy).min(h - 1);
        push_bidir(&mut edges, at(x, y), at(x2, y2));
    }
    Csr::from_edges(n, &edges)
}

/// Structural family of a dataset, Table I's "type" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Power-law degrees, low diameter (social/web graphs).
    ScaleFree,
    /// Degree ≈ 2–4, huge diameter (road networks).
    MeshLike,
}

impl GraphKind {
    /// Table suffix used in the paper's dataset names (`s` / `m`).
    pub fn suffix(self) -> &'static str {
        match self {
            GraphKind::ScaleFree => "s",
            GraphKind::MeshLike => "m",
        }
    }
}

/// Generation size: `Full` for benchmark tables, `Tiny` for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The DESIGN.md §6 sizes used by every table/figure binary.
    Full,
    /// Orders-of-magnitude smaller, same structure; for tests.
    Tiny,
}

/// A scaled stand-in for one Table I dataset.
#[derive(Debug, Clone, Copy)]
pub struct Preset {
    /// Short name used in table output.
    pub name: &'static str,
    /// The paper dataset this preset mirrors.
    pub mirrors: &'static str,
    /// Structural family.
    pub kind: GraphKind,
}

impl Preset {
    /// The six Table I stand-ins, in the paper's row order.
    pub const ALL: [Preset; 6] = [
        Preset {
            name: "soc-LiveJournal1_s",
            mirrors: "soc-LiveJournal1",
            kind: GraphKind::ScaleFree,
        },
        Preset {
            name: "hollywood_2009_s",
            mirrors: "hollywood_2009",
            kind: GraphKind::ScaleFree,
        },
        Preset {
            name: "indochina_2004_s",
            mirrors: "indochina_2004",
            kind: GraphKind::ScaleFree,
        },
        Preset {
            name: "twitter_s",
            mirrors: "twitter50",
            kind: GraphKind::ScaleFree,
        },
        Preset {
            name: "road_usa_s",
            mirrors: "road_usa",
            kind: GraphKind::MeshLike,
        },
        Preset {
            name: "osm_eur_s",
            mirrors: "osm_eur",
            kind: GraphKind::MeshLike,
        },
    ];

    /// The four strong-scaling datasets used in Figures 5, 8, and 9.
    pub const SCALING: [&'static str; 4] =
        ["soc-LiveJournal1_s", "twitter_s", "road_usa_s", "osm_eur_s"];

    /// Look a preset up by name.
    pub fn by_name(name: &str) -> Option<Preset> {
        Preset::ALL.iter().copied().find(|p| p.name == name)
    }

    /// Build the graph. Deterministic per preset and scale.
    pub fn build(&self, scale: Scale) -> Csr {
        match (self.name, scale) {
            // Social graph: moderately skewed R-MAT.
            ("soc-LiveJournal1_s", Scale::Full) => {
                rmat(18, 4_300_000, (0.57, 0.19, 0.19, 0.05), 11)
            }
            ("soc-LiveJournal1_s", Scale::Tiny) => rmat(10, 12_000, (0.57, 0.19, 0.19, 0.05), 11),
            // Dense collaboration graph: high average degree.
            ("hollywood_2009_s", Scale::Full) => rmat(16, 7_000_000, (0.55, 0.2, 0.2, 0.05), 22),
            ("hollywood_2009_s", Scale::Tiny) => rmat(9, 30_000, (0.55, 0.2, 0.2, 0.05), 22),
            // Web graph: extreme hub skew (max in-degree 256 k in Table I).
            ("indochina_2004_s", Scale::Full) => rmat(19, 3_600_000, (0.7, 0.15, 0.1, 0.05), 33),
            ("indochina_2004_s", Scale::Tiny) => rmat(10, 10_000, (0.7, 0.15, 0.1, 0.05), 33),
            // The big one.
            ("twitter_s", Scale::Full) => rmat(19, 16_000_000, (0.6, 0.19, 0.16, 0.05), 44),
            ("twitter_s", Scale::Tiny) => rmat(11, 60_000, (0.6, 0.19, 0.16, 0.05), 44),
            ("road_usa_s", Scale::Full) => road_network(707, 707, 55),
            ("road_usa_s", Scale::Tiny) => road_network(48, 48, 55),
            ("osm_eur_s", Scale::Full) => road_network(1000, 1000, 66),
            ("osm_eur_s", Scale::Tiny) => road_network(64, 64, 66),
            (other, _) => panic!("unknown preset {other}"),
        }
    }

    /// A sensible BFS source: the highest-out-degree vertex, which is in
    /// the giant component for every preset.
    pub fn bfs_source(&self, g: &Csr) -> VertexId {
        (0..g.n_vertices() as VertexId)
            .max_by_key(|&v| g.degree(v))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(8, 1000, (0.57, 0.19, 0.19, 0.05), 7);
        let b = rmat(8, 1000, (0.57, 0.19, 0.19, 0.05), 7);
        assert_eq!(a, b);
        let c = rmat(8, 1000, (0.57, 0.19, 0.19, 0.05), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, 40_000, (0.6, 0.19, 0.16, 0.05), 1);
        // Scale-free: max degree far above average.
        assert!(g.max_degree() as f64 > 10.0 * g.avg_degree());
    }

    #[test]
    fn grid_dimensions_and_degrees() {
        let g = grid_2d(5, 4);
        assert_eq!(g.n_vertices(), 20);
        // Interior vertex has degree 4, corner 2.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(6), 4);
        // Undirected: every edge has its reverse.
        for (u, v) in g.edges() {
            assert!(g.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn road_network_is_mesh_like() {
        let g = road_network(48, 48, 3);
        let avg = g.avg_degree();
        assert!(avg > 2.0 && avg < 5.0, "avg degree {avg}");
        assert!(g.max_degree() <= 12);
    }

    #[test]
    fn road_network_row0_col0_connected_spine() {
        let g = road_network(32, 32, 9);
        // Row 0 keeps all horizontal edges, column 0 all vertical ones.
        for x in 0..31u32 {
            assert!(g.neighbors(x).contains(&(x + 1)));
        }
        for y in 0..31u32 {
            assert!(g.neighbors(y * 32).contains(&((y + 1) * 32)));
        }
    }

    #[test]
    fn all_presets_build_tiny() {
        for p in Preset::ALL {
            let g = p.build(Scale::Tiny);
            assert!(g.n_vertices() > 0, "{}", p.name);
            assert!(g.n_edges() > 0, "{}", p.name);
            let src = p.bfs_source(&g);
            assert!(g.degree(src) > 0);
        }
    }

    #[test]
    fn preset_kinds_match_structure() {
        for p in Preset::ALL {
            let g = p.build(Scale::Tiny);
            match p.kind {
                GraphKind::ScaleFree => {
                    assert!(g.max_degree() as f64 > 5.0 * g.avg_degree(), "{}", p.name)
                }
                GraphKind::MeshLike => assert!(g.max_degree() <= 12, "{}", p.name),
            }
        }
    }

    #[test]
    fn preset_lookup() {
        assert_eq!(Preset::by_name("twitter_s").unwrap().mirrors, "twitter50");
        assert!(Preset::by_name("nope").is_none());
        assert_eq!(GraphKind::ScaleFree.suffix(), "s");
        assert_eq!(GraphKind::MeshLike.suffix(), "m");
    }

    #[test]
    fn uniform_has_requested_density() {
        let g = uniform(1000, 5000, 5);
        // Dedup can only lose a few collisions.
        assert!(g.n_edges() > 4900);
    }
}
