//! Serial reference algorithms — ground truth for every scheduler.
//!
//! The asynchronous schedulers under test may process vertices out of
//! order, revisit them (speculation), or race updates across PEs, but they
//! must converge to the same fixed point: exact BFS depths, and PageRank
//! values within the push algorithm's residual tolerance. Every
//! correctness test in the workspace compares against these.

use crate::csr::{Csr, VertexId};

/// Depth value for unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;

/// Serial level-order BFS; returns each vertex's depth from `src`
/// (`UNREACHED` if not reachable).
pub fn bfs(g: &Csr, src: VertexId) -> Vec<u32> {
    let mut depth = vec![UNREACHED; g.n_vertices()];
    if g.n_vertices() == 0 {
        return depth;
    }
    depth[src as usize] = 0;
    let mut frontier = vec![src];
    let mut next = Vec::new();
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if depth[v as usize] == UNREACHED {
                    depth[v as usize] = level;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    depth
}

/// Result of the push PageRank reference.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Final rank per vertex.
    pub rank: Vec<f64>,
    /// Number of vertex relaxations performed (workload measure).
    pub relaxations: u64,
}

/// Serial push-style PageRank with damping `alpha` and residual threshold
/// `epsilon` — the same formulation the paper's asynchronous PR uses:
/// every vertex starts with residue `1 - alpha`; relaxing a vertex moves
/// its residue into its rank and pushes `alpha * residue / deg` to each
/// out-neighbor; vertices re-enter the worklist when their residue crosses
/// `epsilon`.
///
/// Ranks follow the unnormalized GPU-implementation convention: they sum
/// to ≈ `n` at convergence (average rank 1), not 1.
pub fn pagerank_push(g: &Csr, alpha: f64, epsilon: f64) -> PageRankResult {
    let n = g.n_vertices();
    let mut rank = vec![0.0f64; n];
    let mut residue = vec![1.0 - alpha; n];
    let mut in_queue = vec![true; n];
    let mut queue: std::collections::VecDeque<VertexId> = (0..n as VertexId).collect();
    let mut relaxations = 0u64;
    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let r = residue[u as usize];
        if r < epsilon {
            continue;
        }
        relaxations += 1;
        residue[u as usize] = 0.0;
        rank[u as usize] += r;
        let deg = g.degree(u);
        if deg == 0 {
            continue;
        }
        let share = alpha * r / deg as f64;
        for &v in g.neighbors(u) {
            let res = &mut residue[v as usize];
            *res += share;
            if *res >= epsilon && !in_queue[v as usize] {
                in_queue[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    PageRankResult { rank, relaxations }
}

/// L1 distance between two rank vectors (convergence comparison).
pub fn rank_l1(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_2d, rmat};

    #[test]
    fn bfs_chain() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(&g, 3), vec![UNREACHED, UNREACHED, UNREACHED, 0]);
    }

    #[test]
    fn bfs_diamond_takes_shortest() {
        let g = Csr::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 4)]);
        let d = bfs(&g, 0);
        assert_eq!(d[3], 2);
        assert_eq!(d[4], 1, "direct edge beats the long path");
    }

    #[test]
    fn bfs_grid_depth_is_manhattan() {
        let g = grid_2d(8, 8);
        let d = bfs(&g, 0);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(d[y * 8 + x], (x + y) as u32);
            }
        }
    }

    #[test]
    fn pagerank_sums_to_one_when_converged() {
        // On a graph with no sinks, total rank approaches n as epsilon → 0
        // (unnormalized convention: Σ rank + geometric residue tail = n).
        let g = grid_2d(10, 10); // undirected grid: no sinks
        let pr = pagerank_push(&g, 0.85, 1e-9);
        let total: f64 = pr.rank.iter().sum();
        let n = g.n_vertices() as f64;
        assert!((total / n - 1.0).abs() < 1e-4, "total rank {total}");
    }

    #[test]
    fn pagerank_orders_hub_first() {
        // Star: everything points at vertex 0, plus a back edge so 0 isn't
        // a sink.
        let mut edges = vec![(0 as VertexId, 1 as VertexId)];
        for v in 1..50u32 {
            edges.push((v, 0));
        }
        let g = Csr::from_edges(50, &edges);
        let pr = pagerank_push(&g, 0.85, 1e-10);
        let max = pr
            .rank
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max, 0);
    }

    #[test]
    fn pagerank_epsilon_controls_work() {
        let g = rmat(9, 4000, (0.57, 0.19, 0.19, 0.05), 5);
        let loose = pagerank_push(&g, 0.85, 1e-3);
        let tight = pagerank_push(&g, 0.85, 1e-7);
        assert!(tight.relaxations > loose.relaxations);
        // Both approximate the same fixed point (normalized per vertex).
        let per_vertex = rank_l1(&loose.rank, &tight.rank) / g.n_vertices() as f64;
        assert!(per_vertex < 0.01, "per-vertex L1 {per_vertex}");
    }

    #[test]
    fn rank_l1_basics() {
        assert_eq!(rank_l1(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rank_l1(&[1.0, 2.0], &[0.5, 2.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Csr::from_edges(0, &[]);
        assert!(bfs(&g, 0).is_empty());
        let pr = pagerank_push(&g, 0.85, 1e-6);
        assert!(pr.rank.is_empty());
    }
}
