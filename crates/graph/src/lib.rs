//! Graph substrate for the Atos reproduction.
//!
//! The paper evaluates on six graphs (Table I) spanning two structural
//! families whose contrast drives every conclusion in the evaluation:
//!
//! * **scale-free** (soc-LiveJournal1, hollywood-2009, indochina-2004,
//!   twitter50): power-law degrees, diameter 10–26 — BFS/PR are
//!   *bandwidth-bound*, parallelism is plentiful;
//! * **mesh-like** (road_usa, osm-eur): degree ≈ 2, diameter in the
//!   thousands — BFS is *latency/parallelism-bound* and kernel-launch
//!   overhead dominates level-synchronous schedulers.
//!
//! The originals are up to 1.9 B edges; [`generators::Preset`] provides
//! seeded synthetic stand-ins that preserve the family structure at
//! laptop-simulable scale (see DESIGN.md §6 for the substitution argument).
//!
//! Modules:
//! * [`csr`] — compressed sparse row storage and builders.
//! * [`generators`] — R-MAT, uniform, 2-D grid, and road-network
//!   generators plus the Table I preset catalog.
//! * [`partition`] — random / block / BFS-grown partitioners and edge-cut
//!   statistics (the paper uses METIS; BFS-grown matches its role).
//! * [`mod@reference`] — serial BFS and PageRank used as ground truth in every
//!   correctness test.
//! * [`stats`] — degree and diameter estimates used to validate presets
//!   against Table I.
//! * [`distributed`] — per-PE local CSR slices with global↔local id maps
//!   and halo sets, the layout a distributed-memory port ships to each PE.
//! * [`io`] — Matrix Market and DIMACS readers/writers for the paper's
//!   original dataset formats.

#![warn(missing_docs)]

pub mod csr;
pub mod distributed;
pub mod generators;
pub mod io;
pub mod partition;
pub mod reference;
pub mod stats;
pub mod weights;

pub use csr::{Csr, VertexId};
pub use partition::Partition;
