//! Edge weights and weighted serial references (SSSP).
//!
//! The paper's two applications are unweighted, but its priority queue —
//! `DistributedPriorityQueues` with `threshold` / `threshold_delta` — is
//! the delta-stepping scheduling structure, and single-source shortest
//! paths is its canonical client. This module supplies deterministic edge
//! weights aligned to a [`Csr`] and a Dijkstra reference, used by the
//! `atos-apps` SSSP extension.

use crate::csr::{Csr, VertexId};

/// Distance value for unreachable vertices.
pub const UNREACHED_DIST: u64 = u64::MAX;

/// Per-edge weights stored parallel to a CSR's neighbor array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWeights {
    w: Vec<u32>,
    offsets: Vec<u64>,
}

impl EdgeWeights {
    /// Deterministic pseudo-random weights in `1..=max_weight`, seeded.
    ///
    /// Weights are a pure function of `(u, v, seed)`, so two CSRs with the
    /// same edges get the same weights regardless of construction order.
    pub fn random(g: &Csr, max_weight: u32, seed: u64) -> Self {
        assert!(max_weight >= 1);
        let mut w = Vec::with_capacity(g.n_edges());
        let mut offsets = Vec::with_capacity(g.n_vertices() + 1);
        offsets.push(0u64);
        for u in 0..g.n_vertices() as VertexId {
            for &v in g.neighbors(u) {
                w.push(hash_edge(u, v, seed) % max_weight + 1);
            }
            offsets.push(w.len() as u64);
        }
        EdgeWeights { w, offsets }
    }

    /// Unit weights (SSSP degenerates to BFS).
    pub fn unit(g: &Csr) -> Self {
        let mut offsets = Vec::with_capacity(g.n_vertices() + 1);
        offsets.push(0u64);
        for u in 0..g.n_vertices() as VertexId {
            offsets.push(offsets.last().unwrap() + g.degree(u) as u64);
        }
        EdgeWeights {
            w: vec![1; g.n_edges()],
            offsets,
        }
    }

    /// Weights of `u`'s out-edges, parallel to `g.neighbors(u)`.
    pub fn of(&self, u: VertexId) -> &[u32] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.w[lo..hi]
    }

    /// Maximum weight present (delta-stepping tuning input).
    pub fn max(&self) -> u32 {
        self.w.iter().copied().max().unwrap_or(1)
    }
}

fn hash_edge(u: VertexId, v: VertexId, seed: u64) -> u32 {
    // splitmix64 over the packed edge id.
    let mut x = ((u as u64) << 32 | v as u64) ^ seed.wrapping_mul(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    (x ^ (x >> 31)) as u32
}

/// Serial Dijkstra; returns distances (`UNREACHED_DIST` if unreachable).
pub fn dijkstra(g: &Csr, w: &EdgeWeights, src: VertexId) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![UNREACHED_DIST; g.n_vertices()];
    if g.n_vertices() == 0 {
        return dist;
    }
    dist[src as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (&v, &wt) in g.neighbors(u).iter().zip(w.of(u)) {
            let nd = d + wt as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Serial connected components of the *symmetrized* view of `g`: labels
/// are the minimum vertex id in each component.
pub fn connected_components(g: &Csr) -> Vec<u32> {
    let s = g.symmetrize();
    let n = s.n_vertices();
    let mut label = vec![u32::MAX; n];
    let mut stack = Vec::new();
    for start in 0..n as VertexId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = start;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in s.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = start;
                    stack.push(v);
                }
            }
        }
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_2d, rmat};
    use crate::reference::bfs;

    #[test]
    fn weights_align_with_neighbors() {
        let g = rmat(8, 1200, (0.57, 0.19, 0.19, 0.05), 3);
        let w = EdgeWeights::random(&g, 16, 7);
        for u in 0..g.n_vertices() as VertexId {
            assert_eq!(w.of(u).len(), g.degree(u));
            assert!(w.of(u).iter().all(|&x| (1..=16).contains(&x)));
        }
        assert!(w.max() <= 16);
    }

    #[test]
    fn weights_are_seed_deterministic() {
        let g = rmat(7, 500, (0.57, 0.19, 0.19, 0.05), 1);
        assert_eq!(EdgeWeights::random(&g, 8, 5), EdgeWeights::random(&g, 8, 5));
        assert_ne!(EdgeWeights::random(&g, 8, 5), EdgeWeights::random(&g, 8, 6));
    }

    #[test]
    fn unit_weight_dijkstra_equals_bfs() {
        let g = rmat(9, 3000, (0.57, 0.19, 0.19, 0.05), 2);
        let w = EdgeWeights::unit(&g);
        let src = 0;
        let d = dijkstra(&g, &w, src);
        let b = bfs(&g, src);
        for v in 0..g.n_vertices() {
            if b[v] == u32::MAX {
                assert_eq!(d[v], UNREACHED_DIST);
            } else {
                assert_eq!(d[v], b[v] as u64);
            }
        }
    }

    #[test]
    fn dijkstra_chain_with_shortcut() {
        // 0 -> 1 -> 2 cheap; 0 -> 2 expensive.
        let g = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        // Hand-build weights: of(0) = [w(0,1), w(0,2)], of(1) = [w(1,2)].
        let w = EdgeWeights {
            w: vec![1, 10, 1],
            offsets: vec![0, 2, 3, 3],
        };
        assert_eq!(dijkstra(&g, &w, 0), vec![0, 1, 2]);
    }

    #[test]
    fn components_on_disconnected_grids() {
        // Two 3x3 grids, disjoint.
        let a = grid_2d(3, 3);
        let mut edges: Vec<(u32, u32)> = a.edges().collect();
        edges.extend(a.edges().map(|(u, v)| (u + 9, v + 9)));
        let g = Csr::from_edges(18, &edges);
        let labels = connected_components(&g);
        assert!(labels[..9].iter().all(|&l| l == 0));
        assert!(labels[9..].iter().all(|&l| l == 9));
    }

    #[test]
    fn directed_chain_is_one_weak_component() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(connected_components(&g), vec![0, 0, 0, 0]);
    }
}
