//! Graph file formats: Matrix Market and DIMACS.
//!
//! The paper's datasets ship as SuiteSparse Matrix Market files
//! (soc-LiveJournal1, hollywood-2009, indochina-2004) and DIMACS
//! shortest-path files (road_usa, osm-eur). These readers let the
//! benchmark harness consume the originals when they are available;
//! writers make the synthetic presets exportable for cross-checking with
//! other frameworks.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use crate::csr::{Csr, VertexId};

/// Errors from graph parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file, with a human-readable reason.
    Malformed(String),
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed(m) => write!(f, "malformed graph file: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn malformed(msg: impl Into<String>) -> ParseError {
    ParseError::Malformed(msg.into())
}

/// Read a Matrix Market coordinate file as a directed graph.
///
/// Supports `%%MatrixMarket matrix coordinate <field> <symmetry>` with
/// `pattern`/`integer`/`real` fields (values are ignored) and
/// `general`/`symmetric` symmetry (symmetric adds both directions).
/// Vertex ids in the file are 1-based, per the format.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Csr, ParseError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| malformed("empty file"))??;
    let head = header.to_ascii_lowercase();
    if !head.starts_with("%%matrixmarket matrix coordinate") {
        return Err(malformed(format!("unsupported header: {header}")));
    }
    let symmetric = head.contains("symmetric");

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| malformed("missing size line"))??;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break line;
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| malformed("bad size line")))
        .collect::<Result<_, _>>()?;
    let [rows, cols, nnz] = dims[..] else {
        return Err(malformed("size line needs rows cols nnz"));
    };
    let n = rows.max(cols);

    let mut edges = Vec::with_capacity(if symmetric { nnz * 2 } else { nnz });
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: usize = it
            .next()
            .ok_or_else(|| malformed("entry missing row"))?
            .parse()
            .map_err(|_| malformed("bad row index"))?;
        let v: usize = it
            .next()
            .ok_or_else(|| malformed("entry missing col"))?
            .parse()
            .map_err(|_| malformed("bad col index"))?;
        if u == 0 || v == 0 || u > n || v > n {
            return Err(malformed(format!("index out of range: {u} {v}")));
        }
        let (u, v) = ((u - 1) as VertexId, (v - 1) as VertexId);
        edges.push((u, v));
        if symmetric && u != v {
            edges.push((v, u));
        }
    }
    if edges.len() < nnz {
        return Err(malformed(format!(
            "expected {nnz} entries, found {}",
            edges.len()
        )));
    }
    Ok(Csr::from_edges(n, &edges))
}

/// Write a graph as a general pattern Matrix Market file (1-based).
pub fn write_matrix_market<W: Write>(g: &Csr, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(w, "% exported by atos-graph")?;
    writeln!(w, "{} {} {}", g.n_vertices(), g.n_vertices(), g.n_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u + 1, v + 1)?;
    }
    w.flush()
}

/// Read a DIMACS shortest-path (`.gr`) file: `p sp <n> <m>` then
/// `a <u> <v> <weight>` arcs (1-based; weights ignored — the paper's BFS
/// and PageRank are unweighted).
pub fn read_dimacs<R: Read>(reader: R) -> Result<Csr, ParseError> {
    let mut n = 0usize;
    let mut edges = Vec::new();
    for line in BufReader::new(reader).lines() {
        let line = line?;
        let t = line.trim();
        match t.chars().next() {
            None | Some('c') => continue,
            Some('p') => {
                let parts: Vec<&str> = t.split_whitespace().collect();
                if parts.len() < 4 || parts[1] != "sp" {
                    return Err(malformed(format!("bad problem line: {t}")));
                }
                n = parts[2].parse().map_err(|_| malformed("bad vertex count"))?;
                edges.reserve(parts[3].parse().unwrap_or(0));
            }
            Some('a') => {
                let mut it = t.split_whitespace().skip(1);
                let u: usize = it
                    .next()
                    .ok_or_else(|| malformed("arc missing source"))?
                    .parse()
                    .map_err(|_| malformed("bad arc source"))?;
                let v: usize = it
                    .next()
                    .ok_or_else(|| malformed("arc missing target"))?
                    .parse()
                    .map_err(|_| malformed("bad arc target"))?;
                if n == 0 || u == 0 || v == 0 || u > n || v > n {
                    return Err(malformed(format!("arc out of range: {t}")));
                }
                edges.push(((u - 1) as VertexId, (v - 1) as VertexId));
            }
            Some(_) => return Err(malformed(format!("unknown line: {t}"))),
        }
    }
    if n == 0 {
        return Err(malformed("missing problem line"));
    }
    Ok(Csr::from_edges(n, &edges))
}

/// Write a DIMACS shortest-path file with unit weights.
pub fn write_dimacs<W: Write>(g: &Csr, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "c exported by atos-graph")?;
    writeln!(w, "p sp {} {}", g.n_vertices(), g.n_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "a {} {} 1", u + 1, v + 1)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::rmat;

    #[test]
    fn matrix_market_roundtrip() {
        let g = rmat(8, 1500, (0.57, 0.19, 0.19, 0.05), 1);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = rmat(7, 600, (0.55, 0.2, 0.2, 0.05), 2);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let back = read_dimacs(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn symmetric_matrix_market_adds_reverse_edges() {
        let input = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n";
        let g = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn matrix_market_with_values_and_comments() {
        let input = "%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 2\n1 2 0.5\n2 1 1.5\n";
        let g = read_matrix_market(input.as_bytes()).unwrap();
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn rejects_bad_headers_and_indices() {
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n".as_bytes()).is_err());
        assert!(read_matrix_market("".as_bytes()).is_err());
        assert!(read_dimacs("a 1 2 1\n".as_bytes()).is_err(), "arc before problem line");
        assert!(read_dimacs("p sp 2 1\nz nonsense\n".as_bytes()).is_err());
    }

    #[test]
    fn dimacs_skips_comments_and_weights() {
        let input = "c road graph\np sp 3 3\na 1 2 7\na 2 3 9\nc trailing\na 3 1 2\n";
        let g = read_dimacs(input.as_bytes()).unwrap();
        assert_eq!(g.n_vertices(), 3);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.neighbors(2), &[0]);
    }
}
