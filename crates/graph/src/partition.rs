//! Vertex partitioning across PEs.
//!
//! The paper partitions with METIS where possible ("Groute requires Metis,
//! so for all tests that Groute can run, we use Metis partitionings;
//! twitter50 uses a random partitioning"). METIS's role in the evaluation
//! is to control the *remote edge fraction* — the share of edges whose
//! endpoints live on different GPUs, i.e. the traffic the interconnect must
//! carry. Three partitioners cover that space:
//!
//! * [`Partition::random`] — worst-case cut (≈ `1 - 1/p` of edges remote);
//!   what the paper uses for twitter50.
//! * [`Partition::block`] — contiguous ranges; good for meshes whose vertex
//!   order is spatial (our grid generators), poor for social graphs.
//! * [`Partition::bfs_grow`] — greedy BFS region growing with balance caps,
//!   a METIS-like min-cut heuristic adequate at our scales.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Csr, VertexId};

/// An assignment of every vertex to one of `n_parts` PEs.
///
/// ```
/// use atos_graph::{generators::grid_2d, Partition};
/// let g = grid_2d(8, 8);
/// let p = Partition::bfs_grow(&g, 4, 1);
/// assert_eq!(p.n_parts(), 4);
/// assert_eq!(p.part_sizes().iter().sum::<usize>(), 64);
/// assert!(p.edge_cut(&g) < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    owner: Vec<u16>,
    n_parts: usize,
}

impl Partition {
    /// All vertices on one PE (single-GPU runs).
    pub fn single(n_vertices: usize) -> Self {
        Partition {
            owner: vec![0; n_vertices],
            n_parts: 1,
        }
    }

    /// Uniform random assignment.
    pub fn random(n_vertices: usize, n_parts: usize, seed: u64) -> Self {
        assert!(n_parts > 0 && n_parts <= u16::MAX as usize);
        let mut rng = SmallRng::seed_from_u64(seed);
        Partition {
            owner: (0..n_vertices)
                .map(|_| rng.gen_range(0..n_parts) as u16)
                .collect(),
            n_parts,
        }
    }

    /// Contiguous equal ranges of the vertex id space.
    pub fn block(n_vertices: usize, n_parts: usize) -> Self {
        assert!(n_parts > 0 && n_parts <= u16::MAX as usize);
        let per = n_vertices.div_ceil(n_parts).max(1);
        Partition {
            owner: (0..n_vertices).map(|v| ((v / per) as u16).min(n_parts as u16 - 1)).collect(),
            n_parts,
        }
    }

    /// Greedy BFS region growing: seeds one BFS per part at spread-out
    /// high-degree vertices and grows regions breadth-first under a balance
    /// cap, then assigns any unreached vertices round-robin. A METIS-like
    /// low-edge-cut heuristic.
    pub fn bfs_grow(g: &Csr, n_parts: usize, seed: u64) -> Self {
        assert!(n_parts > 0 && n_parts <= u16::MAX as usize);
        let n = g.n_vertices();
        if n_parts == 1 || n == 0 {
            return Partition {
                owner: vec![0; n],
                n_parts,
            };
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        const UNASSIGNED: u16 = u16::MAX;
        let mut owner = vec![UNASSIGNED; n];
        let cap = n.div_ceil(n_parts);
        let mut sizes = vec![0usize; n_parts];
        let mut frontiers: Vec<std::collections::VecDeque<VertexId>> =
            (0..n_parts).map(|_| Default::default()).collect();
        // Seed each part at a random vertex, retrying to avoid collisions.
        for p in 0..n_parts {
            for _ in 0..64 {
                let v = rng.gen_range(0..n) as VertexId;
                if owner[v as usize] == UNASSIGNED {
                    owner[v as usize] = p as u16;
                    sizes[p] += 1;
                    frontiers[p].push_back(v);
                    break;
                }
            }
        }
        // Round-robin BFS growth under the balance cap.
        let mut active = true;
        while active {
            active = false;
            for p in 0..n_parts {
                if sizes[p] >= cap {
                    continue;
                }
                if let Some(v) = frontiers[p].pop_front() {
                    active = true;
                    for &w in g.neighbors(v) {
                        if owner[w as usize] == UNASSIGNED && sizes[p] < cap {
                            owner[w as usize] = p as u16;
                            sizes[p] += 1;
                            frontiers[p].push_back(w);
                        }
                    }
                }
            }
        }
        // Unreached vertices (disconnected or cap spill): round-robin to
        // the smallest parts.
        for o in owner.iter_mut() {
            if *o == UNASSIGNED {
                let p = sizes
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, s)| *s)
                    .map(|(i, _)| i)
                    .unwrap();
                *o = p as u16;
                sizes[p] += 1;
            }
        }
        Partition { owner, n_parts }
    }

    /// Owning PE of `v` (the paper's `findPE`).
    pub fn owner(&self, v: VertexId) -> usize {
        self.owner[v as usize] as usize
    }

    /// Number of parts.
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.owner.len()
    }

    /// Vertices owned by each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_parts];
        for &o in &self.owner {
            sizes[o as usize] += 1;
        }
        sizes
    }

    /// Vertices owned by `part`, in id order.
    pub fn vertices_of(&self, part: usize) -> Vec<VertexId> {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, &o)| o as usize == part)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Fraction of edges whose endpoints are on different parts.
    pub fn edge_cut(&self, g: &Csr) -> f64 {
        if g.n_edges() == 0 {
            return 0.0;
        }
        let cut = g
            .edges()
            .filter(|&(u, v)| self.owner(u) != self.owner(v))
            .count();
        cut as f64 / g.n_edges() as f64
    }

    /// Max/min part-size ratio (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap_or(&0);
        let min = *sizes.iter().min().unwrap_or(&0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_2d, rmat};

    #[test]
    fn single_owns_everything() {
        let p = Partition::single(10);
        assert_eq!(p.n_parts(), 1);
        assert!((0..10).all(|v| p.owner(v) == 0));
        assert_eq!(p.part_sizes(), vec![10]);
    }

    #[test]
    fn block_is_contiguous_and_balanced() {
        let p = Partition::block(10, 3);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(9), 2);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(p.imbalance() <= 2.0);
    }

    #[test]
    fn random_is_deterministic_and_covers_parts() {
        let a = Partition::random(1000, 4, 3);
        let b = Partition::random(1000, 4, 3);
        assert_eq!(a, b);
        assert!(a.part_sizes().iter().all(|&s| s > 150));
    }

    #[test]
    fn bfs_grow_beats_random_cut_on_mesh() {
        let g = grid_2d(40, 40);
        let random = Partition::random(g.n_vertices(), 4, 1).edge_cut(&g);
        let grown = Partition::bfs_grow(&g, 4, 1).edge_cut(&g);
        assert!(
            grown < random / 3.0,
            "bfs_grow cut {grown} vs random {random}"
        );
    }

    #[test]
    fn block_beats_random_cut_on_grid() {
        // Grid vertex order is row-major, so block = horizontal strips.
        let g = grid_2d(32, 32);
        let random = Partition::random(g.n_vertices(), 4, 1).edge_cut(&g);
        let block = Partition::block(g.n_vertices(), 4).edge_cut(&g);
        assert!(block < random / 2.0);
    }

    #[test]
    fn bfs_grow_is_balanced_on_scale_free() {
        let g = rmat(10, 8_000, (0.57, 0.19, 0.19, 0.05), 2);
        let p = Partition::bfs_grow(&g, 4, 2);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), g.n_vertices());
        assert!(p.imbalance() < 1.5, "imbalance {}", p.imbalance());
    }

    #[test]
    fn vertices_of_matches_owner() {
        let p = Partition::block(10, 2);
        assert_eq!(p.vertices_of(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(p.vertices_of(1), vec![5, 6, 7, 8, 9]);
    }

    #[test]
    fn random_cut_near_theory() {
        let g = rmat(10, 10_000, (0.5, 0.2, 0.2, 0.1), 4);
        let p = Partition::random(g.n_vertices(), 4, 9);
        let cut = p.edge_cut(&g);
        // Theory: 1 - 1/4 = 0.75.
        assert!((cut - 0.75).abs() < 0.05, "cut {cut}");
    }
}
