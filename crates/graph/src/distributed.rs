//! Distributed graph layout: per-PE local CSR slices.
//!
//! The simulator can afford a shared global CSR, but a real
//! distributed-memory deployment (and the paper's NVSHMEM implementation)
//! stores on each GPU only the adjacency of its *owned* vertices, with
//! global↔local id maps and an explicit halo (the remote vertices its
//! edges point at). This module builds that layout from a global graph +
//! partition, and is what a multi-process port of the runtime would ship
//! to each PE.

use std::collections::HashMap;

use crate::csr::{Csr, VertexId};
use crate::partition::Partition;

/// The slice of a distributed graph owned by one PE.
#[derive(Debug, Clone)]
pub struct LocalGraph {
    /// This PE's id.
    pub pe: usize,
    /// Owned vertices in global ids, in local-id order
    /// (`local_to_global[l]` = global id of local vertex `l`).
    pub local_to_global: Vec<VertexId>,
    /// Adjacency of owned vertices, destinations in *global* ids (the
    /// PGAS model addresses remote memory globally).
    csr_offsets: Vec<u64>,
    csr_neighbors: Vec<VertexId>,
    /// Halo: every non-owned global vertex referenced by an edge, sorted.
    pub halo: Vec<VertexId>,
    global_to_local: HashMap<VertexId, u32>,
}

impl LocalGraph {
    /// Number of owned vertices.
    pub fn n_owned(&self) -> usize {
        self.local_to_global.len()
    }

    /// Number of local (owned-source) edges.
    pub fn n_edges(&self) -> usize {
        self.csr_neighbors.len()
    }

    /// Global id of owned local vertex `l`.
    pub fn to_global(&self, l: u32) -> VertexId {
        self.local_to_global[l as usize]
    }

    /// Local id of global vertex `g`, if owned here.
    pub fn to_local(&self, g: VertexId) -> Option<u32> {
        self.global_to_local.get(&g).copied()
    }

    /// Out-neighbors (global ids) of owned local vertex `l`.
    pub fn neighbors(&self, l: u32) -> &[VertexId] {
        let lo = self.csr_offsets[l as usize] as usize;
        let hi = self.csr_offsets[l as usize + 1] as usize;
        &self.csr_neighbors[lo..hi]
    }

    /// Out-degree of owned local vertex `l`.
    pub fn degree(&self, l: u32) -> usize {
        (self.csr_offsets[l as usize + 1] - self.csr_offsets[l as usize]) as usize
    }
}

/// A graph distributed over `n` PEs: one [`LocalGraph`] each plus the
/// ownership map.
#[derive(Debug, Clone)]
pub struct DistGraph {
    /// Per-PE slices.
    pub locals: Vec<LocalGraph>,
    /// Global vertex count.
    pub n_vertices: usize,
    /// Global edge count.
    pub n_edges: usize,
}

impl DistGraph {
    /// Shard `graph` according to `partition`.
    pub fn build(graph: &Csr, partition: &Partition) -> DistGraph {
        let n_pes = partition.n_parts();
        assert_eq!(partition.n_vertices(), graph.n_vertices());
        let mut locals = Vec::with_capacity(n_pes);
        for pe in 0..n_pes {
            let owned = partition.vertices_of(pe);
            let mut offsets = Vec::with_capacity(owned.len() + 1);
            let mut neighbors = Vec::new();
            let mut halo = Vec::new();
            offsets.push(0u64);
            for &g in &owned {
                for &w in graph.neighbors(g) {
                    neighbors.push(w);
                    if partition.owner(w) != pe {
                        halo.push(w);
                    }
                }
                offsets.push(neighbors.len() as u64);
            }
            halo.sort_unstable();
            halo.dedup();
            let global_to_local = owned
                .iter()
                .enumerate()
                .map(|(l, &g)| (g, l as u32))
                .collect();
            locals.push(LocalGraph {
                pe,
                local_to_global: owned,
                csr_offsets: offsets,
                csr_neighbors: neighbors,
                halo,
                global_to_local,
            });
        }
        DistGraph {
            locals,
            n_vertices: graph.n_vertices(),
            n_edges: graph.n_edges(),
        }
    }

    /// The slice owned by `pe`.
    pub fn local(&self, pe: usize) -> &LocalGraph {
        &self.locals[pe]
    }

    /// Total halo (replicated remote references) across PEs — the memory
    /// overhead of the distribution.
    pub fn total_halo(&self) -> usize {
        self.locals.iter().map(|l| l.halo.len()).sum()
    }

    /// Sanity: every global edge appears in exactly one local slice.
    pub fn validate_against(&self, graph: &Csr, partition: &Partition) -> bool {
        let mut seen = 0usize;
        for local in &self.locals {
            for l in 0..local.n_owned() as u32 {
                let g = local.to_global(l);
                if partition.owner(g) != local.pe {
                    return false;
                }
                if local.neighbors(l) != graph.neighbors(g) {
                    return false;
                }
                seen += local.degree(l);
            }
        }
        seen == graph.n_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_2d, rmat};

    #[test]
    fn shards_cover_all_edges() {
        let g = rmat(9, 4000, (0.57, 0.19, 0.19, 0.05), 3);
        let p = Partition::bfs_grow(&g, 4, 1);
        let d = DistGraph::build(&g, &p);
        assert_eq!(d.n_vertices, g.n_vertices());
        assert_eq!(
            d.locals.iter().map(|l| l.n_edges()).sum::<usize>(),
            g.n_edges()
        );
        assert!(d.validate_against(&g, &p));
    }

    #[test]
    fn id_maps_roundtrip() {
        let g = grid_2d(8, 8);
        let p = Partition::block(g.n_vertices(), 2);
        let d = DistGraph::build(&g, &p);
        for local in &d.locals {
            for l in 0..local.n_owned() as u32 {
                let g_id = local.to_global(l);
                assert_eq!(local.to_local(g_id), Some(l));
            }
        }
        // Unowned ids map to None.
        assert_eq!(d.local(0).to_local(63), None);
        assert_eq!(d.local(1).to_local(0), None);
    }

    #[test]
    fn halo_matches_edge_cut() {
        let g = grid_2d(10, 10);
        let p = Partition::block(g.n_vertices(), 2);
        let d = DistGraph::build(&g, &p);
        // Block partition of a row-major grid: the halo of each half is
        // the facing row of the other half (10 vertices each).
        assert_eq!(d.local(0).halo.len(), 10);
        assert_eq!(d.local(1).halo.len(), 10);
        assert_eq!(d.total_halo(), 20);
        // Halo vertices are never owned.
        for local in &d.locals {
            for &h in &local.halo {
                assert_ne!(p.owner(h), local.pe);
            }
        }
    }

    #[test]
    fn single_pe_has_empty_halo() {
        let g = rmat(8, 1000, (0.57, 0.19, 0.19, 0.05), 5);
        let p = Partition::single(g.n_vertices());
        let d = DistGraph::build(&g, &p);
        assert_eq!(d.total_halo(), 0);
        assert!(d.validate_against(&g, &p));
    }

    #[test]
    fn local_neighbor_lists_preserve_global_order() {
        let g = rmat(8, 2000, (0.6, 0.19, 0.16, 0.05), 9);
        let p = Partition::random(g.n_vertices(), 3, 2);
        let d = DistGraph::build(&g, &p);
        for local in &d.locals {
            for l in 0..local.n_owned() as u32 {
                assert_eq!(local.neighbors(l), g.neighbors(local.to_global(l)));
            }
        }
    }
}
