//! End-to-end CLI tests: exit codes, JSON mode, and the baseline
//! round-trip, driven through the real `atos-lint` binary.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_atos-lint")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn run(cwd: &Path, args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn atos-lint")
}

#[test]
fn usage_error_exits_2() {
    let out = run(&workspace_root(), &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = run(&workspace_root(), &["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn clean_workspace_exits_0() {
    let out = run(&workspace_root(), &["--workspace"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("no findings"));

    // The committed (empty) baseline gate passes on the committed tree.
    let out = run(&workspace_root(), &["--workspace", "--deny-new"]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn findings_exit_1_with_stable_json() {
    let lint_dir = workspace_root().join("crates/lint");
    let out = run(
        &lint_dir,
        &["tests/fixtures/facade_bypass.rs", "--json"],
    );
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Explicit-path mode runs the *project* config, under which the
    // fixture's raw atomic import is a facade bypass.
    assert!(
        stdout.contains("\"rule\":\"facade-bypass\"")
            && stdout.contains("\"line\":4")
            && stdout.contains("\"count\":1"),
        "unexpected JSON: {stdout}"
    );
}

#[test]
fn sarif_emit_is_valid_and_deterministic() {
    let lint_dir = workspace_root().join("crates/lint");
    let out = run(
        &lint_dir,
        &["tests/fixtures/facade_bypass.rs", "--emit", "sarif"],
    );
    assert_eq!(out.status.code(), Some(1), "findings still gate the exit code");
    let sarif = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(sarif.contains("\"version\":\"2.1.0\""), "sarif: {sarif}");
    assert!(sarif.contains("sarif-2.1.0.json"));
    assert!(sarif.contains("\"ruleId\":\"facade-bypass\""));
    assert!(sarif.contains("\"uri\":\"tests/fixtures/facade_bypass.rs\""));

    let again = run(
        &lint_dir,
        &["tests/fixtures/facade_bypass.rs", "--emit", "sarif"],
    );
    assert_eq!(sarif.as_bytes(), &again.stdout[..], "SARIF must be deterministic");
}

#[test]
fn cache_second_run_hits_and_is_byte_identical() {
    let root = workspace_root();
    let cache = std::env::temp_dir().join(format!(
        "atos-lint-cache-test-{}",
        std::process::id()
    ));
    let cache_s = cache.to_str().unwrap();

    let cold = run(&root, &["--workspace", "--json", "--cache", cache_s]);
    assert_eq!(cold.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&cold.stderr).contains("cache miss"),
        "first run must miss: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert!(cache.exists(), "cache file written");

    let warm = run(&root, &["--workspace", "--json", "--cache", cache_s]);
    assert_eq!(warm.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&warm.stderr).contains("cache hit"),
        "second run must hit: {}",
        String::from_utf8_lossy(&warm.stderr)
    );
    assert_eq!(
        cold.stdout, warm.stdout,
        "cached replay must be byte-identical to the cold run"
    );

    let _ = std::fs::remove_file(&cache);
}

#[test]
fn timings_breakdown_lists_every_rule() {
    let lint_dir = workspace_root().join("crates/lint");
    let out = run(
        &lint_dir,
        &["tests/fixtures/facade_bypass.rs", "--timings"],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("wall time by phase and rule:"),
        "stderr: {stderr}"
    );
    for row in [
        "analysis: call graph",
        "shard-escape",
        "unchecked-guard",
        "total",
    ] {
        assert!(stderr.contains(row), "missing `{row}` row in: {stderr}");
    }
    // The breakdown goes to stderr only; stdout stays byte-comparable.
    let plain = run(&lint_dir, &["tests/fixtures/facade_bypass.rs"]);
    assert_eq!(out.stdout, plain.stdout);
}

/// The committed wall-clock key inventory must be exactly what the
/// analyzer regenerates from the current tree — trace_golden.rs reads
/// the committed artifact, so drift here would silently de-sync the
/// determinism test from the taint analysis.
#[test]
fn wall_clock_inventory_regen_is_noop() {
    let root = workspace_root();
    let committed = root.join("results/wall_clock_keys.txt");
    let fresh = std::env::temp_dir().join(format!(
        "atos-lint-inventory-test-{}",
        std::process::id()
    ));

    let out = run(
        &root,
        &[
            "--workspace",
            "--wall-clock-inventory",
            fresh.to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(0));
    let want = std::fs::read_to_string(&committed).expect("committed inventory");
    let got = std::fs::read_to_string(&fresh).expect("regenerated inventory");
    assert_eq!(
        want, got,
        "results/wall_clock_keys.txt is stale; regenerate with\n  \
         cargo run -q -p atos-lint -- --workspace --wall-clock-inventory \
         results/wall_clock_keys.txt"
    );

    let _ = std::fs::remove_file(&fresh);
}

#[test]
fn baseline_round_trip_tolerates_then_gates() {
    let lint_dir = workspace_root().join("crates/lint");
    let base = std::env::temp_dir().join(format!(
        "atos-lint-baseline-test-{}",
        std::process::id()
    ));
    let base_s = base.to_str().unwrap();
    let fixture = "tests/fixtures/panic_in_kernel.rs";

    // Baseline the fixture's findings, then --deny-new tolerates them...
    let out = run(
        &lint_dir,
        &[fixture, "--baseline", base_s, "--write-baseline"],
    );
    assert_eq!(out.status.code(), Some(0));
    let out = run(&lint_dir, &[fixture, "--baseline", base_s, "--deny-new"]);
    assert_eq!(out.status.code(), Some(0));

    // ...but a second bad file is new relative to the baseline.
    let out = run(
        &lint_dir,
        &[
            fixture,
            "tests/fixtures/facade_bypass.rs",
            "--baseline",
            base_s,
            "--deny-new",
        ],
    );
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("facade-bypass"));

    let _ = std::fs::remove_file(&base);
}
