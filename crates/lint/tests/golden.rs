//! Golden tests for the lint pass.
//!
//! Each file under `tests/fixtures/` is a deliberately-bad example for
//! exactly one rule; the `--json` rendering is asserted byte-for-byte so
//! any drift in rule coverage, line attribution, or report formatting
//! shows up as a diff against these strings. The fixtures are excluded
//! from workspace discovery (`tests/fixtures/` is skipped), so they never
//! pollute the production run.

use atos_lint::{config::Config, lints, report, Finding, Workspace};

fn fixture_dir() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures").to_string()
}

/// Lint one fixture in isolation under the fixture configuration.
fn lint_fixture(name: &str) -> Vec<Finding> {
    let src = std::fs::read_to_string(format!("{}/{name}", fixture_dir()))
        .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    let ws = Workspace::from_sources(vec![(format!("fixtures/{name}"), src)]);
    atos_lint::run(&ws, &Config::fixture())
}

#[test]
fn rule_set_is_stable() {
    assert_eq!(
        lints::RULES,
        [
            "facade-bypass",
            "relaxed-publish",
            "unreleased-write",
            "acquire-pairing",
            "hot-path-alloc",
            "panic-in-kernel",
            "sim-determinism",
            "missing-safety",
            "determinism-taint",
            "barrier-phase",
            "shard-escape",
            "unchecked-guard",
        ]
    );
}

#[test]
fn every_rule_has_a_fixture() {
    for rule in lints::RULES {
        let name = format!("{}.rs", rule.replace('-', "_"));
        let findings = lint_fixture(&name);
        assert!(
            findings.iter().any(|f| f.rule == *rule),
            "fixture {name} does not trigger `{rule}`: {findings:?}"
        );
    }
}

#[test]
fn facade_bypass_golden() {
    assert_eq!(
        report::json(&lint_fixture("facade_bypass.rs")),
        "{\"findings\":[{\"rule\":\"facade-bypass\",\"file\":\"fixtures/facade_bypass.rs\",\
         \"line\":4,\"message\":\"direct `std::sync::atomic` use; go through the \
         `atos_queue::sync` facade so `--cfg atos_check` can interpose the model \
         checker\"}],\"count\":1}"
    );
}

#[test]
fn relaxed_publish_golden() {
    assert_eq!(
        report::json(&lint_fixture("relaxed_publish.rs")),
        "{\"findings\":[{\"rule\":\"relaxed-publish\",\"file\":\"fixtures/relaxed_publish.rs\",\
         \"line\":9,\"message\":\"relaxed atomic write to `end` in `push` while the cell \
         write at line 8 is unpublished; use Release (or stronger) so poppers \
         synchronize-with the slot contents\"}],\"count\":1}"
    );
}

#[test]
fn unreleased_write_golden() {
    assert_eq!(
        report::json(&lint_fixture("unreleased_write.rs")),
        "{\"findings\":[{\"rule\":\"unreleased-write\",\"file\":\"fixtures/unreleased_write.rs\",\
         \"line\":6,\"message\":\"cell write to `slots` in `stash` is never published by a \
         release-ordered atomic write in this function\"}],\"count\":1}"
    );
}

#[test]
fn acquire_pairing_golden() {
    assert_eq!(
        report::json(&lint_fixture("acquire_pairing.rs")),
        "{\"findings\":[{\"rule\":\"acquire-pairing\",\"file\":\"fixtures/acquire_pairing.rs\",\
         \"line\":14,\"message\":\"cell read in `pop` after relaxed load of publish field \
         `end` (line 12) with no acquire in between; the read can observe pre-publication \
         slot state\"}],\"count\":1}"
    );
}

#[test]
fn hot_path_alloc_golden() {
    assert_eq!(
        report::json(&lint_fixture("hot_path_alloc.rs")),
        "{\"findings\":[\
         {\"rule\":\"hot-path-alloc\",\"file\":\"fixtures/hot_path_alloc.rs\",\"line\":6,\
         \"message\":\"allocating `vec!` in hot-path fn `attributed_hot`\"},\
         {\"rule\":\"hot-path-alloc\",\"file\":\"fixtures/hot_path_alloc.rs\",\"line\":8,\
         \"message\":\"hot-path fn `attributed_hot` calls `refill` \
         (fixtures/hot_path_alloc.rs:15), which allocates (`with_capacity` at line 16)\"},\
         {\"rule\":\"hot-path-alloc\",\"file\":\"fixtures/hot_path_alloc.rs\",\"line\":12,\
         \"message\":\"allocating `format!` in hot-path fn `denylisted_hot`\"}],\"count\":3}"
    );
}

#[test]
fn panic_in_kernel_golden() {
    assert_eq!(
        report::json(&lint_fixture("panic_in_kernel.rs")),
        "{\"findings\":[\
         {\"rule\":\"panic-in-kernel\",\"file\":\"fixtures/panic_in_kernel.rs\",\"line\":7,\
         \"message\":\"`assert!` in protocol fn `push_group` can abort mid-protocol\"},\
         {\"rule\":\"panic-in-kernel\",\"file\":\"fixtures/panic_in_kernel.rs\",\"line\":9,\
         \"message\":\"panicking index `slots[..]` in protocol fn `push_group`; use a \
         bounds-proven unchecked accessor\"},\
         {\"rule\":\"panic-in-kernel\",\"file\":\"fixtures/panic_in_kernel.rs\",\"line\":15,\
         \"message\":\"`unwrap()` in protocol fn `pop_group` can abort mid-protocol; handle \
         the None/Err arm or use an unchecked accessor with a SAFETY argument\"},\
         {\"rule\":\"panic-in-kernel\",\"file\":\"fixtures/panic_in_kernel.rs\",\"line\":16,\
         \"message\":\"`expect()` in protocol fn `pop_group` can abort mid-protocol; handle \
         the None/Err arm or use an unchecked accessor with a SAFETY argument\"}],\
         \"count\":4}"
    );
}

#[test]
fn sim_determinism_golden() {
    let msg = "in deterministic-simulation code; virtual time and order-stable \
               containers (BTreeMap/Vec) only";
    let findings = lint_fixture("sim_determinism.rs");
    let got: Vec<(u32, String)> = findings
        .iter()
        .map(|f| {
            assert_eq!(f.rule, "sim-determinism");
            assert!(f.message.ends_with(msg), "{}", f.message);
            let ident = f
                .message
                .trim_start_matches('`')
                .split('`')
                .next()
                .unwrap()
                .to_string();
            (f.line, ident)
        })
        .collect();
    // One finding per (line, identifier): use-position and body-position
    // hits are both reported, `sleep` only as a call.
    assert_eq!(
        got,
        [
            (4, "HashMap".to_string()),
            (5, "Instant".to_string()),
            (7, "HashMap".to_string()),
            (8, "Instant".to_string()),
            (9, "sleep".to_string()),
        ]
    );
}

#[test]
fn missing_safety_golden() {
    assert_eq!(
        report::json(&lint_fixture("missing_safety.rs")),
        "{\"findings\":[{\"rule\":\"missing-safety\",\"file\":\"fixtures/missing_safety.rs\",\
         \"line\":5,\"message\":\"`unsafe` without a `SAFETY:` comment on the same line or \
         within the 8 preceding lines\"}],\"count\":1}"
    );
}

#[test]
fn determinism_taint_golden() {
    assert_eq!(
        report::json(&lint_fixture("determinism_taint.rs")),
        "{\"findings\":[\
         {\"rule\":\"determinism-taint\",\"file\":\"fixtures/determinism_taint.rs\",\
         \"line\":21,\"message\":\"wall-clock-derived value (`wait_ns`) flows into \
         trace event `.span(..)`; traces are golden-compared and must carry virtual \
         time only\"},\
         {\"rule\":\"determinism-taint\",\"file\":\"fixtures/determinism_taint.rs\",\
         \"line\":26,\"message\":\"wall-clock-derived value (`sample`) flows into \
         trace event `.counter(..)`; traces are golden-compared and must carry \
         virtual time only\"}],\"count\":2}"
    );
}

#[test]
fn barrier_phase_golden() {
    assert_eq!(
        report::json(&lint_fixture("barrier_phase.rs")),
        "{\"findings\":[\
         {\"rule\":\"barrier-phase\",\"file\":\"fixtures/barrier_phase.rs\",\"line\":22,\
         \"message\":\"publish after the first barrier wait: the row is invisible to \
         this window's drains (in window loop `window_loop`)\"},\
         {\"rule\":\"barrier-phase\",\"file\":\"fixtures/barrier_phase.rs\",\"line\":29,\
         \"message\":\"window loop `window_loop_skips_drain` misses: drain (expected \
         publish -> barrier.wait -> drain -> barrier.wait -> run_window)\"}],\
         \"count\":2}"
    );
}

#[test]
fn shard_escape_golden() {
    assert_eq!(
        report::json(&lint_fixture("shard_escape.rs")),
        "{\"findings\":[\
         {\"rule\":\"shard-escape\",\"file\":\"fixtures/shard_escape.rs\",\"line\":51,\
         \"message\":\"`process` writes owner-indexed `depth[v]` with no dominating \
         `partition.owner(v) == pe` guard or `assert_owner!` witness; only the owning \
         PE may mutate authoritative state — send the update to `owner` instead\"},\
         {\"rule\":\"shard-escape\",\"file\":\"fixtures/shard_escape.rs\",\"line\":56,\
         \"message\":\"`on_receive` writes owner-indexed `labels[w]` with no dominating \
         `partition.owner(w) == pe` guard or `assert_owner!` witness; only the owning \
         PE may mutate authoritative state — send the update to `owner` instead\"},\
         {\"rule\":\"shard-escape\",\"file\":\"fixtures/shard_escape.rs\",\"line\":59,\
         \"message\":\"`on_receive` calls `store` (fixtures/shard_escape.rs:66), which \
         writes owner-indexed `depth[w]` at line 67 with no dominating owner witness \
         (via `on_receive` -> `store`)\"},\
         {\"rule\":\"shard-escape\",\"file\":\"fixtures/shard_escape.rs\",\"line\":60,\
         \"message\":\"`on_receive` writes shared-immutable field `graph`; \
         topology/config state is read-only in shard entry paths\"}],\"count\":4}"
    );
}

#[test]
fn unchecked_guard_golden() {
    assert_eq!(
        report::json(&lint_fixture("unchecked_guard.rs")),
        "{\"findings\":[\
         {\"rule\":\"unchecked-guard\",\"file\":\"fixtures/unchecked_guard.rs\",\
         \"line\":39,\"message\":\"`push_bad` calls unsafe `slot` with unproven index \
         `idx+i`; the `# Safety` contract requires it below capacity — dominate it \
         with a reservation bound check (`idx + n > capacity -> return Err`) or a \
         loop clamped by an Acquire-loaded publication index\"},\
         {\"rule\":\"unchecked-guard\",\"file\":\"fixtures/unchecked_guard.rs\",\
         \"line\":71,\"message\":\"`drain_bad` passes unproven index `i` to `write_at` \
         (fixtures/unchecked_guard.rs:48), which forwards it to unsafe `slot` \
         (via `drain_bad` -> `write_at` -> `slot`)\"}],\"count\":2}"
    );
}

/// `use helpers::grow as quietly_grow;` must still resolve the call edge
/// to the allocating definition (alias regression for the call graph).
#[test]
fn alias_resolution_golden() {
    assert_eq!(
        report::json(&lint_fixture("alias_resolution.rs")),
        "{\"findings\":[\
         {\"rule\":\"hot-path-alloc\",\"file\":\"fixtures/alias_resolution.rs\",\"line\":17,\
         \"message\":\"hot-path fn `hot_entry` calls `grow` \
         (fixtures/alias_resolution.rs:7), which allocates (`vec!` at line 8)\"}],\
         \"count\":1}"
    );
}

// ------------------------------------------------------------ suppression

#[test]
fn comment_suppression_silences_a_finding() {
    let src = "// atos-lint: allow(facade_bypass) — test-only counter, not part of\n\
               // the checked protocol surface.\n\
               use std::sync::atomic::AtomicU64;\n";
    let ws = Workspace::from_sources(vec![("x.rs".into(), src.into())]);
    assert!(atos_lint::run(&ws, &Config::fixture()).is_empty());
}

#[test]
fn attribute_suppression_silences_a_finding() {
    let src = "#[atos_hot]\n\
               #[allow_atos_lint(hot_path_alloc)]\n\
               fn warm_up() { let _ = vec![0u8; 64]; }\n";
    let ws = Workspace::from_sources(vec![("x.rs".into(), src.into())]);
    assert!(atos_lint::run(&ws, &Config::fixture()).is_empty());
}

#[test]
fn skip_file_marker_silences_a_file() {
    let src = "// lint:skip-file — deliberately-broken twin for mutation tests\n\
               use std::sync::atomic::AtomicU64;\n\
               fn f(q: &Q) { q.slots[0].with_mut(|p| ()); }\n";
    let ws = Workspace::from_sources(vec![("mutations.rs".into(), src.into())]);
    assert!(atos_lint::run(&ws, &Config::fixture()).is_empty());
}

// -------------------------------------------------- workspace + mutations

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn read_real(rel: &str) -> String {
    std::fs::read_to_string(workspace_root().join(rel))
        .unwrap_or_else(|e| panic!("reading {rel}: {e}"))
}

/// The committed tree has zero findings — the baseline stays empty.
#[test]
fn workspace_is_clean() {
    let ws = Workspace::discover(&workspace_root()).unwrap();
    let findings = atos_lint::run(&ws, &Config::project());
    assert!(
        findings.is_empty(),
        "workspace should lint clean:\n{}",
        report::human(&findings)
    );
}

/// Seeded mutation: a raw atomic import in the queue crate must be caught.
#[test]
fn mutation_raw_atomic_import_is_caught() {
    let rel = "crates/queue/src/counter.rs";
    let clean = read_real(rel);
    let ws = Workspace::from_sources(vec![(rel.into(), clean.clone())]);
    assert!(
        atos_lint::run(&ws, &Config::project()).is_empty(),
        "unmutated counter.rs must lint clean"
    );

    let mutated = format!("use std::sync::atomic::AtomicUsize;\n{clean}");
    let ws = Workspace::from_sources(vec![(rel.into(), mutated)]);
    let findings = atos_lint::run(&ws, &Config::project());
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "facade-bypass" && f.line == 1),
        "mutation not caught: {findings:?}"
    );
}

/// Seeded mutation: an allocating `#[atos_hot]` fn in the runtime must be
/// caught.
#[test]
fn mutation_alloc_in_hot_fn_is_caught() {
    let rel = "crates/core/src/runtime.rs";
    let clean = read_real(rel);
    let mutated = format!(
        "{clean}\n#[atos_hot]\nfn injected_hot() {{ let _ = format!(\"boom\"); }}\n"
    );
    let ws = Workspace::from_sources(vec![(rel.into(), mutated)]);
    let findings = atos_lint::run(&ws, &Config::project());
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "hot-path-alloc" && f.message.contains("injected_hot")),
        "mutation not caught: {findings:?}"
    );
}

/// Seeded mutation: an allocation three calls deep under an `#[atos_hot]`
/// entry point must be caught *transitively*, with the provenance chain
/// in the message.
#[test]
fn mutation_transitive_alloc_chain_is_caught() {
    let rel = "crates/core/src/runtime.rs";
    let clean = read_real(rel);
    let mutated = format!(
        "{clean}\n\
         #[atos_hot]\n\
         fn injected_hot() {{ inj_mid(); }}\n\
         fn inj_mid() {{ inj_leaf(); }}\n\
         fn inj_leaf() {{ let _ = format!(\"boom\"); }}\n"
    );
    let ws = Workspace::from_sources(vec![(rel.into(), mutated)]);
    let findings = atos_lint::run(&ws, &Config::project());
    assert!(
        findings.iter().any(|f| {
            f.rule == "hot-path-alloc"
                && f.message.contains("injected_hot")
                && f.message.contains("allocates transitively via")
                && f.message.contains("`inj_leaf`")
        }),
        "transitive mutation not caught: {findings:?}"
    );
}

/// Seeded mutation: deleting `shard_worker`'s publish call must trip the
/// `barrier-phase` protocol check on the real runtime source.
#[test]
fn mutation_missing_publish_is_caught() {
    let rel = "crates/core/src/runtime.rs";
    let clean = read_real(rel);
    let publish_line = "board.publish(s, dst_shard, row);";
    assert!(
        clean.contains(publish_line),
        "runtime.rs publish call moved; update this mutation"
    );
    let mutated = clean.replacen(publish_line, "", 1);
    let ws = Workspace::from_sources(vec![(rel.into(), mutated)]);
    let findings = atos_lint::run(&ws, &Config::project());
    assert!(
        findings.iter().any(|f| {
            f.rule == "barrier-phase"
                && f.message.contains("`shard_worker`")
                && f.message.contains("publish")
        }),
        "publish-removal mutation not caught: {findings:?}"
    );
}

/// Seeded mutation: redirecting the non-owner mirror write in BFS
/// `process` to the authoritative `depth` array (the silent-divergence
/// bug the owner-computes discipline exists to prevent) must be caught
/// by `shard-escape` — the write sits in the `else` branch, outside the
/// `owner == pe` guarded block.
#[test]
fn mutation_non_owner_depth_write_is_caught() {
    let rel = "crates/apps/src/bfs.rs";
    let clean = read_real(rel);
    let mirror_write = "self.mirror[pe][w as usize] = nd;";
    assert!(
        clean.contains(mirror_write),
        "bfs.rs mirror write moved; update this mutation"
    );
    let mutated = clean.replacen(mirror_write, "self.depth[w as usize] = nd;", 1);
    let ws = Workspace::from_sources(vec![(rel.into(), mutated)]);
    let findings = atos_lint::run(&ws, &Config::project());
    assert!(
        findings.iter().any(|f| {
            f.rule == "shard-escape"
                && f.message.contains("`process`")
                && f.message.contains("`depth[w]`")
        }),
        "non-owner write mutation not caught: {findings:?}"
    );
}

/// Seeded mutation: dropping the capacity check before the unchecked
/// `slot()` writes in `CounterQueue::push_group` must be caught by
/// `unchecked-guard`, naming the now-unproven index.
#[test]
fn mutation_dropped_capacity_check_is_caught() {
    let rel = "crates/queue/src/counter.rs";
    let clean = read_real(rel);
    let guard = "if idx + n > self.slots.len() as u64 {";
    assert!(
        clean.contains(guard),
        "counter.rs capacity check moved; update this mutation"
    );
    // Neutralize the guard rather than deleting the block: `u64::MAX` is
    // never exceeded, so the reservation is no longer bounds-checked.
    let mutated = clean.replacen(guard, "if idx + n > u64::MAX {", 1);
    let ws = Workspace::from_sources(vec![(rel.into(), mutated)]);
    let findings = atos_lint::run(&ws, &Config::project());
    assert!(
        findings.iter().any(|f| {
            f.rule == "unchecked-guard"
                && f.message.contains("`push_group`")
                && f.message.contains("`idx+i`")
        }),
        "dropped-guard mutation not caught: {findings:?}"
    );
}

/// Seeded mutation: a wall-clock read flowing into a trace event in the
/// runtime must be caught by `determinism-taint`.
#[test]
fn mutation_wall_clock_in_trace_is_caught() {
    let rel = "crates/core/src/runtime.rs";
    let clean = read_real(rel);
    let mutated = format!(
        "{clean}\n\
         fn injected_trace(tracer: &atos_trace::Tracer) {{\n\
             let t0 = std::time::Instant::now();\n\
             let wall = t0.elapsed().as_nanos() as u64;\n\
             tracer.counter(atos_trace::Track::pe(0), 0, \"wall\", wall);\n\
         }}\n"
    );
    let ws = Workspace::from_sources(vec![(rel.into(), mutated)]);
    let findings = atos_lint::run(&ws, &Config::project());
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "determinism-taint" && f.message.contains("`wall`")),
        "trace-taint mutation not caught: {findings:?}"
    );
}
