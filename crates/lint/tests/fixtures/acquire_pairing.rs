//! Lint fixture: `acquire-pairing` — `end` is a publish field (it receives
//! a release-ordered store in `publish`), but `pop` relaxed-loads it and
//! then reads the slot without an intervening acquire.

pub fn publish(q: &Queue, item: u64) {
    // SAFETY: fixture; the slot is the publisher's until `end` is bumped.
    q.slots[0].with_mut(|p| unsafe { (*p).write(item) });
    q.end.store(1, Ordering::Release);
}

pub fn pop(q: &Queue) -> u64 {
    let e = q.end.load(Ordering::Relaxed); // should be Acquire
    // SAFETY: fixture; `e > 0` implies slot `e - 1` is initialized.
    q.slots[(e - 1) as usize].with(|p| unsafe { (*p).read() })
}
