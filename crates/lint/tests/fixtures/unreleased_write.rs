//! Lint fixture: `unreleased-write` — a cell write with no release-ordered
//! publication edge anywhere in the function.

pub fn stash(q: &Queue, item: u64) {
    // SAFETY: fixture; slot 0 is reserved for the stash.
    q.slots[0].with_mut(|p| unsafe { (*p).write(item) });
}
