//! Lint fixture: `sim-determinism` — wall-clock time, thread sleeps, and
//! default-hasher containers are banned in the simulator.

use std::collections::HashMap;
use std::time::Instant;

pub fn sample(latencies: &mut HashMap<u64, u64>, pe: u64) {
    let t0 = Instant::now();
    std::thread::sleep(std::time::Duration::from_nanos(pe));
    latencies.insert(pe, t0.elapsed().as_nanos() as u64);
}
