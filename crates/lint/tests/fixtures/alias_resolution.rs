//! Regression fixture for `use`-alias call resolution: the allocating
//! helper is imported under a different name, so a purely name-keyed
//! resolver would miss the edge and the transitive hot-path-alloc
//! finding with it.

mod helpers {
    pub fn grow(v: &mut Vec<u64>) {
        let mut extra = vec![0u64; 16];
        v.append(&mut extra);
    }
}

use helpers::grow as quietly_grow;

#[atos_hot]
fn hot_entry(v: &mut Vec<u64>) {
    quietly_grow(v);
}
