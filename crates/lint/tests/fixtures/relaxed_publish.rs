//! Lint fixture: `relaxed-publish` — the slot write is still pending when
//! the `end` counter is stored with `Relaxed`, so a popper that
//! acquire-loads `end` does not synchronize-with the slot contents.

pub fn push(q: &Queue, item: u64) {
    let idx = q.end_alloc.fetch_add(1, Ordering::Relaxed);
    // SAFETY: fixture; the reservation makes the slot exclusively ours.
    q.slots[idx as usize].with_mut(|p| unsafe { (*p).write(item) });
    q.end.store(idx + 1, Ordering::Relaxed); // should be Release
}
