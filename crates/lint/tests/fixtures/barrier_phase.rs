//! Bad fixture for `barrier-phase`: window loops that break the
//! publish -> barrier.wait -> drain -> barrier.wait -> run_window order.

struct Board;
impl Board {
    fn publish(&self, _row: u64) {}
    fn drain(&self) -> u64 {
        0
    }
}

struct Barrier;
impl Barrier {
    fn wait(&self) {}
}

fn run_window(_horizon: u64) {}

/// Publish lands after the first wait: invisible to this window's drains.
fn window_loop(board: &Board, barrier: &Barrier) {
    barrier.wait();
    board.publish(1);
    let horizon = board.drain();
    barrier.wait();
    run_window(horizon);
}

/// No drain between the waits: the horizon never sees peer rows.
fn window_loop_skips_drain(board: &Board, barrier: &Barrier) {
    board.publish(1);
    barrier.wait();
    barrier.wait();
    run_window(0);
}

/// The correct phase order: no finding.
fn window_loop_ok(board: &Board, barrier: &Barrier) {
    board.publish(1);
    barrier.wait();
    let horizon = board.drain();
    barrier.wait();
    run_window(horizon);
}
