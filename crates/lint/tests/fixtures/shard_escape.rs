//! Bad fixture for `shard-escape`: entry-point writes to authoritative
//! vertex state that escape the owner-computes discipline. `depth` is
//! declared owner-indexed by the attribute; `labels` carries no attribute
//! entry and is classified by the join inference (adopted under the
//! owner guard -> authoritative).

struct Part;
impl Part {
    fn owner(&self, _v: u32) -> usize {
        0
    }
}

struct BadApp {
    depth: Vec<u32>,
    labels: Vec<u32>,
    mirror: Vec<Vec<u32>>,
    graph: Vec<u32>,
    partition: Part,
}

impl BadApp {
    #[atos_shard(owner(depth), private(mirror), shared(graph))]
    fn fork(&self, _lo: usize, _hi: usize) -> Self {
        BadApp {
            depth: self.depth.clone(),
            labels: self.labels.clone(),
            mirror: self.mirror.clone(),
            graph: self.graph.clone(),
            partition: Part,
        }
    }

    fn join(&mut self, shard: BadApp, lo: usize, hi: usize) {
        for (v, l) in shard.labels.into_iter().enumerate() {
            let owner = self.partition.owner(v as u32);
            if (lo..hi).contains(&owner) {
                self.labels[v] = l;
            }
        }
        for pe in lo..hi {
            self.mirror[pe] = Vec::new();
        }
    }

    fn process(&mut self, pe: usize, v: u32) {
        let owner = self.partition.owner(v);
        if owner == pe {
            self.depth[v as usize] = 1;
        } else {
            self.depth[v as usize] = 2;
        }
    }

    fn on_receive(&mut self, pe: usize, w: u32) {
        self.labels[w as usize] = 9;
        assert_owner!(self.partition, w, pe);
        self.depth[w as usize] = 3;
        store(self, w);
        self.graph[0] = 1;
    }
}

/// Outlined helper: its unwitnessed write is attributed to the entry
/// point that reaches it.
fn store(app: &mut BadApp, w: u32) {
    app.depth[w as usize] = 7;
}
