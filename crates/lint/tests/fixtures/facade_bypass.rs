//! Lint fixture: `facade-bypass` — imports raw std atomics instead of
//! going through `atos_queue::sync`.

use std::sync::atomic::{AtomicU64, Ordering};

pub static EVENTS: AtomicU64 = AtomicU64::new(0);

pub fn record() -> u64 {
    EVENTS.fetch_add(1, Ordering::Relaxed)
}
