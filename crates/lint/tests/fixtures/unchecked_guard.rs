//! Bad fixture for `unchecked-guard`: calls to the `# Safety`-contract
//! slot accessor whose indices are not dominated by a reservation bound
//! proof — the dropped-capacity-check shape and an unclamped loop
//! through a forwarding helper.

struct BadQueue {
    slots: Vec<u64>,
    end: AtomicU64,
    start: AtomicU64,
}

impl BadQueue {
    /// The slot at `idx`, without the bounds check.
    ///
    /// # Safety
    ///
    /// `idx < self.slots.len() as u64`.
    unsafe fn slot(&self, idx: u64) -> u64 {
        self.slots[idx as usize]
    }

    /// Guarded push: the reservation bound check dominates the call.
    fn push_ok(&self, items: &[u64], idx: u64) -> Result<(), ()> {
        let n = items.len() as u64;
        if idx + n > self.slots.len() as u64 {
            return Err(());
        }
        for (i, item) in items.iter().enumerate() {
            // SAFETY: `[idx, idx+n)` is below capacity (checked above).
            let _ = unsafe { self.slot(idx + i as u64) } + *item;
        }
        Ok(())
    }

    /// The dropped-guard shape: no capacity check before the loop.
    fn push_bad(&self, items: &[u64], idx: u64) {
        for (i, _item) in items.iter().enumerate() {
            // SAFETY: (wrong) the reservation was never bounds-checked.
            let _ = unsafe { self.slot(idx + i as u64) };
        }
    }

    /// Forwarding helper: the contract moves to the caller.
    ///
    /// # Safety
    ///
    /// `idx < self.slots.len() as u64`.
    unsafe fn write_at(&self, idx: u64) -> u64 {
        // SAFETY: forwarded contract — the caller proves the bound.
        unsafe { self.slot(idx) }
    }

    /// Publication-bounded drain through the helper: clean.
    fn drain_ok(&self, max: u64) -> u64 {
        let e = self.end.load(Ordering::Acquire);
        let s = self.start.load(Ordering::Relaxed);
        let take = (max).min(e - s);
        let mut acc = 0;
        for i in 0..take {
            // SAFETY: `s + i < e <= capacity` (Acquire publication bound).
            acc += unsafe { self.write_at(s + i) };
        }
        acc
    }

    /// Unclamped loop bound into the helper: caught through the chain.
    fn drain_bad(&self, hi: u64) -> u64 {
        let mut acc = 0;
        for i in 0..hi {
            // SAFETY: (wrong) `hi` is not derived from a reservation.
            acc += unsafe { self.write_at(i) };
        }
        acc
    }
}
