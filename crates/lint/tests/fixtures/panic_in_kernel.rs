//! Lint fixture: `panic-in-kernel` — panicking constructs inside queue
//! protocol functions (`push_group`/`pop_group` per the fixture config),
//! including bare slice indexing.

pub fn push_group(q: &Queue, items: &[u64]) -> u64 {
    let idx = q.end_alloc.fetch_add(items.len() as u64, Ordering::Relaxed);
    assert!(idx + (items.len() as u64) <= q.capacity);
    for (i, item) in items.iter().enumerate() {
        q.slots[(idx + i as u64) as usize] = *item;
    }
    idx
}

pub fn pop_group(q: &Queue, out: &mut Vec<u64>) {
    let h = q.head.checked_sub(1).unwrap();
    out.push(q.take(h).expect("slot ready"));
}
