//! Bad fixture for `determinism-taint`: wall-clock-derived values flow
//! into trace events, both directly and through a helper's return value.

use std::time::Instant;

struct Tracer;
impl Tracer {
    fn span(&self, _track: u32, _start: u64, _dur: u64) {}
    fn counter(&self, _track: u32, _at: u64, _v: u64) {}
}

/// Return value observes the wall clock (ret-taint propagation).
fn wall_sample() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}

fn bad_span(tracer: &Tracer) {
    let t0 = Instant::now();
    let wait_ns = t0.elapsed().as_nanos() as u64;
    tracer.span(0, 0, wait_ns);
}

fn bad_instant_via_helper(tracer: &Tracer) {
    let sample = wall_sample();
    tracer.counter(0, 0, sample);
}

/// Virtual time only: no finding.
fn ok_virtual(tracer: &Tracer, now: u64) {
    tracer.span(0, now, 1);
}
