//! Lint fixture: `hot-path-alloc` — allocation in an `#[atos_hot]` fn, in
//! a config-denylisted fn (`denylisted_hot`), and one call level deep.

#[atos_hot]
pub fn attributed_hot(out: &mut Vec<u64>) {
    let staged = vec![1, 2, 3];
    out.extend_from_slice(&staged);
    refill(out);
}

pub fn denylisted_hot(n: usize) -> String {
    format!("task {n}")
}

fn refill(out: &mut Vec<u64>) {
    let mut tmp = Vec::with_capacity(8);
    tmp.push(0);
    out.extend_from_slice(&tmp);
}
