//! Lint fixture: `missing-safety` — every `unsafe` block needs a nearby
//! safety comment; `first` lacks one, `last` has one and is clean.

pub fn first(xs: &[u64]) -> u64 {
    unsafe { *xs.get_unchecked(0) }
}

pub fn last(xs: &[u64]) -> u64 {
    // SAFETY: fixture stand-in; a real caller proves `!xs.is_empty()`.
    unsafe { *xs.get_unchecked(xs.len() - 1) }
}
