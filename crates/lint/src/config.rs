//! Project configuration for the lint pass.
//!
//! The configuration is code, not a config file: the invariants it encodes
//! (which files may touch raw atomics, which functions are queue-protocol
//! kernel code, which crate must stay deterministic) are architectural
//! facts of this workspace, and changing them should be a reviewed source
//! change next to the policy documentation in DESIGN.md §7 — not an edit
//! to an untracked dotfile.

/// A panic-sensitivity scope: one source file plus the protocol functions
/// inside it that must not contain panicking constructs.
#[derive(Debug, Clone)]
pub struct KernelScope {
    /// Path suffix identifying the file (always `/`-separated).
    pub file_suffix: &'static str,
    /// Function names inside that file covered by `panic-in-kernel`.
    pub fns: &'static [&'static str],
    /// Whether panicking slice indexing (`ident[i]`) is also forbidden in
    /// those functions. Enabled only for the lock-free queue protocol
    /// files, where a bounds panic mid-protocol would strand a published
    /// reservation; the simulator runtime indexes its own dense PE arrays
    /// pervasively and is covered by the `unwrap`/`expect`/`panic!` rules
    /// only.
    pub forbid_index: bool,
}

/// A barrier-protocol scope: one source file plus the window-loop
/// functions inside it whose phase structure (`publish` → `barrier.wait`
/// → `drain` → `barrier.wait` → `run_window`) the `barrier-phase` rule
/// checks statically.
#[derive(Debug, Clone)]
pub struct BarrierScope {
    /// Path suffix identifying the file (always `/`-separated).
    pub file_suffix: &'static str,
    /// Function names inside that file containing a window loop.
    pub fns: &'static [&'static str],
}

/// An owner-computes scope: one source file holding a `ShardableApp`
/// impl whose entry points the `shard-escape` rule flow-checks. Field
/// classes (owner-indexed authoritative / per-sender private /
/// shared-immutable) come from the `#[atos_shard(..)]` attribute on the
/// impl's `fork`, backstopped by inference from the `fork`/`join` bodies.
#[derive(Debug, Clone)]
pub struct ShardScope {
    /// Path suffix identifying the file (always `/`-separated).
    pub file_suffix: &'static str,
    /// The impl's `Self` type (`BfsApp`, …).
    pub ty: &'static str,
    /// Entry points whose writes (direct and transitive) must respect the
    /// owner-computes discipline.
    pub entry_fns: &'static [&'static str],
}

/// An unchecked-accessor scope: one source file whose `# Safety: idx <
/// cap` accessors the `unchecked-guard` rule covers. Every call must
/// prove its index against a reservation bound check. `bounded_fields`
/// names the atomic fields whose acquire-loaded values are known
/// capacity-bounded (they only ever advance over capacity-checked
/// reservations), seeding the in-range-loop derivation.
#[derive(Debug, Clone)]
pub struct UncheckedScope {
    /// Path suffix identifying the file (always `/`-separated).
    pub file_suffix: &'static str,
    /// Unsafe accessor fns with an `idx < capacity` `# Safety` contract.
    pub accessors: &'static [&'static str],
    /// Atomic fields whose published values are capacity-bounded.
    pub bounded_fields: &'static [&'static str],
}

/// A function treated as `#[atos_hot]` without carrying the attribute
/// (used for crates that must stay dependency-free, like `atos-queue`,
/// which cannot depend on the proc-macro crate).
#[derive(Debug, Clone)]
pub struct HotDenyEntry {
    /// Path suffix identifying the file.
    pub file_suffix: &'static str,
    /// Function names in that file on the hot path.
    pub fns: &'static [&'static str],
}

/// Full lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path fragments of files allowed to import `std::sync::atomic` /
    /// `std::cell::UnsafeCell` directly (the facade itself, the model
    /// checker that shadows it, and the vendored dependency shims).
    pub facade_allowed: &'static [&'static str],
    /// Path fragments of files excluded from the ordering-dataflow rules
    /// (`relaxed-publish`, `unreleased-write`, `acquire-pairing`). The
    /// model-checker crate deliberately constructs broken protocols as
    /// negative self-tests.
    pub ordering_exempt: &'static [&'static str],
    /// Extra hot-path functions beyond `#[atos_hot]` annotations.
    pub hot_denylist: &'static [HotDenyEntry],
    /// Panic-sensitivity scopes.
    pub kernel_scopes: &'static [KernelScope],
    /// Path fragments of files covered by `sim-determinism`.
    pub sim_paths: &'static [&'static str],
    /// Identifiers forbidden in deterministic-simulation code.
    pub sim_forbidden: &'static [&'static str],
    /// Wall-clock taint sources written as paths (`Type::assoc`); matched
    /// against the trailing two path segments of a call, so both
    /// `Instant::now()` and `std::time::Instant::now()` hit.
    pub taint_path_sources: &'static [&'static str],
    /// Wall-clock taint sources written as bare calls or methods:
    /// functions whose return value reads a real clock.
    pub taint_method_sources: &'static [&'static str],
    /// Host-nondeterminism taint sources (not clocks): thread counts,
    /// contention probes. Inventoried at metric sinks but not findings at
    /// trace sinks (see the rationale in [`crate::taint`]).
    pub taint_nondet_sources: &'static [&'static str],
    /// Window-barrier protocol scopes for the `barrier-phase` rule.
    pub barrier_scopes: &'static [BarrierScope],
    /// Owner-computes scopes for the `shard-escape` rule.
    pub shard_scopes: &'static [ShardScope],
    /// Unchecked-accessor scopes for the `unchecked-guard` rule.
    pub unchecked_scopes: &'static [UncheckedScope],
    /// Path fragments of files *opaque* to the determinism-taint pass.
    /// Two categories: code that is not part of the shipped runtime
    /// (integration tests, benches, the linter itself), and generic
    /// value-agnostic plumbing (the atomics facade / model-checker shims)
    /// where many unrelated call sites resolve to one shared definition —
    /// propagating taint through those conflates every atomic in the
    /// workspace into one abstract cell and drowns the analysis.
    pub taint_exclude: &'static [&'static str],
}

impl Config {
    /// The workspace's production configuration.
    pub fn project() -> Config {
        Config {
            facade_allowed: &[
                // The facade itself.
                "crates/queue/src/sync.rs",
                // The model checker: shadows the facade's types and needs
                // raw atomics for its own scheduler bookkeeping.
                "crates/check/",
                // Vendored dependency shims (outside the runtime proper).
                "crates/rand-shim/",
                "crates/proptest-shim/",
                "crates/criterion-shim/",
            ],
            ordering_exempt: &[
                // atos-check models *broken* protocols on purpose
                // (negative self-tests for the race detector).
                "crates/check/",
                // ExchangeBoard's cell writes are published by the
                // SpinBarrier's AcqRel generation flip *between* the
                // publish and drain phases — a cross-function protocol
                // the intra-function dataflow rule cannot see. The
                // protocol itself is model-checked by atos-check's
                // exchange model (and its seeded-mutation twin proves
                // the checker would catch a relaxed barrier).
                "crates/core/src/sharded.rs",
            ],
            hot_denylist: &[
                HotDenyEntry {
                    file_suffix: "crates/queue/src/counter.rs",
                    fns: &["push_group", "pop_group", "drain_claim", "push"],
                },
                HotDenyEntry {
                    file_suffix: "crates/queue/src/cas.rs",
                    fns: &["push_group", "pop_group", "push"],
                },
                HotDenyEntry {
                    file_suffix: "crates/queue/src/broker.rs",
                    fns: &["push", "pop"],
                },
                HotDenyEntry {
                    // The profiling layer's record path: called once per
                    // histogram sample / per window on every shard, and
                    // pinned allocation-free by `alloc_count.rs`.
                    // `atos-trace` is a leaf crate, so it cannot carry the
                    // `#[atos_hot]` proc-macro attribute.
                    file_suffix: "crates/trace/src/hist.rs",
                    fns: &["record", "bucket_index"],
                },
                HotDenyEntry {
                    // Flight-recorder ring push: every window of every
                    // shard, steady-state alloc-free by construction.
                    file_suffix: "crates/core/src/profile.rs",
                    fns: &["push"],
                },
                HotDenyEntry {
                    // LoadBalancer decision callbacks: per-step trait-object
                    // dispatch from the scheduler; must stay alloc-free
                    // (pinned by the steal/chunk `alloc_count.rs`
                    // scenarios). Default trait methods cannot carry the
                    // `#[atos_hot]` attribute usefully, so denylist them.
                    file_suffix: "crates/core/src/loadbalance.rs",
                    fns: &["victim_score", "steal_count", "edge_budget", "steal_grain"],
                },
            ],
            kernel_scopes: &[
                KernelScope {
                    file_suffix: "crates/queue/src/counter.rs",
                    fns: &["push_group", "pop_group", "drain_claim", "push"],
                    forbid_index: true,
                },
                KernelScope {
                    file_suffix: "crates/queue/src/cas.rs",
                    fns: &["push_group", "pop_group", "push"],
                    forbid_index: true,
                },
                KernelScope {
                    file_suffix: "crates/queue/src/broker.rs",
                    fns: &["push", "pop"],
                    forbid_index: true,
                },
                KernelScope {
                    file_suffix: "crates/core/src/runtime.rs",
                    fns: &[
                        "step",
                        "absorb_local",
                        "dispatch_remote",
                        "flush_bundle",
                        "route",
                        "arrive",
                        "stage_arrival",
                        "run_window",
                        "merge_records",
                        // The work-stealing path: runs inside the scheduler
                        // step, so a panic mid-steal strands the victim's
                        // popped-but-unexecuted claim.
                        "pick_victim",
                        "steal_from",
                        "wake_idle_peers",
                    ],
                    forbid_index: false,
                },
                KernelScope {
                    // LoadBalancer decision callbacks: consulted on every
                    // scheduler step (victim scoring, steal sizing), inside
                    // the same no-panic envelope as the step itself.
                    file_suffix: "crates/core/src/loadbalance.rs",
                    fns: &["victim_score", "steal_count", "edge_budget", "steal_grain"],
                    forbid_index: false,
                },
                KernelScope {
                    // The timing wheel's schedule→pop protocol: every
                    // simulated event funnels through these. Failure paths
                    // are outlined (`empty_slot_popped`) or debug-asserted.
                    file_suffix: "crates/sim/src/engine.rs",
                    fns: &[
                        "schedule_at",
                        "pop",
                        "pop_before",
                        "place",
                        "arena_insert",
                        "advance",
                        "drain_l0_bucket",
                        "cascade_l1_bucket",
                        "cascade_l2_bucket",
                        "jump_to_far",
                    ],
                    forbid_index: false,
                },
                KernelScope {
                    // `run_host` itself is setup/teardown (its seed-phase
                    // asserts are documented API panics before any thread
                    // exists); the protocol loop is the extracted `worker`.
                    file_suffix: "crates/core/src/host.rs",
                    fns: &["worker"],
                    forbid_index: false,
                },
                KernelScope {
                    // The conservative-PDES horizon computation: every
                    // execution window of every shard passes through it.
                    file_suffix: "crates/sim/src/sharded.rs",
                    fns: &["safe_horizon"],
                    forbid_index: false,
                },
            ],
            sim_paths: &["crates/sim/src/"],
            sim_forbidden: &[
                "Instant",
                "SystemTime",
                "HashMap",
                "HashSet",
                "RandomState",
                "thread_rng",
                "available_parallelism",
                "sleep",
            ],
            taint_path_sources: &[
                "Instant::now",
                "SystemTime::now",
                "std::time::Instant::now",
                "std::time::SystemTime::now",
                "time::Instant::now",
                "time::SystemTime::now",
            ],
            taint_method_sources: &[
                // Wall-clock interval reads.
                "elapsed",
            ],
            taint_nondet_sources: &[
                // Host thread-count query (facade wrapper included).
                "available_parallelism",
                "host_parallelism",
                // Barrier contention probe (spin/yield counts are
                // scheduling-dependent).
                "yield_waits",
                // Process-global queue contention counters (CAS retries,
                // host occupancy high-water marks).
                "global_snapshot",
            ],
            barrier_scopes: &[BarrierScope {
                file_suffix: "crates/core/src/runtime.rs",
                fns: &["shard_worker"],
            }],
            shard_scopes: &[
                ShardScope {
                    file_suffix: "crates/apps/src/bfs.rs",
                    ty: "BfsApp",
                    entry_fns: &["process", "on_receive", "on_idle"],
                },
                ShardScope {
                    file_suffix: "crates/apps/src/sssp.rs",
                    ty: "SsspApp",
                    entry_fns: &["process", "on_receive", "on_idle"],
                },
                ShardScope {
                    file_suffix: "crates/apps/src/cc.rs",
                    ty: "CcApp",
                    entry_fns: &["process", "on_receive", "on_idle"],
                },
                ShardScope {
                    file_suffix: "crates/apps/src/pagerank.rs",
                    ty: "PageRankApp",
                    entry_fns: &["process", "on_receive", "on_idle"],
                },
            ],
            unchecked_scopes: &[
                UncheckedScope {
                    file_suffix: "crates/queue/src/counter.rs",
                    accessors: &["slot"],
                    bounded_fields: &["end"],
                },
                UncheckedScope {
                    file_suffix: "crates/queue/src/cas.rs",
                    accessors: &["slot"],
                    bounded_fields: &["end"],
                },
                UncheckedScope {
                    // Broker's guards compare against `slots.len()`
                    // directly, so no bounded-field seeding is needed.
                    file_suffix: "crates/queue/src/broker.rs",
                    accessors: &["slot", "flag"],
                    bounded_fields: &[],
                },
            ],
            taint_exclude: &[
                "/tests/",
                "/benches/",
                "/examples/",
                "examples/",
                "crates/lint/",
                "crates/check/",
                "crates/xtask/",
                "/src/sync.rs",
            ],
        }
    }

    /// A minimal configuration for fixture tests: scopes keyed on the
    /// fixture file names so each rule can be exercised by a single
    /// self-contained bad file.
    pub fn fixture() -> Config {
        Config {
            facade_allowed: &[],
            ordering_exempt: &[],
            hot_denylist: &[HotDenyEntry {
                file_suffix: "hot_path_alloc.rs",
                fns: &["denylisted_hot"],
            }],
            kernel_scopes: &[KernelScope {
                file_suffix: "panic_in_kernel.rs",
                fns: &["push_group", "pop_group"],
                forbid_index: true,
            }],
            sim_paths: &["sim_determinism.rs"],
            sim_forbidden: Config::project().sim_forbidden,
            taint_path_sources: Config::project().taint_path_sources,
            taint_method_sources: Config::project().taint_method_sources,
            taint_nondet_sources: Config::project().taint_nondet_sources,
            barrier_scopes: &[BarrierScope {
                file_suffix: "barrier_phase.rs",
                fns: &[
                    "window_loop",
                    "window_loop_skips_drain",
                    "window_loop_ok",
                ],
            }],
            shard_scopes: &[ShardScope {
                file_suffix: "shard_escape.rs",
                ty: "BadApp",
                entry_fns: &["process", "on_receive", "on_idle"],
            }],
            unchecked_scopes: &[UncheckedScope {
                file_suffix: "unchecked_guard.rs",
                accessors: &["slot"],
                bounded_fields: &["end"],
            }],
            taint_exclude: &[],
        }
    }

    /// Is `path` allowed to bypass the atomics facade?
    pub fn is_facade_allowed(&self, path: &str) -> bool {
        self.facade_allowed.iter().any(|p| path.contains(p))
    }

    /// Is `path` exempt from the ordering-dataflow rules?
    pub fn is_ordering_exempt(&self, path: &str) -> bool {
        self.ordering_exempt.iter().any(|p| path.contains(p))
    }

    /// Is `path` inside the deterministic-simulation scope?
    pub fn is_sim_path(&self, path: &str) -> bool {
        self.sim_paths.iter().any(|p| path.contains(p))
    }

    /// The kernel scope covering `path`, if any.
    pub fn kernel_scope(&self, path: &str) -> Option<&KernelScope> {
        self.kernel_scopes
            .iter()
            .find(|s| path.ends_with(s.file_suffix))
    }

    /// Is `path` opaque to the determinism-taint pass?
    pub fn is_taint_excluded(&self, path: &str) -> bool {
        self.taint_exclude.iter().any(|p| path.contains(p))
    }

    /// The barrier-protocol scope covering `path`, if any.
    pub fn barrier_scope(&self, path: &str) -> Option<&BarrierScope> {
        self.barrier_scopes
            .iter()
            .find(|s| path.ends_with(s.file_suffix))
    }

    /// Hot-denylisted function names for `path`.
    pub fn hot_fns(&self, path: &str) -> &'static [&'static str] {
        self.hot_denylist
            .iter()
            .find(|e| path.ends_with(e.file_suffix))
            .map(|e| e.fns)
            .unwrap_or(&[])
    }

    /// The owner-computes scope covering `path`, if any.
    pub fn shard_scope(&self, path: &str) -> Option<&ShardScope> {
        self.shard_scopes
            .iter()
            .find(|s| path.ends_with(s.file_suffix))
    }

    /// The unchecked-accessor scope covering `path`, if any.
    pub fn unchecked_scope(&self, path: &str) -> Option<&UncheckedScope> {
        self.unchecked_scopes
            .iter()
            .find(|s| path.ends_with(s.file_suffix))
    }

    /// A stable digest of every policy knob, mixed into the result-cache
    /// key so an edited configuration invalidates cached findings instead
    /// of replaying them. All fields are `'static` literals with derived
    /// `Debug`, so the rendering — and therefore the digest — is a pure
    /// function of the configuration source.
    pub fn fingerprint(&self) -> u64 {
        crate::cache::fnv1a64(format!("{self:?}").as_bytes())
    }
}
