//! Workspace call graph: name/alias/method resolution and resolved call
//! edges, the substrate for the interprocedural passes in
//! [`crate::summaries`] and [`crate::taint`].
//!
//! Resolution is deliberately *conservative*: an ambiguous name (two
//! candidate definitions in the chosen scope) resolves to nothing, so the
//! effect-summary propagation never follows a wrong edge. The cost is
//! false negatives at trait calls with many impls — those are covered by
//! the dynamic checkers (`alloc_count`, atos-check), and the policy is
//! documented in DESIGN.md §7.
//!
//! What *does* resolve (the fixes this layer exists for):
//!
//! * `use`-aliased paths — `use atos_queue::stats as qs; qs::snapshot()`
//!   expands through [`crate::parse::ParsedFile::aliases`];
//! * same-crate inherent methods — `self.refill()` finds the unique
//!   `fn refill(&self, …)` in an `impl` block of the same crate;
//! * `Type::assoc(..)` associated calls via the impl-block `Self` type
//!   recorded by the parser;
//! * cross-crate paths — `atos_core::profile::ShardProfile::from_log`
//!   maps the `atos_x` lib ident to the `crates/x` directory.

use std::collections::BTreeMap;

use crate::model::{events_of, Event};
use crate::Workspace;

/// Which crate (by `crates/<name>/` path segment) a file belongs to.
pub fn crate_of(path: &str) -> &str {
    if let Some(i) = path.find("crates/") {
        let rest = &path[i + "crates/".len()..];
        rest.split('/').next().unwrap_or("")
    } else {
        ""
    }
}

/// A function identity: (file index, fn index) into the workspace.
pub type FnId = (usize, usize);

/// One resolved call edge out of a function.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The resolved callee.
    pub callee: FnId,
    /// Call-site line in the caller.
    pub line: u32,
    /// Callee name as written at the call site.
    pub name: String,
}

/// The resolved call graph plus the name indexes used to build it.
#[derive(Debug)]
pub struct CallGraph {
    /// fn name → definitions (non-test, with a body).
    by_name: BTreeMap<String, Vec<FnId>>,
    /// (`Self` type, fn name) → definitions inside impl blocks.
    by_method: BTreeMap<(String, String), Vec<FnId>>,
    /// Resolved outgoing edges per function, in call order.
    pub callees: BTreeMap<FnId, Vec<CallSite>>,
    /// Crate directory names present in the workspace (`crates/<dir>`).
    crate_dirs: Vec<String>,
}

impl CallGraph {
    /// Index every definition and resolve every call event.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_method: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut crate_dirs = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if file.skip {
                continue;
            }
            let krate = crate_of(&file.path);
            if !krate.is_empty() && !crate_dirs.contains(&krate.to_string()) {
                crate_dirs.push(krate.to_string());
            }
            for (gi, f) in file.parsed.fns.iter().enumerate() {
                if f.in_test_mod || f.body.is_empty() {
                    continue;
                }
                by_name.entry(f.name.clone()).or_default().push((fi, gi));
                if let Some(ty) = &f.self_ty {
                    by_method
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push((fi, gi));
                }
            }
        }
        let mut graph = CallGraph {
            by_name,
            by_method,
            callees: BTreeMap::new(),
            crate_dirs,
        };
        for (fi, file) in ws.files.iter().enumerate() {
            if file.skip {
                continue;
            }
            for (gi, f) in file.parsed.fns.iter().enumerate() {
                if f.in_test_mod || f.body.is_empty() {
                    continue;
                }
                let mut edges = Vec::new();
                for e in events_of(&file.parsed, f) {
                    if let Event::Call {
                        name,
                        path,
                        method,
                        line,
                        ..
                    } = &e
                    {
                        if let Some(callee) = graph.resolve(ws, fi, name, path, *method) {
                            if callee != (fi, gi) {
                                edges.push(CallSite {
                                    callee,
                                    line: *line,
                                    name: name.clone(),
                                });
                            }
                        }
                    }
                }
                graph.callees.insert((fi, gi), edges);
            }
        }
        graph
    }

    /// Resolved outgoing edges of `id` (empty slice if none).
    pub fn callees_of(&self, id: FnId) -> &[CallSite] {
        self.callees.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Resolve one call. `path` is the leading path text as written
    /// (`"mod_a::"`, `"Wheel::"`, `""`); `method` marks `.name(..)` calls.
    pub fn resolve(
        &self,
        ws: &Workspace,
        from_file: usize,
        name: &str,
        path: &str,
        method: bool,
    ) -> Option<FnId> {
        let mut name = name.to_string();
        let from_crate = crate_of(&ws.files[from_file].path);
        if method {
            // 1. unique same-file definition (free fn or method);
            // 2. unique same-crate inherent *method* (any Self type).
            if let Some(id) = self.unique_by_name(&name, |id| id.0 == from_file) {
                return Some(id);
            }
            return self.unique_method(ws, &name, |id, f| {
                f.has_self && crate_of(&ws.files[id.0].path) == from_crate
            });
        }
        // Free/associated call: expand the leading alias, then interpret
        // the path segments.
        let mut segs: Vec<String> = path
            .split("::")
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if let Some(first) = segs.first().cloned() {
            if let Some(full) = ws.files[from_file].parsed.aliases.get(&first) {
                let expanded: Vec<String> = full.split("::").map(str::to_string).collect();
                segs.splice(0..1, expanded);
            }
        } else if let Some(full) = ws.files[from_file].parsed.aliases.get(&name) {
            // Bare call through `use a::b::helper;` or a renamed
            // `use a::b::helper as h;` — the alias target's last segment
            // is the *definition* name; resolve under that.
            let parts: Vec<String> = full.split("::").map(str::to_string).collect();
            if let Some((last, init)) = parts.split_last() {
                name = last.clone();
                segs = init.to_vec();
            }
        }
        // Leading crate-ish segments pin the target crate.
        let mut target_crate = from_crate.to_string();
        while let Some(first) = segs.first().cloned() {
            match first.as_str() {
                "crate" | "self" | "super" => {
                    segs.remove(0);
                }
                "std" | "core" | "alloc" => return None, // std call
                _ => {
                    if let Some(dir) = self.crate_dir_of(&first) {
                        target_crate = dir;
                        segs.remove(0);
                    }
                    break;
                }
            }
        }
        // A `Type::assoc` tail resolves through the impl-block index.
        if let Some(ty) = segs
            .iter()
            .rev()
            .find(|s| s.chars().next().is_some_and(char::is_uppercase))
        {
            let in_crate = self.unique_method(ws, &name, |id, f| {
                f.self_ty.as_deref() == Some(ty.as_str())
                    && crate_of(&ws.files[id.0].path) == target_crate
            });
            if in_crate.is_some() {
                return in_crate;
            }
            // A unique impl of this type anywhere is still unambiguous.
            return self.unique_method(ws, &name, |_, f| {
                f.self_ty.as_deref() == Some(ty.as_str())
            });
        }
        // Plain fn path: same file, then target crate. Deliberately no
        // workspace-wide fallback: a crate-qualified path with no match
        // in its crate is behind a std re-export (`crate::sync::hint::…`)
        // and must NOT accidentally bind a same-named fn elsewhere.
        if let Some(id) = self.unique_by_name(&name, |id| id.0 == from_file) {
            return Some(id);
        }
        self.unique_by_name(&name, |id| crate_of(&ws.files[id.0].path) == target_crate)
    }

    /// Map an `atos_x` lib ident (or bare directory name) to a workspace
    /// crate directory, if it names one.
    fn crate_dir_of(&self, seg: &str) -> Option<String> {
        let candidates = [seg.strip_prefix("atos_").unwrap_or(seg)];
        for c in candidates {
            let dir = c.replace('_', "-");
            if self.crate_dirs.contains(&dir) {
                return Some(dir);
            }
            if self.crate_dirs.iter().any(|d| d == c) {
                return Some(c.to_string());
            }
        }
        None
    }

    fn unique_by_name(&self, name: &str, keep: impl Fn(FnId) -> bool) -> Option<FnId> {
        let cands: Vec<FnId> = self
            .by_name
            .get(name)?
            .iter()
            .copied()
            .filter(|id| keep(*id))
            .collect();
        match cands.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    fn unique_method(
        &self,
        ws: &Workspace,
        name: &str,
        keep: impl Fn(FnId, &crate::parse::FnItem) -> bool,
    ) -> Option<FnId> {
        let mut cands = Vec::new();
        for ((_ty, n), ids) in &self.by_method {
            if n != name {
                continue;
            }
            for id in ids {
                let f = &ws.files[id.0].parsed.fns[id.1];
                if keep(*id, f) {
                    cands.push(*id);
                }
            }
        }
        match cands.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }
}
