//! `unchecked-guard`: reservation-bound proofs for unsafe slot access.
//!
//! The queue protocols deliberately use unchecked slot accessors — a
//! bounds panic mid-protocol would strand a published reservation for
//! every other thread (`panic-in-kernel`), so protocol code *proves* its
//! indices against the reservation discipline instead. Each accessor
//! (`slot`, `flag`) carries a `# Safety: idx < capacity` contract; this
//! rule checks that every call site dominates its index with one of the
//! shapes the protocols actually use:
//!
//! * a **reservation guard**: `if idx + n > self.slots.len() { return
//!   Err(..) }` (or `idx >= cap → return`) before the call — the guard
//!   must compare against a capacity-like bound (`.len()`, `capacity`,
//!   or a publication-bounded variable) and diverge
//!   (`return`/`break`/`continue`);
//! * an **in-range loop derived from one**: `for i in 0..take` where
//!   `take` was clamped by a publication index (`end.load(Acquire)`,
//!   possibly through `.min(..)` / `.saturating_sub(base)` chains) and
//!   the index is `base + i` for the matching base, or
//!   `for (i, _) in items.iter().enumerate()` with `n = items.len()`
//!   paired against a checked `idx + n > cap` guard.
//!
//! Facts are tracked per function and flow through **derived
//! accessors**: a function that merely forwards a parameter to an
//! unsafe accessor inherits the contract (its callers are checked at
//! that argument instead), so helper-extracted protocol code still
//! verifies. Unprovable indices are reported with a chain naming every
//! forwarding hop down to the root unsafe accessor.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::config::{Config, UncheckedScope};
use crate::lints::Analysis;
use crate::model::{expr_text, first_ident_in, matching, split_top_commas};
use crate::parse::{FnItem, Tok, TokKind};
use crate::{Finding, Workspace};

/// How a `for` loop bounds its variable.
enum LoopKind {
    /// `for v in lo..BOUND` — `BOUND` as normalized expression text.
    Range(String),
    /// `for (v, _) in SRC.iter().enumerate()` — the iterated source.
    Enumerate(String),
}

struct ForLoop {
    var: String,
    kind: LoopKind,
    body: Range<usize>,
}

/// Index-domination facts for one function body. Positions are token
/// indices: a fact only dominates call sites after it.
#[derive(Default)]
struct Facts {
    /// `(expr, pos)`: `expr <= capacity` holds after token `pos`
    /// (a diverging `expr > cap`-style guard ended there).
    guarded: Vec<(String, usize)>,
    /// `(base, count, pos)`: `base + count <= capacity` holds after
    /// `pos` — from a guard or a `count = bounded - base` clamp.
    pairs: Vec<(String, String, usize)>,
    /// Variables clamped by a publication index (`end.load(Acquire)`,
    /// `.min(capacity-like)` chains).
    bounded: BTreeSet<String>,
    /// `len_of[n] = items` for `let n = items.len()`.
    len_of: BTreeMap<String, String>,
    loops: Vec<ForLoop>,
}

impl Facts {
    fn default_with_loops(loops: Vec<ForLoop>) -> Self {
        Facts {
            loops,
            ..Facts::default()
        }
    }
}

/// A function whose `# Safety` contract requires an in-bounds index at
/// one parameter — either a scoped root accessor or a derived forwarder.
struct Accessor {
    /// Zero-based position in [`FnItem::params`] (== argument position:
    /// both exclude `self`).
    param: usize,
    /// 1-based decl line (for chain messages).
    decl_line: u32,
    /// Hop names from this accessor down to the root unsafe accessor,
    /// inclusive (`["write_at", "slot"]`; roots hold just their name).
    chain: Vec<String>,
}

/// Scan one function body for loops and `let` bindings, then derive the
/// complete fact set (bounded fixpoint, guards, pairs).
fn collect_facts(toks: &[Tok], f: &FnItem, scope: &UncheckedScope) -> Facts {
    let mut loops = Vec::new();
    let mut defs: Vec<(String, Range<usize>)> = Vec::new();

    let mut i = f.body.start;
    while i < f.body.end {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.is("for") {
            if let Some(l) = parse_for(toks, i, f.body.end) {
                loops.push(l);
            }
        } else if t.kind == TokKind::Ident && t.is("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(j + 1).is_some_and(|t| t.is("="))
            {
                let rhs_start = j + 2;
                let mut d = 0i32;
                let mut k = rhs_start;
                while k < f.body.end {
                    match toks[k].text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d -= 1,
                        ";" if d == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                defs.push((toks[j].text.clone(), rhs_start..k));
                i = k;
                continue;
            }
        }
        i += 1;
    }

    let mut facts = Facts::default_with_loops(loops);

    // Bounded-variable fixpoint: `end.load(Acquire)` seeds, `.min(..)`
    // over a bounded/capacity-like operand propagates.
    loop {
        let mut changed = false;
        for (name, rhs) in &defs {
            if facts.bounded.contains(name) {
                continue;
            }
            if rhs_is_bounded(toks, rhs.clone(), scope, &facts.bounded) {
                facts.bounded.insert(name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for (name, rhs) in &defs {
        if let Some(src) = len_source(toks, rhs.clone()) {
            facts.len_of.insert(name.clone(), src);
        }
        // `count = BOUNDED.saturating_sub(base)` / `.. BOUNDED - base ..`
        // clamps: base + count <= BOUNDED <= capacity.
        for k in rhs.clone() {
            if toks[k].kind != TokKind::Ident || !facts.bounded.contains(&toks[k].text) {
                continue;
            }
            if toks.get(k + 1).is_some_and(|t| t.is("."))
                && toks.get(k + 2).is_some_and(|t| t.is("saturating_sub"))
                && toks.get(k + 3).is_some_and(|t| t.is("("))
            {
                if let Some(close) = matching(toks, k + 3, "(", ")") {
                    facts.pairs.push((
                        expr_text(toks, k + 4..close),
                        name.clone(),
                        rhs.end,
                    ));
                }
            } else if toks.get(k + 1).is_some_and(|t| t.is("-")) {
                let mut e = k + 2;
                while e < rhs.end
                    && (toks[e].kind == TokKind::Ident || toks[e].is(".") || toks[e].is("::"))
                {
                    e += 1;
                }
                if e > k + 2 {
                    facts
                        .pairs
                        .push((expr_text(toks, k + 2..e), name.clone(), rhs.end));
                }
            }
        }
    }

    collect_guards(toks, f, &mut facts);
    facts
}

/// First token in `range` equal to `stop` at `(`/`[` bracket depth 0 —
/// the header-delimiter scan `for`/`if` parsing shares.
fn first_at_depth0(
    toks: &[Tok],
    range: std::ops::Range<usize>,
    stop: &str,
) -> Option<usize> {
    let mut d = 0i32;
    for (j, t) in toks.iter().enumerate().take(range.end).skip(range.start) {
        match t.text.as_str() {
            "(" | "[" => d += 1,
            ")" | "]" => d -= 1,
            s if s == stop && d == 0 => return Some(j),
            _ => {}
        }
    }
    None
}

/// Parse a `for` header starting at the `for` token.
fn parse_for(toks: &[Tok], at: usize, end: usize) -> Option<ForLoop> {
    let open = first_at_depth0(toks, at + 1..end, "{")?;
    let body_end = matching(toks, open, "{", "}")?;
    let header = at + 1..open;
    let var = first_ident_in(toks, header.clone())?.to_string();

    // `.enumerate()` form: bind the loop var to the iterated source.
    for k in header.clone() {
        if toks[k].is(".")
            && toks.get(k + 1).is_some_and(|t| t.is("enumerate"))
            && toks.get(k + 2).is_some_and(|t| t.is("("))
        {
            let src = header.clone().find_map(|m| {
                (toks[m].kind == TokKind::Ident
                    && toks.get(m + 1).is_some_and(|t| t.is("."))
                    && toks.get(m + 2).is_some_and(|t| {
                        t.is("iter") || t.is("into_iter") || t.is("iter_mut")
                    }))
                .then(|| toks[m].text.clone())
            })?;
            return Some(ForLoop {
                var,
                kind: LoopKind::Enumerate(src),
                body: open..body_end,
            });
        }
    }

    // Range form: `lo..BOUND` (`..` lexes as two `.` tokens).
    for k in header.clone() {
        if toks[k].is(".") && toks.get(k + 1).is_some_and(|t| t.is(".")) {
            let mut hi = header.end;
            while hi > k + 2 && toks[hi - 1].is(")") {
                hi -= 1;
            }
            let mut lo = k + 2;
            if toks.get(lo).is_some_and(|t| t.is("=")) {
                lo += 1; // `..=` inclusive ranges
            }
            if lo < hi {
                return Some(ForLoop {
                    var,
                    kind: LoopKind::Range(expr_text(toks, lo..hi)),
                    body: open..body_end,
                });
            }
        }
    }
    None
}

/// Is this `let` RHS clamped by a publication/capacity bound?
fn rhs_is_bounded(
    toks: &[Tok],
    rhs: Range<usize>,
    scope: &UncheckedScope,
    bounded: &BTreeSet<String>,
) -> bool {
    for k in rhs.clone() {
        // `FIELD.load(Ordering::Acquire)` with FIELD a publication index.
        if toks[k].kind == TokKind::Ident
            && scope.bounded_fields.contains(&toks[k].text.as_str())
            && toks.get(k + 1).is_some_and(|t| t.is("."))
            && toks.get(k + 2).is_some_and(|t| t.is("load"))
            && toks.get(k + 3).is_some_and(|t| t.is("("))
            && rhs
                .clone()
                .any(|m| toks[m].kind == TokKind::Ident && toks[m].is("Acquire"))
        {
            return true;
        }
        // `.min(X)` where X is bounded or capacity-like.
        if toks[k].is(".")
            && toks.get(k + 1).is_some_and(|t| t.is("min"))
            && toks.get(k + 2).is_some_and(|t| t.is("("))
        {
            if let Some(close) = matching(toks, k + 2, "(", ")") {
                if is_capish(toks, k + 3..close, bounded) {
                    return true;
                }
            }
        }
    }
    false
}

/// Does this range mention a capacity-like quantity (`.len()`,
/// `capacity`, or an already-bounded variable)?
fn is_capish(toks: &[Tok], range: Range<usize>, bounded: &BTreeSet<String>) -> bool {
    for k in range {
        let t = &toks[k];
        if t.is(".")
            && toks.get(k + 1).is_some_and(|t| t.is("len"))
            && toks.get(k + 2).is_some_and(|t| t.is("("))
        {
            return true;
        }
        if t.kind == TokKind::Ident && (t.is("capacity") || bounded.contains(&t.text)) {
            return true;
        }
    }
    false
}

/// `S.len()` receiver in a `let` RHS, for enumerate matching.
fn len_source(toks: &[Tok], rhs: Range<usize>) -> Option<String> {
    for k in rhs {
        if toks[k].kind == TokKind::Ident
            && toks.get(k + 1).is_some_and(|t| t.is("."))
            && toks.get(k + 2).is_some_and(|t| t.is("len"))
            && toks.get(k + 3).is_some_and(|t| t.is("("))
        {
            return Some(toks[k].text.clone());
        }
    }
    None
}

/// Diverging `expr > cap` / `expr >= cap` guards; the guarded facts hold
/// after the guard block.
fn collect_guards(toks: &[Tok], f: &FnItem, facts: &mut Facts) {
    let mut i = f.body.start;
    while i < f.body.end {
        if !(toks[i].kind == TokKind::Ident && toks[i].is("if"))
            || toks.get(i + 1).is_some_and(|t| t.is("let"))
        {
            i += 1;
            continue;
        }
        // Condition runs to the first `{` at bracket depth 0.
        let Some(open) = first_at_depth0(toks, i + 1..f.body.end, "{") else {
            i += 1;
            continue;
        };
        let Some(block_end) = matching(toks, open, "{", "}") else {
            i += 1;
            continue;
        };
        // The guard must diverge: otherwise nothing holds after it.
        let diverges = (open + 1..block_end)
            .any(|k| toks[k].is("return") || toks[k].is("break") || toks[k].is("continue"));
        // `>` / `>=` at bracket depth 0 splits LHS index from RHS bound.
        let gt = first_at_depth0(toks, i + 1..open, ">");
        if let (true, Some(gt)) = (diverges, gt) {
            let rhs_start = gt + 1 + usize::from(toks.get(gt + 1).is_some_and(|t| t.is("=")));
            if is_capish(toks, rhs_start..open, &facts.bounded) {
                let parts = split_top_plus(toks, i + 1..gt);
                match parts.as_slice() {
                    [one] => facts.guarded.push((expr_text(toks, one.clone()), block_end)),
                    [a, b] => {
                        let (a, b) = (expr_text(toks, a.clone()), expr_text(toks, b.clone()));
                        facts.guarded.push((a.clone(), block_end));
                        facts.guarded.push((b.clone(), block_end));
                        facts.pairs.push((a.clone(), b.clone(), block_end));
                        facts.pairs.push((b, a, block_end));
                    }
                    _ => {}
                }
            }
        }
        i = open + 1;
    }
}

/// Split a token range at depth-0 `+` operators.
fn split_top_plus(toks: &[Tok], range: Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut d = 0i32;
    let mut start = range.start;
    for i in range.clone() {
        match toks[i].text.as_str() {
            "(" | "[" => d += 1,
            ")" | "]" => d -= 1,
            "+" if d == 0 => {
                out.push(start..i);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(start..range.end);
    out
}

/// Is index expression `idx` at token position `pos` dominated by a
/// bound proof?
fn proven(idx: &str, pos: usize, facts: &Facts) -> bool {
    if facts.guarded.iter().any(|(g, p)| g == idx && *p < pos) {
        return true;
    }
    match idx.rsplit_once('+') {
        // `base + i`: an enclosing loop over `i` whose extent pairs with
        // `base` against capacity.
        Some((base, var)) => facts
            .loops
            .iter()
            .filter(|l| l.body.contains(&pos) && l.var == var)
            .any(|l| match &l.kind {
                LoopKind::Range(bound) => facts
                    .pairs
                    .iter()
                    .any(|(b, c, p)| b == base && c == bound && *p < pos),
                LoopKind::Enumerate(src) => facts.len_of.iter().any(|(n, s)| {
                    s == src
                        && facts
                            .pairs
                            .iter()
                            .any(|(b, c, p)| b == base && c == n && *p < pos)
                }),
            }),
        // Bare loop var: `for i in 0..take` with `take` itself clamped.
        None => facts
            .loops
            .iter()
            .filter(|l| l.body.contains(&pos) && l.var == idx)
            .any(|l| match &l.kind {
                LoopKind::Range(bound) => {
                    facts.bounded.contains(bound)
                        || facts.guarded.iter().any(|(g, p)| g == bound && *p < pos)
                }
                LoopKind::Enumerate(_) => false,
            }),
    }
}

/// Is this fn declared `unsafe`? Only unsafe fns can carry the contract
/// forward (a safe fn forwarding an unchecked index is itself the bug).
fn is_unsafe_fn(toks: &[Tok], f: &FnItem) -> bool {
    (1..toks.len().saturating_sub(1)).any(|k| {
        toks[k].is("fn")
            && toks[k].line == f.line
            && toks[k + 1].is(&f.name)
            && toks[k - 1].is("unsafe")
    })
}

/// One call to a contract accessor: position, line, and index text.
struct AccessorCall {
    callee: String,
    pos: usize,
    line: u32,
    idx: String,
}

/// All calls to registered accessors in one body (`name(..)` and
/// `recv.name(..)` — argument positions align since params exclude
/// `self`). The defining `fn name(` token is not a call.
fn calls_in(
    toks: &[Tok],
    f: &FnItem,
    registry: &BTreeMap<String, Accessor>,
) -> Vec<AccessorCall> {
    let mut out = Vec::new();
    for k in f.body.clone() {
        if toks[k].kind != TokKind::Ident || !toks.get(k + 1).is_some_and(|t| t.is("(")) {
            continue;
        }
        if k > 0 && toks[k - 1].is("fn") {
            continue;
        }
        let Some(acc) = registry.get(&toks[k].text) else {
            continue;
        };
        let Some(close) = matching(toks, k + 1, "(", ")") else {
            continue;
        };
        let args = split_top_commas(toks, k + 2..close);
        let Some(arg) = args.get(acc.param) else {
            continue;
        };
        out.push(AccessorCall {
            callee: toks[k].text.clone(),
            pos: k,
            line: toks[k].line,
            idx: expr_text(toks, arg.clone()),
        });
    }
    out
}

/// Rule 12: `unchecked-guard` — see the module docs.
pub fn unchecked_guard(
    ws: &Workspace,
    fi: usize,
    cfg: &Config,
    _an: &Analysis,
    out: &mut Vec<Finding>,
) {
    let file = &ws.files[fi];
    let Some(scope) = cfg.unchecked_scope(&file.path) else {
        return;
    };
    let toks = &file.parsed.toks;

    // Root accessors: the scoped `# Safety: idx < cap` fns, index at
    // their first parameter.
    let mut registry: BTreeMap<String, Accessor> = BTreeMap::new();
    for f in &file.parsed.fns {
        if scope.accessors.contains(&f.name.as_str()) {
            registry.insert(
                f.name.clone(),
                Accessor {
                    param: 0,
                    decl_line: f.line,
                    chain: vec![f.name.clone()],
                },
            );
        }
    }
    if registry.is_empty() {
        return;
    }

    let fns: Vec<&FnItem> = file.parsed.fns.iter().filter(|f| !f.in_test_mod).collect();
    let facts: Vec<Facts> = fns
        .iter()
        .map(|f| collect_facts(toks, f, scope))
        .collect();

    // Derived-accessor fixpoint: an unproven index that is exactly a
    // parameter promotes the enclosing fn to an accessor (callers are
    // checked at that argument); everything else is a finding on the
    // final pass.
    loop {
        let mut changed = false;
        for (f, fx) in fns.iter().zip(&facts) {
            for call in calls_in(toks, f, &registry) {
                if proven(&call.idx, call.pos, fx) || registry.contains_key(&f.name) {
                    continue;
                }
                if !is_unsafe_fn(toks, f) {
                    continue;
                }
                if let Some(p) = f.params.iter().position(|p| *p == call.idx) {
                    let mut chain = vec![f.name.clone()];
                    chain.extend(registry[&call.callee].chain.iter().cloned());
                    registry.insert(
                        f.name.clone(),
                        Accessor {
                            param: p,
                            decl_line: f.line,
                            chain,
                        },
                    );
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for (f, fx) in fns.iter().zip(&facts) {
        for call in calls_in(toks, f, &registry) {
            if proven(&call.idx, call.pos, fx) {
                continue;
            }
            // Parameter passthrough inside an unsafe accessor: the
            // contract moved to this fn's callers.
            if registry.contains_key(&f.name)
                && is_unsafe_fn(toks, f)
                && f.params.contains(&call.idx)
            {
                continue;
            }
            let acc = &registry[&call.callee];
            let msg = if acc.chain.len() == 1 {
                format!(
                    "`{}` calls unsafe `{}` with unproven index `{}`; the \
                     `# Safety` contract requires it below capacity — dominate \
                     it with a reservation bound check \
                     (`idx + n > capacity -> return Err`) or a loop clamped by \
                     an Acquire-loaded publication index",
                    f.name, call.callee, call.idx
                )
            } else {
                let mut hops: Vec<String> = vec![format!("`{}`", f.name)];
                hops.extend(acc.chain.iter().map(|n| format!("`{n}`")));
                format!(
                    "`{}` passes unproven index `{}` to `{}` ({}:{}), which \
                     forwards it to unsafe `{}` (via {})",
                    f.name,
                    call.idx,
                    call.callee,
                    file.path,
                    acc.decl_line,
                    acc.chain.last().unwrap(),
                    hops.join(" -> ")
                )
            };
            out.push(Finding {
                rule: "unchecked-guard",
                file: file.path.clone(),
                line: call.line,
                message: msg,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::Workspace;

    fn run(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(vec![(
            "fixtures/unchecked_guard.rs".into(),
            src.into(),
        )]);
        let cfg = Config::fixture();
        let an = crate::lints::analyze(&ws, &cfg);
        let mut out = Vec::new();
        unchecked_guard(&ws, 0, &cfg, &an, &mut out);
        out
    }

    #[test]
    fn guard_then_call_is_clean() {
        let f = run(
            "impl Q {\n\
             unsafe fn slot(&self, idx: u64) -> u64 { idx }\n\
             fn push(&self, idx: u64) -> Result<(), ()> {\n\
                 if idx >= self.slots.len() as u64 { return Err(()); }\n\
                 let _ = unsafe { self.slot(idx) };\n\
                 Ok(())\n\
             }\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unguarded_call_is_flagged() {
        let f = run(
            "impl Q {\n\
             unsafe fn slot(&self, idx: u64) -> u64 { idx }\n\
             fn push(&self, idx: u64) {\n\
                 let _ = unsafe { self.slot(idx) };\n\
             }\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("unproven index `idx`"));
    }

    #[test]
    fn publication_bounded_drain_is_clean() {
        let f = run(
            "impl Q {\n\
             unsafe fn slot(&self, idx: u64) -> u64 { idx }\n\
             fn drain(&self, s: u64, max: u64) {\n\
                 let e = self.end.load(Ordering::Acquire);\n\
                 let take = (max).min(e - s);\n\
                 for i in 0..take {\n\
                     let _ = unsafe { self.slot(s + i) };\n\
                 }\n\
             }\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn derived_accessor_checks_the_caller() {
        let f = run(
            "impl Q {\n\
             unsafe fn slot(&self, idx: u64) -> u64 { idx }\n\
             unsafe fn write_at(&self, idx: u64) -> u64 { unsafe { self.slot(idx) } }\n\
             fn drain_bad(&self, hi: u64) {\n\
                 for i in 0..hi {\n\
                     let _ = unsafe { self.write_at(i) };\n\
                 }\n\
             }\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`drain_bad` -> `write_at` -> `slot`"));
    }
}
