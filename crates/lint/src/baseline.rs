//! Committed-baseline support for `--deny-new`.
//!
//! The baseline is a plain text file, one [`crate::Finding::key`] per
//! line (`rule<TAB>file<TAB>message` — no line numbers, so edits above a
//! baselined finding don't resurface it). The project's committed
//! baseline (`.atos-lint-baseline` at the workspace root) is empty: this
//! PR fixed every finding, and `--deny-new` in `scripts/verify.sh` keeps
//! it that way. The mechanism exists so a future PR that *must* land
//! with a known finding can ratchet instead of suppressing.

use crate::Finding;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// Load a baseline file; a missing file is an empty baseline.
pub fn load(path: &Path) -> io::Result<BTreeSet<String>> {
    match fs::read_to_string(path) {
        Ok(s) => Ok(s
            .lines()
            .map(str::trim_end)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(BTreeSet::new()),
        Err(e) => Err(e),
    }
}

/// Write `findings` as a baseline file.
pub fn write(path: &Path, findings: &[Finding]) -> io::Result<()> {
    let mut body = String::from(
        "# atos-lint baseline: one `rule<TAB>file<TAB>message` per line.\n\
         # Findings listed here are tolerated by --deny-new; keep this empty.\n",
    );
    let keys: BTreeSet<String> = findings.iter().map(Finding::key).collect();
    for k in keys {
        body.push_str(&k);
        body.push('\n');
    }
    fs::write(path, body)
}

/// The findings not covered by the baseline.
pub fn new_findings<'a>(findings: &'a [Finding], base: &BTreeSet<String>) -> Vec<&'a Finding> {
    findings.iter().filter(|f| !base.contains(&f.key())).collect()
}
