//! Committed-baseline support for `--deny-new`.
//!
//! v2 baselines fingerprint each finding as
//! `rule<TAB>file<TAB><16-hex FNV-1a of the whitespace-normalized source
//! line>` under a `# atos-lint-baseline v2` header. The snippet hash is
//! stable against the two things that churned v1 baselines: message
//! *wording* changes (rule messages are documentation and should be free
//! to improve) and line-number drift (edits above a baselined finding).
//! It still invalidates when the offending line itself changes — which is
//! exactly when a human should re-look.
//!
//! v1 files (`rule<TAB>file<TAB>message` lines, no version header) are
//! still honored on load, and the CLI migrates them to v2 in place the
//! first time it runs `--deny-new` against one.
//!
//! The project's committed baseline (`.atos-lint-baseline` at the
//! workspace root) is empty: every finding is fixed or vetted at its
//! definition, and `--deny-new` in `scripts/verify.sh` keeps it that way.
//! The mechanism exists so a future PR that *must* land with a known
//! finding can ratchet instead of suppressing.

use crate::cache::fnv1a64;
use crate::{Finding, Workspace};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// The v2 format header (first line of the file).
pub const HEADER_V2: &str = "# atos-lint-baseline v2";

/// A loaded baseline: v2 fingerprints and/or legacy v1 keys.
#[derive(Debug, Default)]
pub struct Baseline {
    /// v2 entries: `rule\tfile\t<16-hex snippet hash>`.
    pub v2: BTreeSet<String>,
    /// Legacy v1 entries: `rule\tfile\tmessage`.
    pub v1: BTreeSet<String>,
    /// The file existed and was in the legacy format (migration wanted).
    pub was_v1: bool,
}

/// Whitespace-normalize a source line: split on whitespace, join with
/// single spaces — stable under indentation and alignment edits.
fn normalize(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// The source line a finding points at, normalized; empty if the file or
/// line is unknown to the workspace (e.g. a finding replayed from cache
/// against a moved file — the fingerprint then hashes emptiness, which
/// never matches a real line's hash).
fn snippet(ws: &Workspace, f: &Finding) -> String {
    ws.files
        .iter()
        .find(|sf| sf.path == f.file)
        .and_then(|sf| sf.src.lines().nth(f.line.saturating_sub(1) as usize))
        .map(normalize)
        .unwrap_or_default()
}

/// The v2 fingerprint of a finding.
pub fn fingerprint(ws: &Workspace, f: &Finding) -> String {
    let hash = fnv1a64(snippet(ws, f).as_bytes());
    format!("{}\t{}\t{hash:016x}", f.rule, f.file)
}

/// Load a baseline file; a missing file is an empty baseline. Detects the
/// format by the version header.
pub fn load(path: &Path) -> io::Result<Baseline> {
    let body = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Baseline::default()),
        Err(e) => return Err(e),
    };
    let v2_format = body.lines().next().is_some_and(|l| l.trim_end() == HEADER_V2);
    let entries: BTreeSet<String> = body
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();
    Ok(if v2_format {
        Baseline {
            v2: entries,
            v1: BTreeSet::new(),
            was_v1: false,
        }
    } else {
        Baseline {
            v2: BTreeSet::new(),
            was_v1: !entries.is_empty(),
            v1: entries,
        }
    })
}

/// Write `findings` as a v2 baseline file.
pub fn write(path: &Path, ws: &Workspace, findings: &[Finding]) -> io::Result<()> {
    let mut body = format!(
        "{HEADER_V2}\n\
         # One `rule<TAB>file<TAB>snippet-hash` per line; the hash is FNV-1a\n\
         # over the whitespace-normalized source line, so message wording and\n\
         # line numbers can change without churning this file. Keep it empty.\n"
    );
    let keys: BTreeSet<String> = findings.iter().map(|f| fingerprint(ws, f)).collect();
    for k in keys {
        body.push_str(&k);
        body.push('\n');
    }
    fs::write(path, body)
}

/// The findings not covered by the baseline (v2 fingerprint or legacy v1
/// key).
pub fn new_findings<'a>(
    ws: &Workspace,
    findings: &'a [Finding],
    base: &Baseline,
) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| !base.v2.contains(&fingerprint(ws, f)) && !base.v1.contains(&f.key()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_and_finding() -> (Workspace, Finding) {
        let ws = Workspace::from_sources(vec![(
            "crates/x/src/a.rs".into(),
            "fn hot() {\n    let v =   vec![1];\n}\n".into(),
        )]);
        let f = Finding {
            rule: "hot-path-alloc",
            file: "crates/x/src/a.rs".into(),
            line: 2,
            message: "allocating `vec!` in hot-path fn `hot`".into(),
        };
        (ws, f)
    }

    #[test]
    fn fingerprint_survives_message_and_whitespace_changes() {
        let (ws, f) = ws_and_finding();
        let fp = fingerprint(&ws, &f);
        // Different message, same line → same fingerprint.
        let mut f2 = f.clone();
        f2.message = "totally reworded".into();
        assert_eq!(fp, fingerprint(&ws, &f2));
        // Re-indented source → same fingerprint.
        let ws2 = Workspace::from_sources(vec![(
            "crates/x/src/a.rs".into(),
            "fn hot() {\n  let v = vec![1];\n}\n".into(),
        )]);
        assert_eq!(fp, fingerprint(&ws2, &f));
        // Changed line content → different fingerprint.
        let ws3 = Workspace::from_sources(vec![(
            "crates/x/src/a.rs".into(),
            "fn hot() {\n    let v = vec![1, 2];\n}\n".into(),
        )]);
        assert_ne!(fp, fingerprint(&ws3, &f));
    }

    #[test]
    fn v1_files_load_as_legacy_and_still_cover() {
        let (ws, f) = ws_and_finding();
        let dir = std::env::temp_dir().join("atos-lint-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1");
        std::fs::write(&path, format!("# old style\n{}\n", f.key())).unwrap();
        let base = load(&path).unwrap();
        assert!(base.was_v1);
        let findings = vec![f.clone()];
        assert!(new_findings(&ws, &findings, &base).is_empty());
        // Writing migrates to v2.
        write(&path, &ws, &findings).unwrap();
        let base2 = load(&path).unwrap();
        assert!(!base2.was_v1);
        assert!(base2.v1.is_empty());
        assert!(new_findings(&ws, &findings, &base2).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_roundtrip_and_uncovered_detection() {
        let (ws, f) = ws_and_finding();
        let dir = std::env::temp_dir().join("atos-lint-baseline-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v2");
        write(&path, &ws, std::slice::from_ref(&f)).unwrap();
        let base = load(&path).unwrap();
        let other = Finding {
            rule: "missing-safety",
            file: "crates/x/src/a.rs".into(),
            line: 1,
            message: "…".into(),
        };
        let findings = vec![f, other];
        let fresh = new_findings(&ws, &findings, &base);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rule, "missing-safety");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
