//! `atos-lint`: workspace static analysis for the invariants this project
//! actually depends on.
//!
//! The dynamic side of verification — the model checker and race detector
//! in `atos-check` (PR 3) — explores interleavings of code that *runs*.
//! This crate is the static side: it parses every workspace source file
//! into a lightweight token/item/event model (no `syn` — the offline
//! build vendors zero external crates, so the parser is a small purpose-
//! built lexer in [`parse`]) and checks structural invariants that are
//! awkward or impossible to catch dynamically:
//!
//! 1. `facade-bypass` — raw `std::sync::atomic` / `std::cell::UnsafeCell`
//!    outside the `atos_queue::sync` facade (which is what lets
//!    `--cfg atos_check` interpose the checker's shadow types).
//! 2. `relaxed-publish` — relaxed atomic write publishing a pending cell
//!    write.
//! 3. `unreleased-write` — cell write with no release edge at all.
//! 4. `acquire-pairing` — relaxed load of a publish counter followed by a
//!    cell read with no acquire in between.
//! 5. `hot-path-alloc` — allocation in `#[atos_hot]` functions (or the
//!    configured denylist) and, transitively, in anything they reach
//!    through the workspace call graph ([`callgraph`] + fixed-point
//!    effect summaries in [`summaries`]); `#[atos_alloc_ok]` vets a
//!    definition and stops the propagation there.
//! 6. `panic-in-kernel` — `unwrap`/`expect`/`panic!`/panicking indexes in
//!    queue-protocol and runtime-step code, again propagated transitively
//!    so an outlined `#[cold]` abort helper is attributed to its kernel
//!    callers.
//! 7. `sim-determinism` — wall-clock, sleeps, and default-hasher
//!    containers in the simulator.
//! 8. `missing-safety` — `unsafe` without a `SAFETY:` comment.
//! 9. `determinism-taint` — dataflow pass ([`taint`]) tracing wall-clock
//!    reads (`Instant::now`, `.elapsed()`) and host-nondeterminism probes
//!    (thread counts, contention counters) through locals, fields, and
//!    return values. Wall-clock taint reaching a *trace* sink is a
//!    finding (traces are golden-compared and must carry virtual time
//!    only); either kind reaching a *metrics* sink lands in the generated
//!    wall-clock key inventory (`--wall-clock-inventory`), which
//!    `crates/bench/tests/trace_golden.rs` consumes instead of a
//!    hand-maintained skip list.
//! 10. `barrier-phase` — protocol check on the sharded engine's window
//!     loop: publish → barrier.wait → drain → barrier.wait → run_window,
//!     in that order, for every configured `barrier_scopes` function.
//! 11. `shard-escape` — owner-computes flow check ([`shard`]): every
//!     field of a `ShardableApp` impl is classified owner-indexed
//!     authoritative / per-sender private / shared-immutable (declared
//!     via `#[atos_shard(..)]` on `fork`, inferred from the `fork`/`join`
//!     bodies otherwise), and the entry points plus everything they
//!     transitively call in-file may write authoritative state only
//!     under a dominating `partition.owner(v) == pe` witness.
//! 12. `unchecked-guard` — reservation-bound proofs ([`bounds`]): every
//!     call to a `# Safety: idx < cap` unchecked accessor must dominate
//!     its index with a diverging capacity guard or a loop clamped by an
//!     Acquire-loaded publication index; parameter-forwarding helpers
//!     become derived accessors so their callers are checked instead.
//!
//! Suppression is always visible in the diff: `#[allow_atos_lint(rule)]`
//! on an item, an `atos-lint: allow(rule)` comment on the finding line or
//! the two lines above it, or a `lint:skip-file` marker in the first ten
//! lines of a file (honored for deliberately-broken twins like
//! `mutations.rs`).

pub mod baseline;
pub mod bounds;
pub mod cache;
pub mod callgraph;
pub mod config;
pub mod lints;
pub mod model;
pub mod parse;
pub mod report;
pub mod sarif;
pub mod shard;
pub mod summaries;
pub mod taint;

use std::fs;
use std::io;
use std::path::Path;

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (kebab-case, from [`lints::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub message: String,
}

impl Finding {
    /// The baseline identity of this finding: rule + file + message,
    /// deliberately excluding the line number so unrelated edits above a
    /// baselined finding do not resurface it.
    pub fn key(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.file, self.message)
    }
}

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Raw source text (retained for baseline snippet fingerprints and
    /// the content-hash lint cache).
    pub src: String,
    /// Parsed view.
    pub parsed: parse::ParsedFile,
    /// `lint:skip-file` marker present in the first ten lines.
    pub skip: bool,
}

/// The parsed workspace.
#[derive(Debug)]
pub struct Workspace {
    /// All files, in discovery order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Build from in-memory `(path, source)` pairs (used by tests and the
    /// seeded-mutation checks).
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let files = sources
            .into_iter()
            .map(|(path, src)| SourceFile {
                skip: src
                    .lines()
                    .take(10)
                    .any(|l| l.contains("lint:skip-file")),
                parsed: parse::parse(&src),
                path: path.replace('\\', "/"),
                src,
            })
            .collect();
        Workspace { files }
    }

    /// Walk `root` collecting every `.rs` file, excluding `target/`,
    /// hidden directories, and lint fixtures (`tests/fixtures/`).
    pub fn discover(root: &Path) -> io::Result<Workspace> {
        let mut paths = Vec::new();
        walk(root, root, &mut paths)?;
        paths.sort();
        let mut sources = Vec::new();
        for p in paths {
            let src = fs::read_to_string(root.join(&p))?;
            sources.push((p, src));
        }
        Ok(Workspace::from_sources(sources))
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if rel.contains("tests/fixtures") {
                continue;
            }
            walk(root, &path, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Kebab rule id → snake (the form used in suppressions).
fn snake(rule: &str) -> String {
    rule.replace('-', "_")
}

/// The innermost function whose source span covers `line`.
fn fn_covering_line(p: &parse::ParsedFile, line: u32) -> Option<&parse::FnItem> {
    p.fns
        .iter()
        .filter(|f| {
            if f.body.is_empty() {
                return f.line == line;
            }
            let first = f.line;
            let last = p.toks[f.body.end - 1].line;
            first <= line && line <= last
        })
        .min_by_key(|f| f.body.len())
}

/// Is `f` suppressed at `line` by attribute or comment?
fn suppressed(file: &SourceFile, f: &Finding) -> bool {
    let needle = format!("atos-lint: allow({})", snake(f.rule));
    if file.parsed.comment_near(f.line, 2, &needle) {
        return true;
    }
    if let Some(item) = fn_covering_line(&file.parsed, f.line) {
        if item
            .attrs
            .iter()
            .any(|a| a.name == "allow_atos_lint" && a.args.iter().any(|x| *x == snake(f.rule)))
        {
            return true;
        }
    }
    false
}

/// Run every rule, apply suppressions, and return findings sorted by
/// `(file, line, rule)` — a stable order for goldens and baselines.
pub fn run(ws: &Workspace, cfg: &config::Config) -> Vec<Finding> {
    run_with_analysis(ws, cfg, &lints::analyze(ws, cfg))
}

/// Like [`run`], against a prebuilt analysis (the CLI builds it once and
/// also consumes its wall-clock key inventory).
pub fn run_with_analysis(
    ws: &Workspace,
    cfg: &config::Config,
    an: &lints::Analysis,
) -> Vec<Finding> {
    run_with_analysis_timed(ws, cfg, an).0
}

/// [`run_with_analysis`], also returning the per-rule wall-time rows the
/// CLI prints under `--timings` (analysis-phase rows come from
/// [`lints::Analysis::phase_timings`]).
pub fn run_with_analysis_timed(
    ws: &Workspace,
    cfg: &config::Config,
    an: &lints::Analysis,
) -> (Vec<Finding>, Vec<(&'static str, std::time::Duration)>) {
    let (raw, timings) = lints::run_timed(ws, cfg, an);
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            ws.files
                .iter()
                .find(|sf| sf.path == f.file)
                .map(|sf| !suppressed(sf, f))
                .unwrap_or(true)
        })
        .collect();
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    findings.dedup();
    (findings, timings)
}
