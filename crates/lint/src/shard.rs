//! `shard-escape`: the owner-computes discipline, checked statically.
//!
//! The sharded runtime's byte-identity guarantee (DESIGN.md §5) rests on
//! a convention the type system cannot see: a `ShardableApp`'s entry
//! points (`process`, `on_receive`, `on_idle`) may mutate *authoritative*
//! vertex-indexed state only at indices the current PE owns — the paper's
//! one-sided `atomicMin` lands in the owner's memory, and `join` adopts
//! exactly the owner-range entries back. A write to `depth[w]` where
//! `partition.owner(w) != pe` is silently discarded at join time in a
//! sharded run but visible in a sequential one: the runs diverge.
//!
//! The rule classifies every field of the impl into three classes —
//! declared by `#[atos_shard(owner(..), private(..), shared(..))]` on the
//! impl's `fork`, backstopped by inference from the `fork`/`join` bodies
//! (join writes under an `(lo..hi).contains(&owner)` guard are
//! authoritative; other join adoptions are per-sender private; everything
//! else the fork clones is shared) — then walks each entry point and
//! everything it transitively calls in the same file:
//!
//! * a write to an `owner` field must be dominated by an owner witness
//!   for its index: an `assert_owner!(partition, v, pe)` /
//!   `debug_assert_eq!(partition.owner(v), pe)` (valid to the end of the
//!   function) or a `let o = partition.owner(v); if o == pe { … }` guard
//!   (valid inside the guarded block only);
//! * a write to a `shared` field, or a wholesale overwrite of an `owner`
//!   array, is always a finding;
//! * `private` fields (send-side mirrors) are writable freely — they
//!   never cross the shard boundary;
//! * sends (`out.push(owner, task)`) are the only escape for non-owned
//!   updates and are untouched by the rule.
//!
//! Transitive violations are reported at the entry point's call site
//! with a provenance chain naming the helper and the violating write,
//! mirroring `hot-path-alloc`'s chain messages.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::callgraph::FnId;
use crate::config::{Config, ShardScope};
use crate::lints::Analysis;
use crate::model::{first_ident_in, matching, split_top_commas};
use crate::parse::{FnItem, Tok, TokKind};
use crate::{Finding, SourceFile, Workspace};

/// Ownership class of one `ShardableApp` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldClass {
    /// Owner-indexed authoritative state: writable only at owned indices.
    Owner,
    /// Per-sender scratch (mirrors): never crosses the shard boundary.
    Private,
    /// Immutable topology/config: read-only in entry paths.
    Shared,
}

/// One detected field write in a function body.
struct FieldWrite {
    /// Field name (last path segment before the index/assignment).
    field: String,
    /// First identifier of the *last* index group (`w` in
    /// `mirror[pe][w as usize]`), `None` for a wholesale assignment.
    idx: Option<String>,
    /// Token index of the field identifier (for witness-span checks).
    at: usize,
    /// 1-based source line of the write.
    line: u32,
}

/// A rule violation inside one function, before message rendering.
struct Violation {
    field: String,
    idx: Option<String>,
    line: u32,
    class: FieldClass,
}

/// The method `name` of impl type `ty`, if defined in this file.
fn find_method<'a>(file: &'a SourceFile, ty: &str, name: &str) -> Option<&'a FnItem> {
    file.parsed
        .fns
        .iter()
        .find(|f| !f.in_test_mod && f.name == name && f.self_ty.as_deref() == Some(ty))
}

/// Is the token at `j` the start of an assignment operator (`=` or a
/// compound `+=`-family, excluding the `==` comparison and the `=>`
/// match arrow — `recv.field => ..` in a match-guard arm is a read)?
fn assigns_at(toks: &[Tok], j: usize) -> bool {
    let Some(t) = toks.get(j) else { return false };
    let next_eq = toks.get(j + 1).is_some_and(|n| n.is("="));
    if t.is("=") {
        let arrow = toks.get(j + 1).is_some_and(|n| n.is(">"));
        return !next_eq && !arrow;
    }
    matches!(t.text.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^") && next_eq
}

/// Every `recv.field[..] = ..` / `&mut recv.field[..]` / `recv.field = ..`
/// write in a token range, in source order.
fn writes_in(toks: &[Tok], range: Range<usize>) -> Vec<FieldWrite> {
    let mut out = Vec::new();
    let mut i = range.start;
    while i + 2 < range.end {
        if toks[i].kind == TokKind::Ident
            && toks[i + 1].is(".")
            && toks[i + 2].kind == TokKind::Ident
        {
            let field_at = i + 2;
            let mut j = field_at + 1;
            let mut idx = None;
            let mut indexed = false;
            while j < range.end && toks[j].is("[") {
                let Some(close) = matching(toks, j, "[", "]") else { break };
                idx = first_ident_in(toks, j + 1..close).map(str::to_string);
                indexed = true;
                j = close + 1;
            }
            let borrow_mut = i >= 2 && toks[i - 1].is("mut") && toks[i - 2].is("&");
            if assigns_at(toks, j) || (borrow_mut && indexed) {
                out.push(FieldWrite {
                    field: toks[field_at].text.clone(),
                    idx: if indexed { idx } else { None },
                    at: field_at,
                    line: toks[field_at].line,
                });
            }
        }
        i += 1;
    }
    out
}

/// Classify the impl's fields: attribute first, then `join` inference
/// (owner-guarded writes are authoritative, other adoptions private),
/// then everything else the `fork` clones as shared.
pub(crate) fn classify_fields(
    file: &SourceFile,
    scope: &ShardScope,
) -> BTreeMap<String, FieldClass> {
    let toks = &file.parsed.toks;
    let mut map: BTreeMap<String, FieldClass> = BTreeMap::new();

    // 1. `#[atos_shard(owner(a, b), private(c), shared(d))]` on `fork`.
    //    The parser flattens attribute args to an in-order ident list, so
    //    the class keywords act as mode switches.
    if let Some(fork) = find_method(file, scope.ty, "fork") {
        if let Some(a) = fork.attrs.iter().find(|a| a.name == "atos_shard") {
            let mut cur = None;
            for arg in &a.args {
                match arg.as_str() {
                    "owner" => cur = Some(FieldClass::Owner),
                    "private" => cur = Some(FieldClass::Private),
                    "shared" => cur = Some(FieldClass::Shared),
                    field => {
                        if let Some(c) = cur {
                            map.entry(field.to_string()).or_insert(c);
                        }
                    }
                }
            }
        }
    }

    // 2. Inference from `join`: a write inside an
    //    `(lo..hi).contains(&owner)`-guarded block adopts authoritative
    //    entries; any other join write is a per-sender row adoption.
    if let Some(join) = find_method(file, scope.ty, "join") {
        let mut guards: Vec<Range<usize>> = Vec::new();
        let mut i = join.body.start;
        while i + 1 < join.body.end {
            if toks[i].is("contains") && toks[i + 1].is("(") {
                if let Some(close) = matching(toks, i + 1, "(", ")") {
                    let names_owner = (i + 2..close)
                        .any(|k| toks[k].kind == TokKind::Ident && toks[k].is("owner"));
                    if names_owner {
                        if let Some(open) =
                            (close..join.body.end).find(|&k| toks[k].is("{"))
                        {
                            if let Some(end) = matching(toks, open, "{", "}") {
                                guards.push(open..end);
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        for w in writes_in(toks, join.body.clone()) {
            let class = if guards.iter().any(|g| g.contains(&w.at)) {
                FieldClass::Owner
            } else {
                FieldClass::Private
            };
            map.entry(w.field).or_insert(class);
        }
    }

    // 3. Remaining fields named in the fork's struct literal (`field: …`)
    //    are cloned but never adopted back: shared-immutable.
    if let Some(fork) = find_method(file, scope.ty, "fork") {
        for i in fork.body.clone() {
            if toks[i].kind == TokKind::Ident
                && toks.get(i + 1).is_some_and(|t| t.is(":"))
                && !toks.get(i + 2).is_some_and(|t| t.is(":"))
                && !(i > 0 && toks[i - 1].is(":"))
            {
                map.entry(toks[i].text.clone()).or_insert(FieldClass::Shared);
            }
        }
    }

    map
}

/// Owner witnesses in one function: `(index var, token span where the
/// witness dominates)`.
fn collect_witnesses(toks: &[Tok], f: &FnItem) -> Vec<(String, Range<usize>)> {
    let mut spans: Vec<(String, Range<usize>)> = Vec::new();
    // `let O = <recv>.owner(X)` bindings seen so far: O → X.
    let mut bind: BTreeMap<String, String> = BTreeMap::new();
    let mut i = f.body.start;
    while i < f.body.end {
        let t = &toks[i];

        // Macro witnesses, valid from here to the end of the function:
        // `debug_assert_eq!(….owner(X), pe, …)` (either arg order) and
        // `assert_owner!(partition_expr, X, pe)`.
        if t.kind == TokKind::Ident
            && i + 2 < f.body.end
            && toks[i + 1].is("!")
            && toks[i + 2].is("(")
        {
            if let Some(close) = matching(toks, i + 2, "(", ")") {
                let args = i + 3..close;
                let vertex = match t.text.as_str() {
                    "debug_assert_eq" | "assert_eq" => {
                        let names_pe = args
                            .clone()
                            .any(|k| toks[k].kind == TokKind::Ident && toks[k].is("pe"));
                        if names_pe {
                            owner_call_vertex(toks, args)
                        } else {
                            None
                        }
                    }
                    "assert_owner" => split_top_commas(toks, args)
                        .get(1)
                        .and_then(|r| first_ident_in(toks, r.clone()))
                        .map(str::to_string),
                    _ => None,
                };
                if let Some(v) = vertex {
                    spans.push((v, i..f.body.end));
                }
                i = close + 1;
                continue;
            }
        }

        // `O = ….owner(X)` binding (typically `let owner = …`). The
        // left-walk over the receiver chain stops at `=`; a `==`
        // comparison has a punct (not an ident) before the `=` and is
        // rejected.
        if t.is(".")
            && i + 2 < f.body.end
            && toks[i + 1].is("owner")
            && toks[i + 2].is("(")
        {
            if let Some(close) = matching(toks, i + 2, "(", ")") {
                if let Some(x) = first_ident_in(toks, i + 3..close) {
                    let mut k = i;
                    while k > f.body.start
                        && (toks[k - 1].kind == TokKind::Ident || toks[k - 1].is("."))
                    {
                        k -= 1;
                    }
                    if k >= f.body.start + 2
                        && toks[k - 1].is("=")
                        && toks[k - 2].kind == TokKind::Ident
                    {
                        bind.insert(toks[k - 2].text.clone(), x.to_string());
                    }
                }
            }
        }

        // `if O == pe {` / `if pe == O {` guard: the witness holds inside
        // the guarded block only — an `else` branch write is *not*
        // covered, which is exactly the non-owner-escape shape.
        if t.is("if") && i + 5 < f.body.end {
            let (a, b) = (&toks[i + 1], &toks[i + 4]);
            if a.kind == TokKind::Ident
                && toks[i + 2].is("=")
                && toks[i + 3].is("=")
                && b.kind == TokKind::Ident
                && toks[i + 5].is("{")
            {
                let owner_var = if a.is("pe") { Some(&b.text) } else if b.is("pe") {
                    Some(&a.text)
                } else {
                    None
                };
                if let Some(x) = owner_var.and_then(|o| bind.get(o)) {
                    if let Some(end) = matching(toks, i + 5, "{", "}") {
                        spans.push((x.clone(), i + 5..end));
                    }
                }
            }
        }

        i += 1;
    }
    spans
}

/// The first ident inside the parens of the first `.owner(` call in a
/// token range (`debug_assert_eq!(self.partition.owner(w), pe)` → `w`).
fn owner_call_vertex(toks: &[Tok], range: Range<usize>) -> Option<String> {
    let mut i = range.start;
    while i + 2 < range.end {
        if toks[i].is(".") && toks[i + 1].is("owner") && toks[i + 2].is("(") {
            let close = matching(toks, i + 2, "(", ")")?;
            return first_ident_in(toks, i + 3..close).map(str::to_string);
        }
        i += 1;
    }
    None
}

/// All owner-computes violations inside one function.
fn violations_in(
    file: &SourceFile,
    f: &FnItem,
    classes: &BTreeMap<String, FieldClass>,
) -> Vec<Violation> {
    let toks = &file.parsed.toks;
    let witnesses = collect_witnesses(toks, f);
    let mut out = Vec::new();
    for w in writes_in(toks, f.body.clone()) {
        let Some(class) = classes.get(&w.field) else {
            continue; // unclassified receiver (not app state)
        };
        match class {
            FieldClass::Private => {}
            FieldClass::Shared => out.push(Violation {
                field: w.field,
                idx: w.idx,
                line: w.line,
                class: FieldClass::Shared,
            }),
            FieldClass::Owner => {
                let witnessed = w.idx.as_ref().is_some_and(|x| {
                    witnesses
                        .iter()
                        .any(|(v, span)| v == x && span.contains(&w.at))
                });
                if !witnessed {
                    out.push(Violation {
                        field: w.field,
                        idx: w.idx,
                        line: w.line,
                        class: FieldClass::Owner,
                    });
                }
            }
        }
    }
    out
}

fn render_local(f: &FnItem, v: &Violation) -> String {
    match (v.class, &v.idx) {
        (FieldClass::Shared, _) => format!(
            "`{}` writes shared-immutable field `{}`; topology/config state \
             is read-only in shard entry paths",
            f.name, v.field
        ),
        (_, Some(idx)) => format!(
            "`{}` writes owner-indexed `{}[{idx}]` with no dominating \
             `partition.owner({idx}) == pe` guard or `assert_owner!` witness; \
             only the owning PE may mutate authoritative state — send the \
             update to `owner` instead",
            f.name, v.field
        ),
        (_, None) => format!(
            "`{}` overwrites owner-indexed array `{}` wholesale; \
             authoritative state may only be updated per-element at owned \
             indices",
            f.name, v.field
        ),
    }
}

/// Rule 11: `shard-escape` — see the module docs.
pub fn shard_escape(
    ws: &Workspace,
    fi: usize,
    cfg: &Config,
    an: &Analysis,
    out: &mut Vec<Finding>,
) {
    let file = &ws.files[fi];
    let Some(scope) = cfg.shard_scope(&file.path) else {
        return;
    };
    let classes = classify_fields(file, scope);
    if classes.is_empty() {
        return;
    }
    let is_entry = |f: &FnItem| {
        scope.entry_fns.contains(&f.name.as_str()) && f.self_ty.as_deref() == Some(scope.ty)
    };
    for (gi, f) in file.parsed.fns.iter().enumerate() {
        if f.in_test_mod || f.body.is_empty() || !is_entry(f) {
            continue;
        }
        // Direct violations, reported at the write.
        for v in violations_in(file, f, &classes) {
            out.push(Finding {
                rule: "shard-escape",
                file: file.path.clone(),
                line: v.line,
                message: render_local(f, &v),
            });
        }
        // Transitive: helpers reached through the call graph, restricted
        // to this file (the impl and its outlined protocol code). Each
        // violating write is reported at the entry's call site with the
        // full hop chain.
        let mut visited: Vec<FnId> = vec![(fi, gi)];
        let mut stack: Vec<(FnId, Vec<String>, u32)> = Vec::new();
        for site in an.graph.callees_of((fi, gi)) {
            if site.callee.0 == fi {
                stack.push((
                    site.callee,
                    vec![f.name.clone(), site.name.clone()],
                    site.line,
                ));
            }
        }
        while let Some((id, chain, entry_line)) = stack.pop() {
            if visited.contains(&id) {
                continue;
            }
            visited.push(id);
            let g = &file.parsed.fns[id.1];
            if g.in_test_mod || g.body.is_empty() || is_entry(g) {
                continue;
            }
            let hops: Vec<String> = chain.iter().map(|n| format!("`{n}`")).collect();
            for v in violations_in(file, g, &classes) {
                let what = match (&v.class, &v.idx) {
                    (FieldClass::Shared, _) => {
                        format!("shared-immutable field `{}`", v.field)
                    }
                    (_, Some(idx)) => format!("owner-indexed `{}[{idx}]`", v.field),
                    (_, None) => format!("owner-indexed array `{}`", v.field),
                };
                out.push(Finding {
                    rule: "shard-escape",
                    file: file.path.clone(),
                    line: entry_line,
                    message: format!(
                        "`{}` calls `{}` ({}:{}), which writes {what} at line {} \
                         with no dominating owner witness (via {})",
                        f.name,
                        g.name,
                        file.path,
                        g.line,
                        v.line,
                        hops.join(" -> ")
                    ),
                });
            }
            for site in an.graph.callees_of(id) {
                if site.callee.0 == fi && !visited.contains(&site.callee) {
                    let mut c = chain.clone();
                    c.push(site.name.clone());
                    stack.push((site.callee, c, entry_line));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::Workspace;

    fn classify(src: &str) -> BTreeMap<String, FieldClass> {
        let ws = Workspace::from_sources(vec![(
            "fixtures/shard_escape.rs".into(),
            src.into(),
        )]);
        let cfg = Config::fixture();
        let scope = cfg.shard_scope("fixtures/shard_escape.rs").unwrap();
        classify_fields(&ws.files[0], scope)
    }

    #[test]
    fn attribute_classes_win() {
        let m = classify(
            "impl BadApp {\n\
             #[atos_shard(owner(depth), private(mirror), shared(graph))]\n\
             fn fork(&self, lo: usize, hi: usize) -> Self { BadApp }\n\
             }\n",
        );
        assert_eq!(m.get("depth"), Some(&FieldClass::Owner));
        assert_eq!(m.get("mirror"), Some(&FieldClass::Private));
        assert_eq!(m.get("graph"), Some(&FieldClass::Shared));
    }

    #[test]
    fn join_inference_fills_gaps() {
        // No attribute at all: `labels` is written under the owner guard
        // (authoritative), `mirror` outside it (private), and `graph` is
        // only cloned by fork (shared).
        let m = classify(
            "impl BadApp {\n\
             fn fork(&self, lo: usize, hi: usize) -> Self {\n\
                 BadApp { graph: self.graph.clone(), labels: self.labels.clone() }\n\
             }\n\
             fn join(&mut self, shard: BadApp, lo: usize, hi: usize) {\n\
                 for v in 0..n {\n\
                     let owner = self.partition.owner(v);\n\
                     if (lo..hi).contains(&owner) { self.labels[v] = 1; }\n\
                 }\n\
                 for pe in lo..hi { self.mirror[pe] = row; }\n\
             }\n\
             }\n",
        );
        assert_eq!(m.get("labels"), Some(&FieldClass::Owner));
        assert_eq!(m.get("mirror"), Some(&FieldClass::Private));
        assert_eq!(m.get("graph"), Some(&FieldClass::Shared));
    }
}
