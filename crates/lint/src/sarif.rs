//! SARIF 2.1.0 emission.
//!
//! Hand-rolled (no serde in the offline workspace) and deliberately
//! *deterministic*: no timestamps, no absolute paths, no environment —
//! the same findings always serialize to the same bytes, so CI can diff
//! SARIF artifacts and the content-hash cache can replay them verbatim.
//! The schema subset emitted (driver rules, results with `ruleId` /
//! `ruleIndex` / `level` / `message.text` / one physical location each)
//! is what code-scanning UIs actually consume.

use crate::lints::RULES;
use crate::report::escape;
use crate::Finding;

/// Serialize findings as a single-run SARIF 2.1.0 log.
pub fn sarif(findings: &[Finding]) -> String {
    let mut out = String::with_capacity(1024 + findings.len() * 256);
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\"");
    out.push_str(",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"atos-lint\",\"rules\":[");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"defaultConfiguration\":{{\"level\":\"error\"}}}}",
            escape(r)
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rule_index = RULES
            .iter()
            .position(|r| *r == f.rule)
            .map(|p| p as i64)
            .unwrap_or(-1);
        out.push_str(&format!(
            "{{\"ruleId\":{},\"ruleIndex\":{rule_index},\"level\":\"error\",\
             \"message\":{{\"text\":{}}},\"locations\":[{{\"physicalLocation\":\
             {{\"artifactLocation\":{{\"uri\":{}}},\"region\":{{\"startLine\":{}}}\
             }}}}]}}",
            escape(f.rule),
            escape(&f.message),
            escape(&f.file),
            f.line
        ));
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_is_deterministic_and_indexes_rules() {
        let f = vec![Finding {
            rule: "hot-path-alloc",
            file: "crates/x/src/a.rs".into(),
            line: 7,
            message: "allocating `vec!`".into(),
        }];
        let a = sarif(&f);
        let b = sarif(&f);
        assert_eq!(a, b);
        assert!(a.contains("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(a.contains("\"ruleId\":\"hot-path-alloc\""));
        assert!(a.contains(&format!(
            "\"ruleIndex\":{}",
            RULES.iter().position(|r| *r == "hot-path-alloc").unwrap()
        )));
        assert!(a.contains("\"startLine\":7"));
        // Every rule id appears in the driver rules array.
        for r in RULES {
            assert!(a.contains(&format!("\"id\":\"{r}\"")));
        }
    }
}
