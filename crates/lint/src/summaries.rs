//! Per-function effect summaries and their fixed-point propagation over
//! the call graph.
//!
//! Each function gets four effect bits — `allocates`, `may_panic`,
//! `reads_wall_clock`, `nondeterministic` — seeded from local patterns
//! (allocating constructs, panicking constructs, wall-clock / host-query
//! sources) and propagated caller-ward over resolved call edges until
//! nothing changes. The lattice is four monotone booleans, so the
//! worklist terminates on cycles without special casing; recursion simply
//! reaches its fixed point.
//!
//! Propagation deliberately *stops* at callees that are vetted at their
//! own definition:
//!
//! * hot callees (`#[atos_hot]` / denylist) report their own allocations
//!   directly — re-reporting them at every caller would be noise;
//! * kernel-scope callees likewise own their panic findings;
//! * `#[atos_alloc_ok]` / `#[allow_atos_lint(hot_path_alloc)]` (or the
//!   comment form on the definition line) vouch for an allocation, and
//!   `#[allow_atos_lint(panic_in_kernel)]` for a panic — the escape
//!   hatches for arena growth paths and documented API panics.
//!
//! Unresolved calls contribute no effects (conservative in the "fewer
//! findings" direction); the dynamic `alloc_count` guard and atos-check
//! cover what name resolution cannot see. See DESIGN.md §7.

use std::collections::BTreeMap;

use crate::callgraph::{CallGraph, FnId};
use crate::config::Config;
use crate::lints::{alloc_pattern, is_hot, PANIC_CALLS, PANIC_MACROS};
use crate::model::{events_of, Event};
use crate::Workspace;

/// Why an effect bit is set: a local pattern, or inherited through a call.
#[derive(Debug, Clone)]
pub enum Why {
    /// A local construct: `pat` at `line` in the function itself.
    Local { pat: String, line: u32 },
    /// Inherited from `callee`, called at `line`.
    Via { callee: FnId, line: u32 },
}

/// Effect summary of one function.
#[derive(Debug, Clone, Default)]
pub struct Effects {
    /// Allocates (directly or transitively).
    pub alloc: Option<Why>,
    /// May panic via `unwrap`/`expect`/panic-family macros (indexing is
    /// judged locally per kernel scope, not propagated).
    pub panic: Option<Why>,
    /// Reads the wall clock (`Instant::now`, `SystemTime::now`, …).
    pub wall: Option<Why>,
    /// Observes host nondeterminism (parallelism, contention counters).
    pub nondet: Option<Why>,
}

/// A reconstructed provenance chain: the `(fn name, file, decl line)`
/// call hops, ending at the local pattern `(pat, file, line)`.
pub type EffectChain = (Vec<(String, String, u32)>, String, String, u32);

/// Effect summaries for every function in the workspace.
#[derive(Debug)]
pub struct Summaries {
    /// (file idx, fn idx) → effects.
    pub fx: BTreeMap<FnId, Effects>,
}

/// Is the callee vetted for allocation at its own definition?
pub fn alloc_vetted(ws: &Workspace, cfg: &Config, id: FnId) -> bool {
    let file = &ws.files[id.0];
    let f = &file.parsed.fns[id.1];
    is_hot(file, f, cfg)
        || f.attrs
            .iter()
            .any(|a| a.name == "atos_alloc_ok" || is_allow(a, "hot_path_alloc"))
        || file
            .parsed
            .comment_near(f.line, 2, "atos-lint: allow(hot_path_alloc)")
}

/// Is the callee vetted for panics at its own definition?
pub fn panic_vetted(ws: &Workspace, cfg: &Config, id: FnId) -> bool {
    let file = &ws.files[id.0];
    let f = &file.parsed.fns[id.1];
    cfg.kernel_scope(&file.path)
        .is_some_and(|s| s.fns.contains(&f.name.as_str()))
        || f.attrs.iter().any(|a| is_allow(a, "panic_in_kernel"))
        || file
            .parsed
            .comment_near(f.line, 2, "atos-lint: allow(panic_in_kernel)")
}

fn is_allow(a: &crate::parse::Attr, rule_snake: &str) -> bool {
    a.name == "allow_atos_lint" && a.args.iter().any(|x| x == rule_snake)
}

impl Summaries {
    /// Seed local effects and run the propagation to its fixed point.
    pub fn compute(ws: &Workspace, cfg: &Config, graph: &CallGraph) -> Summaries {
        let mut fx: BTreeMap<FnId, Effects> = BTreeMap::new();

        // Seed: local patterns.
        for (fi, file) in ws.files.iter().enumerate() {
            if file.skip {
                continue;
            }
            for (gi, f) in file.parsed.fns.iter().enumerate() {
                if f.in_test_mod || f.body.is_empty() {
                    continue;
                }
                let mut e = Effects::default();
                for ev in events_of(&file.parsed, f) {
                    if e.alloc.is_none() {
                        if let Some(pat) = alloc_pattern(&ev) {
                            e.alloc = Some(Why::Local {
                                pat,
                                line: ev.line(),
                            });
                        }
                    }
                    match &ev {
                        Event::Macro { name, line }
                            if e.panic.is_none() && PANIC_MACROS.contains(&name.as_str()) =>
                        {
                            e.panic = Some(Why::Local {
                                pat: format!("{name}!"),
                                line: *line,
                            });
                        }
                        Event::Call { name, line, .. }
                            if e.panic.is_none() && PANIC_CALLS.contains(&name.as_str()) =>
                        {
                            e.panic = Some(Why::Local {
                                pat: format!("{name}()"),
                                line: *line,
                            });
                        }
                        Event::Call {
                            name, path, line, ..
                        } => {
                            let full = format!("{path}{name}");
                            if e.wall.is_none()
                                && (cfg.taint_path_sources.iter().any(|s| full == *s)
                                    || cfg.taint_method_sources.iter().any(|s| name == s))
                            {
                                e.wall = Some(Why::Local {
                                    pat: full.clone(),
                                    line: *line,
                                });
                            }
                            if e.nondet.is_none()
                                && cfg.taint_nondet_sources.iter().any(|s| name == s)
                            {
                                e.nondet = Some(Why::Local {
                                    pat: format!("{name}()"),
                                    line: *line,
                                });
                            }
                        }
                        _ => {}
                    }
                }
                fx.insert((fi, gi), e);
            }
        }

        // Propagate to fixed point. Four monotone bits per fn → at most
        // 4·|fns| useful iterations; the sweep loop converges long before.
        loop {
            let mut changed = false;
            let ids: Vec<FnId> = fx.keys().copied().collect();
            for id in ids {
                for site in graph.callees_of(id) {
                    let callee_fx = match fx.get(&site.callee) {
                        Some(c) => c.clone(),
                        None => continue,
                    };
                    let via = Why::Via {
                        callee: site.callee,
                        line: site.line,
                    };
                    let e = fx.get_mut(&id).expect("seeded");
                    if e.alloc.is_none()
                        && callee_fx.alloc.is_some()
                        && !alloc_vetted(ws, cfg, site.callee)
                    {
                        e.alloc = Some(via.clone());
                        changed = true;
                    }
                    if e.panic.is_none()
                        && callee_fx.panic.is_some()
                        && !panic_vetted(ws, cfg, site.callee)
                    {
                        e.panic = Some(via.clone());
                        changed = true;
                    }
                    if e.wall.is_none() && callee_fx.wall.is_some() {
                        e.wall = Some(via.clone());
                        changed = true;
                    }
                    if e.nondet.is_none() && callee_fx.nondet.is_some() {
                        e.nondet = Some(via);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        Summaries { fx }
    }

    /// Effects of `id` (default-empty for unknown ids).
    pub fn of(&self, id: FnId) -> Effects {
        self.fx.get(&id).cloned().unwrap_or_default()
    }

    /// Reconstruct the provenance chain of an effect, starting *at* `id`:
    /// the list of `(fn name, file, decl line)` hops ending at the local
    /// pattern `(pat, file, line)`. `pick` selects which effect's chain
    /// to walk. Cycle-guarded; returns `None` if the effect is unset.
    pub fn chain(
        &self,
        ws: &Workspace,
        id: FnId,
        pick: impl Fn(&Effects) -> Option<Why>,
    ) -> Option<EffectChain> {
        let mut hops = Vec::new();
        let mut cur = id;
        let mut seen = vec![id];
        loop {
            let file = &ws.files[cur.0];
            let f = &file.parsed.fns[cur.1];
            hops.push((f.name.clone(), file.path.clone(), f.line));
            match pick(&self.of(cur))? {
                Why::Local { pat, line } => {
                    return Some((hops, pat, file.path.clone(), line));
                }
                Why::Via { callee, .. } => {
                    if seen.contains(&callee) {
                        return None; // cycle without a local witness
                    }
                    seen.push(callee);
                    cur = callee;
                }
            }
        }
    }
}
