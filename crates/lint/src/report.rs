//! Human and JSON rendering of findings.

use crate::Finding;

/// Human-readable report, one finding per line plus a summary.
pub fn human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    if findings.is_empty() {
        out.push_str("atos-lint: no findings\n");
    } else {
        out.push_str(&format!(
            "atos-lint: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Stable JSON report: `{"findings":[{rule,file,line,message},..],"count":N}`.
/// Hand-rolled serialization (no serde in the offline workspace); key
/// order and finding order are deterministic so goldens can compare the
/// raw string.
pub fn json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

/// JSON string escaping.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let f = vec![Finding {
            rule: "facade-bypass",
            file: "a/b.rs".into(),
            line: 3,
            message: "say \"hi\"\\".into(),
        }];
        assert_eq!(
            json(&f),
            "{\"findings\":[{\"rule\":\"facade-bypass\",\"file\":\"a/b.rs\",\
             \"line\":3,\"message\":\"say \\\"hi\\\"\\\\\"}],\"count\":1}"
        );
        assert!(human(&f).contains("a/b.rs:3: [facade-bypass]"));
        assert!(human(&[]).contains("no findings"));
    }
}
