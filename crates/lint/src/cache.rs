//! Content-hash result cache.
//!
//! `--cache PATH` keys a full lint run on the FNV-1a hash of the rule-set
//! version, the active [`Config`] fingerprint, and every (path,
//! content-hash) pair in the workspace. On a hit the findings *and* the
//! wall-clock key inventory are replayed from the file, skipping parsing
//! and analysis entirely — the second `verify.sh` invocation costs file
//! reads only, and the replayed output is byte-identical because
//! rendering is a pure function of the findings. Any edited, added, or
//! removed source file changes the key and misses, and so does any
//! change to the rule scopes (a new `ShardScope`, an extra accessor in an
//! `UncheckedScope`, …): stale results can never replay under a config
//! that would have produced different ones. The format is line-based
//! text, committed nowhere (the cache lives under `target/` in CI).

use std::fs;
use std::io;
use std::path::Path;

use crate::config::Config;
use crate::lints::RULES;
use crate::taint::InventoryEntry;
use crate::{Finding, Workspace};

/// Bumping this invalidates every cache file (bump when rule behavior or
/// the file format changes).
const CACHE_VERSION: &str = "atos-lint-cache v2";

/// FNV-1a 64-bit — the workspace's standard tiny stable hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key of this workspace state under the current rule set and
/// lint configuration.
pub fn workspace_key(ws: &Workspace, cfg: &Config) -> u64 {
    let mut acc = String::new();
    acc.push_str(CACHE_VERSION);
    acc.push('\n');
    acc.push_str(&RULES.join(","));
    acc.push('\n');
    acc.push_str(&format!("config {:016x}\n", cfg.fingerprint()));
    for f in &ws.files {
        acc.push_str(&f.path);
        acc.push('\t');
        acc.push_str(&format!("{:016x}", fnv1a64(f.src.as_bytes())));
        acc.push('\n');
    }
    fnv1a64(acc.as_bytes())
}

/// A replayed run.
#[derive(Debug)]
pub struct CachedRun {
    /// Findings exactly as the live run produced them (post-suppression,
    /// sorted).
    pub findings: Vec<Finding>,
    /// Wall-clock key inventory of the live run.
    pub inventory: Vec<InventoryEntry>,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\t', "\\t").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Load a cached run if `path` exists and was stored under `key`.
pub fn load(path: &Path, key: u64) -> Option<CachedRun> {
    let body = fs::read_to_string(path).ok()?;
    let mut lines = body.lines();
    if lines.next()? != format!("# {CACHE_VERSION}") {
        return None;
    }
    if lines.next()? != format!("key {key:016x}") {
        return None;
    }
    let mut run = CachedRun {
        findings: Vec::new(),
        inventory: Vec::new(),
    };
    for line in lines {
        let mut parts = line.split('\t');
        match parts.next() {
            Some("finding") => {
                let rule_txt = parts.next()?;
                // Findings carry a `&'static str` rule id; an unknown rule
                // means a stale format — treat as a miss.
                let rule = RULES.iter().find(|r| **r == rule_txt).copied()?;
                let file = unescape(parts.next()?);
                let line_no: u32 = parts.next()?.parse().ok()?;
                let message = unescape(parts.next()?);
                run.findings.push(Finding {
                    rule,
                    file,
                    line: line_no,
                    message,
                });
            }
            Some("inv") => {
                let exact = match parts.next()? {
                    "exact" => true,
                    "frag" => false,
                    _ => return None,
                };
                run.inventory.push(InventoryEntry {
                    exact,
                    key: unescape(parts.next()?),
                });
            }
            Some("") | None => {}
            _ => return None,
        }
    }
    Some(run)
}

/// Store a run under `key`.
pub fn store(
    path: &Path,
    key: u64,
    findings: &[Finding],
    inventory: &[InventoryEntry],
) -> io::Result<()> {
    let mut body = format!("# {CACHE_VERSION}\nkey {key:016x}\n");
    for f in findings {
        body.push_str(&format!(
            "finding\t{}\t{}\t{}\t{}\n",
            f.rule,
            escape(&f.file),
            f.line,
            escape(&f.message)
        ));
    }
    for e in inventory {
        body.push_str(&format!(
            "inv\t{}\t{}\n",
            if e.exact { "exact" } else { "frag" },
            escape(&e.key)
        ));
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_findings_and_inventory() {
        let findings = vec![Finding {
            rule: "hot-path-alloc",
            file: "crates/x/a.rs".into(),
            line: 3,
            message: "weird\tmessage\nwith breaks \\".into(),
        }];
        let inventory = vec![
            InventoryEntry {
                exact: true,
                key: "sharded.wall_ns".into(),
            },
            InventoryEntry {
                exact: false,
                key: "barrier_wait_ns".into(),
            },
        ];
        let dir = std::env::temp_dir().join("atos-lint-cache-test");
        let path = dir.join("cache.txt");
        store(&path, 42, &findings, &inventory).unwrap();
        let run = load(&path, 42).expect("hit");
        assert_eq!(run.findings, findings);
        assert_eq!(run.inventory, inventory);
        assert!(load(&path, 43).is_none(), "different key must miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_tracks_content_and_paths() {
        let cfg = Config::project();
        let ws1 = Workspace::from_sources(vec![("a.rs".into(), "fn a() {}".into())]);
        let ws2 = Workspace::from_sources(vec![("a.rs".into(), "fn b() {}".into())]);
        let ws3 = Workspace::from_sources(vec![("b.rs".into(), "fn a() {}".into())]);
        assert_ne!(workspace_key(&ws1, &cfg), workspace_key(&ws2, &cfg));
        assert_ne!(workspace_key(&ws1, &cfg), workspace_key(&ws3, &cfg));
        assert_eq!(
            workspace_key(&ws1, &cfg),
            workspace_key(
                &Workspace::from_sources(vec![("a.rs".into(), "fn a() {}".into())]),
                &cfg
            )
        );
    }

    #[test]
    fn key_tracks_lint_config() {
        // The same sources under a different rule configuration must not
        // replay each other's results.
        let ws = Workspace::from_sources(vec![("a.rs".into(), "fn a() {}".into())]);
        assert_ne!(
            workspace_key(&ws, &Config::project()),
            workspace_key(&ws, &Config::fixture())
        );
    }
}
