//! Workspace model: per-function facts extracted from the token stream.
//!
//! Every function body is summarized into an ordered list of *events* the
//! lints consume: atomic loads/stores/RMWs/CASes with their `Ordering`s
//! and receiver field, `UnsafeCell` accesses through the facade's
//! `with`/`with_mut` closures, calls (for the one-level-deep hot-path
//! walk), macro invocations, and panic/alloc-pattern sites. The extraction
//! is name-based — no type information — which is exactly the right
//! fidelity for project-invariant lints: protocols in this workspace name
//! their publication counters (`end`, `flags`, …) consistently, and false
//! negatives from aliasing are covered by the dynamic checker (PR 3).

use crate::parse::{FnItem, ParsedFile, Tok, TokKind};

/// Memory-ordering strength, as written at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ord {
    /// `Ordering::Relaxed`.
    Relaxed,
    /// `Ordering::Acquire`.
    Acquire,
    /// `Ordering::Release`.
    Release,
    /// `Ordering::AcqRel`.
    AcqRel,
    /// `Ordering::SeqCst`.
    SeqCst,
    /// Passed through a variable — treated as unknown (never flagged).
    Unknown,
}

impl Ord {
    /// Does this ordering publish prior writes (release or stronger)?
    pub fn releases(self) -> bool {
        matches!(self, Ord::Release | Ord::AcqRel | Ord::SeqCst)
    }

    /// Does this ordering synchronize-with a release (acquire or stronger)?
    pub fn acquires(self) -> bool {
        matches!(self, Ord::Acquire | Ord::AcqRel | Ord::SeqCst)
    }

    fn from_name(s: &str) -> Ord {
        match s {
            "Relaxed" => Ord::Relaxed,
            "Acquire" => Ord::Acquire,
            "Release" => Ord::Release,
            "AcqRel" => Ord::AcqRel,
            "SeqCst" => Ord::SeqCst,
            _ => Ord::Unknown,
        }
    }
}

/// One event in a function body, in source order.
#[derive(Debug, Clone)]
pub enum Event {
    /// `recv.with_mut(|p| …)` — an `UnsafeCell` write window.
    CellWrite { field: String, line: u32 },
    /// `recv.with(|p| …)` — an `UnsafeCell` read window.
    CellRead { field: String, line: u32 },
    /// `recv.load(ord)`.
    AtomicLoad { field: String, ord: Ord, line: u32 },
    /// `recv.store(_, ord)` / `recv.fetch_*(_, ord)` / `recv.swap(_, ord)`.
    AtomicWrite { field: String, ord: Ord, line: u32 },
    /// `recv.compare_exchange[_weak](_, _, success, failure)`.
    Cas { field: String, success: Ord, line: u32 },
    /// `fence(ord)`.
    Fence { ord: Ord, line: u32 },
    /// A call: free/associated (`path::name(`) or method (`.name(`).
    /// For method calls `recv` is the receiver field/variable name (as
    /// [`receiver_field`] resolves it) and `method` is true; for
    /// free/associated calls `recv` is empty and `method` is false.
    Call {
        name: String,
        path: String,
        recv: String,
        method: bool,
        line: u32,
    },
    /// A macro invocation `name!`.
    Macro { name: String, line: u32 },
    /// Indexing into a named place: `ident[…]` (slice/array index that can
    /// panic). Indexing a numeric literal or `]` chain is not recorded.
    Index { base: String, line: u32 },
}

impl Event {
    /// Source line of the event.
    pub fn line(&self) -> u32 {
        match self {
            Event::CellWrite { line, .. }
            | Event::CellRead { line, .. }
            | Event::AtomicLoad { line, .. }
            | Event::AtomicWrite { line, .. }
            | Event::Cas { line, .. }
            | Event::Fence { line, .. }
            | Event::Call { line, .. }
            | Event::Macro { line, .. }
            | Event::Index { line, .. } => *line,
        }
    }
}

const ATOMIC_RMWS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_update",
    "swap",
];

/// The orderings named inside the argument list starting at the `(` token
/// at `open` (scans to the matching `)`).
fn orderings_in_args(toks: &[Tok], open: usize) -> Vec<Ord> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "Ordering" if toks.get(i + 1).is_some_and(|t| t.is("::")) => {
                if let Some(t) = toks.get(i + 2) {
                    out.push(Ord::from_name(&t.text));
                    i += 2;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// The receiver *field name* of a method call whose `.` is at `dot`:
/// walks left over one `[…]` index chain and takes the identifier, e.g.
/// `self.slots[(idx) as usize].with_mut` → `slots`;
/// `self.end.load` → `end`; `q.end_alloc.fetch_add` → `end_alloc`.
pub(crate) fn receiver_field(toks: &[Tok], dot: usize) -> String {
    let mut i = dot;
    // Step left over a closing bracket chain.
    loop {
        if i == 0 {
            return String::new();
        }
        i -= 1;
        match toks[i].text.as_str() {
            "]" => {
                // Skip to matching `[`.
                let mut d = 1i32;
                while i > 0 && d > 0 {
                    i -= 1;
                    match toks[i].text.as_str() {
                        "]" => d += 1,
                        "[" => d -= 1,
                        _ => {}
                    }
                }
                continue;
            }
            ")" => {
                let mut d = 1i32;
                while i > 0 && d > 0 {
                    i -= 1;
                    match toks[i].text.as_str() {
                        ")" => d += 1,
                        "(" => d -= 1,
                        _ => {}
                    }
                }
                continue;
            }
            _ => break,
        }
    }
    if toks[i].kind == TokKind::Ident {
        toks[i].text.clone()
    } else {
        String::new()
    }
}

/// Index of the token matching the opener at `open` (which must hold
/// `open_s`), scanning forward and balancing `open_s`/`close_s` pairs.
/// `None` if the stream ends unbalanced.
pub(crate) fn matching(toks: &[Tok], open: usize, open_s: &str, close_s: &str) -> Option<usize> {
    if !toks.get(open)?.is(open_s) {
        return None;
    }
    let mut d = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is(open_s) {
            d += 1;
        } else if t.is(close_s) {
            d -= 1;
            if d == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Split a token range at top-level commas (paren/bracket/brace depth 0
/// relative to the range), e.g. an argument list with its outer parens
/// already stripped.
pub(crate) fn split_top_commas(
    toks: &[Tok],
    range: std::ops::Range<usize>,
) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = range.start;
    for i in range.clone() {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push(start..i);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < range.end {
        out.push(start..range.end);
    }
    out
}

/// First identifier token in a range, if any.
pub(crate) fn first_ident_in(toks: &[Tok], range: std::ops::Range<usize>) -> Option<&str> {
    toks[range]
        .iter()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

/// Render a token range as source-order text with `as TYPE` casts and
/// grouping parens stripped — the normalized index-expression form the
/// bounds facts are keyed on (`(idx) as u64` and `idx` both render as
/// `idx`; `state . cursor` renders as `state.cursor`).
pub(crate) fn expr_text(toks: &[Tok], range: std::ops::Range<usize>) -> String {
    let mut out = String::new();
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        if t.is("as") && t.kind == TokKind::Ident {
            // Skip the cast keyword and its type tokens (ident plus any
            // `::`-path tail).
            i += 1;
            while i < range.end
                && (toks[i].kind == TokKind::Ident || toks[i].is("::"))
            {
                i += 1;
            }
            continue;
        }
        if !t.is("(") && !t.is(")") {
            out.push_str(&t.text);
        }
        i += 1;
    }
    out
}

/// Extract the ordered event list of one function body.
pub fn events_of(file: &ParsedFile, f: &FnItem) -> Vec<Event> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut i = f.body.start;
    while i < f.body.end {
        let t = &toks[i];
        // Method call: `. name (`
        if t.is(".")
            && i + 2 < f.body.end
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is("(")
        {
            let name = toks[i + 1].text.as_str();
            let line = toks[i + 1].line;
            let field = receiver_field(toks, i);
            let ords = orderings_in_args(toks, i + 2);
            let first = ords.first().copied().unwrap_or(Ord::Unknown);
            match name {
                "with_mut" => out.push(Event::CellWrite { field, line }),
                "with" => out.push(Event::CellRead { field, line }),
                "load" => out.push(Event::AtomicLoad {
                    field,
                    ord: first,
                    line,
                }),
                "store" => out.push(Event::AtomicWrite {
                    field,
                    ord: first,
                    line,
                }),
                "compare_exchange" | "compare_exchange_weak" => out.push(Event::Cas {
                    field,
                    success: first,
                    line,
                }),
                n if ATOMIC_RMWS.contains(&n) => out.push(Event::AtomicWrite {
                    field,
                    ord: first,
                    line,
                }),
                _ => out.push(Event::Call {
                    name: name.to_string(),
                    path: String::new(),
                    recv: field,
                    method: true,
                    line,
                }),
            }
            i += 2;
            continue;
        }
        // Free / associated call or macro: `ident (`, `ident !`, `path::ident (`.
        if t.kind == TokKind::Ident {
            if i + 1 < f.body.end && toks[i + 1].is("!") {
                out.push(Event::Macro {
                    name: t.text.clone(),
                    line: t.line,
                });
                i += 2;
                continue;
            }
            if i + 1 < f.body.end && toks[i + 1].is("(") {
                // Reconstruct a leading path (a::b::name).
                let mut path = String::new();
                let mut j = i;
                while j >= 2 && toks[j - 1].is("::") && toks[j - 2].kind == TokKind::Ident {
                    j -= 2;
                }
                for tok in &toks[j..i] {
                    path.push_str(&tok.text);
                }
                if t.is("fence") {
                    let ords = orderings_in_args(toks, i + 1);
                    out.push(Event::Fence {
                        ord: ords.first().copied().unwrap_or(Ord::Unknown),
                        line: t.line,
                    });
                } else {
                    out.push(Event::Call {
                        name: t.text.clone(),
                        path,
                        recv: String::new(),
                        method: false,
                        line: t.line,
                    });
                }
                i += 1;
                continue;
            }
            // Indexing: `ident [` — a panicking slice/array index unless
            // it is an attribute or type position; those don't appear as
            // ident-then-bracket inside bodies except slices.
            if i + 1 < f.body.end && toks[i + 1].is("[") {
                out.push(Event::Index {
                    base: t.text.clone(),
                    line: t.line,
                });
                i += 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Reference to a function in the workspace index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef {
    /// Index into [`crate::Workspace::files`].
    pub file: usize,
    /// Index into that file's `fns`.
    pub f: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn events(src: &str) -> Vec<Event> {
        let p = parse(src);
        let f = p.fns.first().expect("one fn").clone();
        events_of(&p, &f)
    }

    #[test]
    fn extracts_atomic_ops_with_fields_and_orderings() {
        let ev = events(
            "fn push(&self) {\n\
             let idx = self.end_alloc.fetch_add(n, Ordering::Relaxed);\n\
             self.slots[(idx + i as u64) as usize].with_mut(|p| unsafe { (*p).write(item) });\n\
             self.end.fetch_max(idx + n, Ordering::AcqRel);\n\
             }",
        );
        assert!(matches!(
            &ev[0],
            Event::AtomicWrite { field, ord: Ord::Relaxed, .. } if field == "end_alloc"
        ));
        assert!(
            ev.iter()
                .any(|e| matches!(e, Event::CellWrite { field, .. } if field == "slots")),
            "{ev:?}"
        );
        assert!(matches!(
            ev.last().unwrap(),
            Event::AtomicWrite { field, ord: Ord::AcqRel, .. } if field == "end"
        ));
    }

    #[test]
    fn cas_success_ordering_is_first() {
        let ev = events(
            "fn f(&self) { let _ = self.end.compare_exchange(\n a,\n b,\n Ordering::Release,\n Ordering::Relaxed,\n ); }",
        );
        assert!(matches!(
            &ev[0],
            Event::Cas { field, success: Ord::Release, .. } if field == "end"
        ));
    }

    #[test]
    fn calls_macros_and_indexing_recorded() {
        let ev = events("fn f() { helper(); mod_a::g(x); out.push(v); vec![1]; buf[i] = 0; }");
        assert!(ev.iter().any(|e| matches!(e, Event::Call { name, .. } if name == "helper")));
        assert!(
            ev.iter()
                .any(|e| matches!(e, Event::Call { name, path, .. } if name == "g" && path == "mod_a::"))
        );
        assert!(ev.iter().any(|e| matches!(e, Event::Call { name, .. } if name == "push")));
        assert!(ev.iter().any(|e| matches!(e, Event::Macro { name, .. } if name == "vec")));
        assert!(ev.iter().any(|e| matches!(e, Event::Index { base, .. } if base == "buf")));
    }

    #[test]
    fn fence_recorded_with_ordering() {
        let ev = events("fn f() { fence(Ordering::Release); }");
        assert!(matches!(&ev[0], Event::Fence { ord: Ord::Release, .. }));
    }
}
