//! `atos-lint` CLI.
//!
//! ```text
//! atos-lint --workspace [--emit human|json|sarif] [--deny-new]
//!           [--baseline FILE] [--write-baseline] [--cache FILE]
//!           [--wall-clock-inventory FILE]
//! atos-lint PATH...            # lint specific files/directories
//! ```
//!
//! `--json` is a legacy alias for `--emit json`. `--cache FILE` keys the
//! run on a content hash of the workspace and the lint config and replays
//! findings (and the wall-clock inventory) byte-identically on a hit.
//! `--timings` prints a per-rule wall-time breakdown to stderr (on a
//! cache hit the analysis is skipped and no breakdown exists).
//! `--wall-clock-inventory FILE` writes the determinism-taint pass's
//! metric-key inventory (the artifact `crates/bench/tests/trace_golden.rs`
//! consumes).
//!
//! Exit codes: 0 = clean (or all findings baselined under `--deny-new`),
//! 1 = findings, 2 = usage or I/O error.

use atos_lint::{
    baseline, cache,
    config::Config,
    lints, report, run_with_analysis_timed, sarif,
    taint::{render_inventory, InventoryEntry},
    Finding, Workspace,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Emit {
    Human,
    Json,
    Sarif,
}

struct Args {
    workspace: bool,
    emit: Emit,
    deny_new: bool,
    write_baseline: bool,
    baseline: Option<PathBuf>,
    cache: Option<PathBuf>,
    inventory: Option<PathBuf>,
    timings: bool,
    paths: Vec<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: atos-lint (--workspace | PATH...) [--emit human|json|sarif] \
         [--json] [--deny-new] [--baseline FILE] [--write-baseline] \
         [--cache FILE] [--wall-clock-inventory FILE] [--timings]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut a = Args {
        workspace: false,
        emit: Emit::Human,
        deny_new: false,
        write_baseline: false,
        baseline: None,
        cache: None,
        inventory: None,
        timings: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => a.workspace = true,
            "--json" => a.emit = Emit::Json,
            "--emit" => match it.next().as_deref() {
                Some("human") => a.emit = Emit::Human,
                Some("json") => a.emit = Emit::Json,
                Some("sarif") => a.emit = Emit::Sarif,
                _ => return Err(usage()),
            },
            "--deny-new" => a.deny_new = true,
            "--write-baseline" => a.write_baseline = true,
            "--baseline" => match it.next() {
                Some(p) => a.baseline = Some(PathBuf::from(p)),
                None => return Err(usage()),
            },
            "--cache" => match it.next() {
                Some(p) => a.cache = Some(PathBuf::from(p)),
                None => return Err(usage()),
            },
            "--wall-clock-inventory" => match it.next() {
                Some(p) => a.inventory = Some(PathBuf::from(p)),
                None => return Err(usage()),
            },
            "--timings" => a.timings = true,
            "-h" | "--help" => return Err(usage()),
            p if !p.starts_with('-') => a.paths.push(PathBuf::from(p)),
            _ => return Err(usage()),
        }
    }
    if !a.workspace && a.paths.is_empty() {
        return Err(usage());
    }
    Ok(a)
}

/// Ascend from the current directory to the workspace root (the first
/// ancestor whose `Cargo.toml` declares `[workspace]`).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    let t0 = Instant::now();
    let (root, ws) = if args.workspace {
        let Some(root) = find_workspace_root() else {
            eprintln!("atos-lint: no workspace root ([workspace] in Cargo.toml) above cwd");
            return ExitCode::from(2);
        };
        match Workspace::discover(&root) {
            Ok(ws) => (root, ws),
            Err(e) => {
                eprintln!("atos-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let mut sources = Vec::new();
        for p in &args.paths {
            if let Err(e) = collect(p, &mut sources) {
                eprintln!("atos-lint: {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
        (cwd, Workspace::from_sources(sources))
    };

    let cfg = Config::project();
    let run_live = |timings: bool| {
        let an = lints::analyze(&ws, &cfg);
        let (findings, rule_timings) = run_with_analysis_timed(&ws, &cfg, &an);
        if timings {
            print_timings(&an.phase_timings, &rule_timings);
        }
        (findings, an.taint.inventory)
    };
    let (findings, inventory, cache_state): (Vec<Finding>, Vec<InventoryEntry>, &str) =
        match &args.cache {
            Some(cache_path) => {
                let key = cache::workspace_key(&ws, &cfg);
                if let Some(hit) = cache::load(cache_path, key) {
                    if args.timings {
                        eprintln!(
                            "atos-lint: --timings: cache hit replays stored \
                             findings; no analysis ran"
                        );
                    }
                    (hit.findings, hit.inventory, "cache hit")
                } else {
                    let (findings, inventory) = run_live(args.timings);
                    if let Err(e) = cache::store(cache_path, key, &findings, &inventory) {
                        eprintln!("atos-lint: writing {}: {e}", cache_path.display());
                    }
                    (findings, inventory, "cache miss")
                }
            }
            None => {
                let (findings, inventory) = run_live(args.timings);
                (findings, inventory, "no cache")
            }
        };
    eprintln!(
        "atos-lint: {} files, {} finding{} in {:.1} ms ({cache_state})",
        ws.files.len(),
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        t0.elapsed().as_secs_f64() * 1e3
    );

    if let Some(inv_path) = &args.inventory {
        if let Some(parent) = inv_path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        if let Err(e) = std::fs::write(inv_path, render_inventory(&inventory)) {
            eprintln!("atos-lint: writing {}: {e}", inv_path.display());
            return ExitCode::from(2);
        }
    }

    let base_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(".atos-lint-baseline"));

    if args.write_baseline {
        if let Err(e) = baseline::write(&base_path, &ws, &findings) {
            eprintln!("atos-lint: writing {}: {e}", base_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "atos-lint: wrote {} entr{} to {}",
            findings.len(),
            if findings.len() == 1 { "y" } else { "ies" },
            base_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let effective: Vec<Finding> = if args.deny_new {
        let base = match baseline::load(&base_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("atos-lint: reading {}: {e}", base_path.display());
                return ExitCode::from(2);
            }
        };
        if base.was_v1 {
            // Migrate in place: re-fingerprint the findings the v1 file
            // covered; stale v1 entries (already-fixed findings) drop out.
            let covered: Vec<Finding> = findings
                .iter()
                .filter(|f| base.v1.contains(&f.key()))
                .cloned()
                .collect();
            match baseline::write(&base_path, &ws, &covered) {
                Ok(()) => eprintln!(
                    "atos-lint: migrated {} to the v2 fingerprint format \
                     ({} entr{})",
                    base_path.display(),
                    covered.len(),
                    if covered.len() == 1 { "y" } else { "ies" }
                ),
                Err(e) => {
                    eprintln!("atos-lint: migrating {}: {e}", base_path.display())
                }
            }
        }
        baseline::new_findings(&ws, &findings, &base)
            .into_iter()
            .cloned()
            .collect()
    } else {
        findings
    };

    match args.emit {
        Emit::Json => println!("{}", report::json(&effective)),
        Emit::Sarif => println!("{}", sarif::sarif(&effective)),
        Emit::Human => print!("{}", report::human(&effective)),
    }
    if effective.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Render the `--timings` breakdown to stderr (stdout stays reserved for
/// the byte-compared reports).
fn print_timings(
    phases: &[(&'static str, std::time::Duration)],
    rules: &[(&'static str, std::time::Duration)],
) {
    eprintln!("atos-lint: wall time by phase and rule:");
    let total: std::time::Duration = phases
        .iter()
        .chain(rules.iter())
        .map(|(_, d)| *d)
        .sum();
    for (name, d) in phases.iter().chain(rules.iter()) {
        eprintln!("  {:<32} {:>9.3} ms", name, d.as_secs_f64() * 1e3);
    }
    eprintln!("  {:<32} {:>9.3} ms", "total", total.as_secs_f64() * 1e3);
}

/// Collect `.rs` sources under an explicit path argument.
fn collect(p: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    let meta = std::fs::metadata(p)?;
    if meta.is_dir() {
        for entry in std::fs::read_dir(p)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with('.') || name == "target" {
                continue;
            }
            collect(&entry.path(), out)?;
        }
    } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
        out.push((
            p.to_string_lossy().replace('\\', "/"),
            std::fs::read_to_string(p)?,
        ));
    }
    Ok(())
}
