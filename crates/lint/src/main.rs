//! `atos-lint` CLI.
//!
//! ```text
//! atos-lint --workspace [--json] [--deny-new] [--baseline FILE] [--write-baseline]
//! atos-lint PATH...            # lint specific files/directories
//! ```
//!
//! Exit codes: 0 = clean (or all findings baselined under `--deny-new`),
//! 1 = findings, 2 = usage or I/O error.

use atos_lint::{baseline, config::Config, report, run, Workspace};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    workspace: bool,
    json: bool,
    deny_new: bool,
    write_baseline: bool,
    baseline: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: atos-lint (--workspace | PATH...) [--json] [--deny-new] \
         [--baseline FILE] [--write-baseline]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut a = Args {
        workspace: false,
        json: false,
        deny_new: false,
        write_baseline: false,
        baseline: None,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => a.workspace = true,
            "--json" => a.json = true,
            "--deny-new" => a.deny_new = true,
            "--write-baseline" => a.write_baseline = true,
            "--baseline" => match it.next() {
                Some(p) => a.baseline = Some(PathBuf::from(p)),
                None => return Err(usage()),
            },
            "-h" | "--help" => return Err(usage()),
            p if !p.starts_with('-') => a.paths.push(PathBuf::from(p)),
            _ => return Err(usage()),
        }
    }
    if !a.workspace && a.paths.is_empty() {
        return Err(usage());
    }
    Ok(a)
}

/// Ascend from the current directory to the workspace root (the first
/// ancestor whose `Cargo.toml` declares `[workspace]`).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    let (root, ws) = if args.workspace {
        let Some(root) = find_workspace_root() else {
            eprintln!("atos-lint: no workspace root ([workspace] in Cargo.toml) above cwd");
            return ExitCode::from(2);
        };
        match Workspace::discover(&root) {
            Ok(ws) => (root, ws),
            Err(e) => {
                eprintln!("atos-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let mut sources = Vec::new();
        for p in &args.paths {
            if let Err(e) = collect(p, &mut sources) {
                eprintln!("atos-lint: {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
        (cwd, Workspace::from_sources(sources))
    };

    let findings = run(&ws, &Config::project());

    let base_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(".atos-lint-baseline"));

    if args.write_baseline {
        if let Err(e) = baseline::write(&base_path, &findings) {
            eprintln!("atos-lint: writing {}: {e}", base_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "atos-lint: wrote {} entr{} to {}",
            findings.len(),
            if findings.len() == 1 { "y" } else { "ies" },
            base_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let effective: Vec<_> = if args.deny_new {
        let base = match baseline::load(&base_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("atos-lint: reading {}: {e}", base_path.display());
                return ExitCode::from(2);
            }
        };
        baseline::new_findings(&findings, &base)
            .into_iter()
            .cloned()
            .collect()
    } else {
        findings
    };

    if args.json {
        println!("{}", report::json(&effective));
    } else {
        print!("{}", report::human(&effective));
    }
    if effective.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Collect `.rs` sources under an explicit path argument.
fn collect(p: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    let meta = std::fs::metadata(p)?;
    if meta.is_dir() {
        for entry in std::fs::read_dir(p)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with('.') || name == "target" {
                continue;
            }
            collect(&entry.path(), out)?;
        }
    } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
        out.push((
            p.to_string_lossy().replace('\\', "/"),
            std::fs::read_to_string(p)?,
        ));
    }
    Ok(())
}
