//! The lint rules.
//!
//! Each rule is a pure function from the parsed workspace to findings;
//! suppression (`#[allow_atos_lint(..)]` attributes, `atos-lint: allow(..)`
//! comments, `lint:skip-file` markers) is applied centrally by
//! [`crate::run`], so rules report every raw site they see.

use crate::config::Config;
use crate::model::{events_of, Event, Ord};
use crate::parse::{FnItem, TokKind};
use crate::{Finding, SourceFile, Workspace};

/// All rule identifiers, in report order.
pub const RULES: &[&str] = &[
    "facade-bypass",
    "relaxed-publish",
    "unreleased-write",
    "acquire-pairing",
    "hot-path-alloc",
    "panic-in-kernel",
    "sim-determinism",
    "missing-safety",
];

/// Run every rule over the workspace.
pub fn run_all(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.skip {
            continue;
        }
        facade_bypass(file, cfg, &mut out);
        ordering_rules(file, cfg, &mut out);
        hot_path_alloc(ws, fi, cfg, &mut out);
        panic_in_kernel(file, cfg, &mut out);
        sim_determinism(file, cfg, &mut out);
        missing_safety(file, &mut out);
    }
    out
}

fn finding(rule: &'static str, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: file.path.clone(),
        line,
        message,
    }
}

// ---------------------------------------------------------------- facade

/// Rule 1: `facade-bypass` — only the facade, the model checker, and the
/// vendored shims may name `std::sync::atomic` / `std::cell::UnsafeCell`
/// directly. Everything else goes through `atos_queue::sync`, so the
/// whole workspace can be re-pointed at the checker's shadow types with
/// one `--cfg`.
fn facade_bypass(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.is_facade_allowed(&file.path) {
        return;
    }
    let toks = &file.parsed.toks;
    let mut seen_lines = Vec::new();
    for i in 0..toks.len().saturating_sub(4) {
        let root = toks[i].text.as_str();
        if (root == "std" || root == "core")
            && toks[i + 1].is("::")
            && toks[i + 3].is("::")
            && toks[i].kind == TokKind::Ident
        {
            let ns = toks[i + 2].text.as_str();
            let leaf = toks[i + 4].text.as_str();
            let hit = (ns == "sync" && leaf == "atomic")
                || (ns == "cell" && leaf == "UnsafeCell");
            if hit && !seen_lines.contains(&toks[i].line) {
                seen_lines.push(toks[i].line);
                out.push(finding(
                    "facade-bypass",
                    file,
                    toks[i].line,
                    format!(
                        "direct `{root}::{ns}::{}` use; go through the `atos_queue::sync` \
                         facade so `--cfg atos_check` can interpose the model checker",
                        if ns == "sync" { "atomic" } else { leaf }
                    ),
                ));
            }
        }
    }
}

// ------------------------------------------------------------- ordering

/// Rules 2–4: the ordering-dataflow pass. Per non-test function, walk the
/// event list tracking the publication protocol:
///
/// * `relaxed-publish` — a relaxed atomic *write* (store/RMW/CAS-success)
///   while a cell write is still unpublished. Readers that acquire-load
///   the counter would not synchronize-with the slot contents.
/// * `unreleased-write` — a cell write that is never followed by any
///   release-ordered atomic write in the same function: the data has no
///   publication edge at all.
/// * `acquire-pairing` — a relaxed load of a *publish field* (a field
///   that receives release-ordered writes somewhere in the file) followed
///   by a cell read with no intervening acquire: the read may observe
///   pre-publication slot state.
fn ordering_rules(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.is_ordering_exempt(&file.path) {
        return;
    }
    // Publish fields: receive a release-ordered atomic write in any
    // non-test fn of this file.
    let mut publish_fields: Vec<String> = Vec::new();
    let fn_events: Vec<(usize, Vec<Event>)> = file
        .parsed
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.in_test_mod && !f.body.is_empty())
        .map(|(i, f)| (i, events_of(&file.parsed, f)))
        .collect();
    for (_, evs) in &fn_events {
        for e in evs {
            let (field, ord) = match e {
                Event::AtomicWrite { field, ord, .. } => (field, *ord),
                Event::Cas { field, success, .. } => (field, *success),
                _ => continue,
            };
            if ord.releases() && !field.is_empty() && !publish_fields.contains(field) {
                publish_fields.push(field.clone());
            }
        }
    }

    for (fidx, evs) in &fn_events {
        let f = &file.parsed.fns[*fidx];
        // Pending (unpublished) cell writes, by line.
        let mut pending: Vec<(String, u32)> = Vec::new();
        // Relaxed load of a publish field with no acquire since.
        let mut tainted: Option<(String, u32)> = None;
        for e in evs {
            match e {
                Event::CellWrite { field, line } => pending.push((field.clone(), *line)),
                Event::AtomicWrite { field, ord, line }
                | Event::Cas {
                    field,
                    success: ord,
                    line,
                } => {
                    if ord.releases() {
                        pending.clear();
                    } else if *ord == Ord::Relaxed && !pending.is_empty() {
                        let (_, wline) = pending[0].clone();
                        out.push(finding(
                            "relaxed-publish",
                            file,
                            *line,
                            format!(
                                "relaxed atomic write to `{field}` in `{}` while the cell \
                                 write at line {wline} is unpublished; use Release (or \
                                 stronger) so poppers synchronize-with the slot contents",
                                f.name
                            ),
                        ));
                        // Treat as published to avoid cascading reports.
                        pending.clear();
                    }
                    if ord.acquires() {
                        tainted = None;
                    }
                }
                Event::AtomicLoad { field, ord, line } => {
                    if ord.acquires() {
                        tainted = None;
                    } else if *ord == Ord::Relaxed
                        && publish_fields.contains(field)
                        && tainted.is_none()
                    {
                        tainted = Some((field.clone(), *line));
                    }
                }
                Event::Fence { ord, .. } => {
                    if ord.releases() {
                        pending.clear();
                    }
                    if ord.acquires() {
                        tainted = None;
                    }
                }
                Event::CellRead { line, .. } => {
                    if let Some((lfield, lline)) = &tainted {
                        out.push(finding(
                            "acquire-pairing",
                            file,
                            *line,
                            format!(
                                "cell read in `{}` after relaxed load of publish field \
                                 `{lfield}` (line {lline}) with no acquire in between; \
                                 the read can observe pre-publication slot state",
                                f.name
                            ),
                        ));
                        tainted = None;
                    }
                }
                _ => {}
            }
        }
        for (field, wline) in pending {
            out.push(finding(
                "unreleased-write",
                file,
                wline,
                format!(
                    "cell write to `{field}` in `{}` is never published by a \
                     release-ordered atomic write in this function",
                    f.name
                ),
            ));
        }
    }
}

// ------------------------------------------------------------ hot-path

const ALLOC_METHODS: &[&str] = &[
    "with_capacity",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "into_boxed_slice",
    "reserve",
    "reserve_exact",
];
const ALLOC_NEW_PATHS: &[&str] = &["Box::", "Rc::", "Arc::"];
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Does this event allocate? Returns a short description if so.
fn alloc_pattern(e: &Event) -> Option<String> {
    match e {
        Event::Macro { name, .. } if ALLOC_MACROS.contains(&name.as_str()) => {
            Some(format!("{name}!"))
        }
        Event::Call { name, path, .. } => {
            if ALLOC_METHODS.contains(&name.as_str()) {
                Some(name.clone())
            } else if name == "new" && ALLOC_NEW_PATHS.contains(&path.as_str()) {
                Some(format!("{path}new"))
            } else if name == "from" && path == "String::" {
                Some("String::from".into())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Which crate (by `crates/<name>/` path segment) a file belongs to.
fn crate_of(path: &str) -> &str {
    if let Some(i) = path.find("crates/") {
        let rest = &path[i + "crates/".len()..];
        rest.split('/').next().unwrap_or("")
    } else {
        ""
    }
}

/// Resolve a call by name: unique non-test fn in the same file, else
/// unique in the same crate, else (for path-qualified calls only) unique
/// in the workspace. Method calls and bare calls never resolve across
/// crates — a `.write(..)` on a raw pointer must not resolve to some
/// unrelated crate's `write` function. Ambiguous or unknown names (std
/// methods, trait calls with many impls) resolve to nothing — the
/// dynamic `alloc_count` guard covers what name resolution cannot.
fn resolve_call(
    ws: &Workspace,
    from_file: usize,
    name: &str,
    qualified: bool,
) -> Option<(usize, usize)> {
    let mut same_file = Vec::new();
    let mut same_crate = Vec::new();
    let mut anywhere = Vec::new();
    let from_crate = crate_of(&ws.files[from_file].path);
    for (fi, file) in ws.files.iter().enumerate() {
        if file.skip {
            continue;
        }
        for (gi, g) in file.parsed.fns.iter().enumerate() {
            if g.name != name || g.in_test_mod || g.body.is_empty() {
                continue;
            }
            anywhere.push((fi, gi));
            if fi == from_file {
                same_file.push((fi, gi));
            } else if crate_of(&file.path) == from_crate {
                same_crate.push((fi, gi));
            }
        }
    }
    let buckets = if qualified {
        vec![same_file, same_crate, anywhere]
    } else {
        vec![same_file, same_crate]
    };
    for bucket in buckets {
        match bucket.len() {
            0 => continue,
            1 => return Some(bucket[0]),
            _ => return None,
        }
    }
    None
}

/// Is this function hot: annotated `#[atos_hot]` or config-denylisted.
fn is_hot(file: &SourceFile, f: &FnItem, cfg: &Config) -> bool {
    if f.in_test_mod || f.body.is_empty() {
        return false;
    }
    f.attrs.iter().any(|a| a.name == "atos_hot")
        || cfg.hot_fns(&file.path).contains(&f.name.as_str())
}

fn has_allow(f: &FnItem, rule_snake: &str) -> bool {
    f.attrs
        .iter()
        .any(|a| a.name == "allow_atos_lint" && a.args.iter().any(|x| x == rule_snake))
}

/// Rule 5: `hot-path-alloc` — no allocating construct in a hot function
/// or in any workspace function it calls directly (one level deep).
fn hot_path_alloc(ws: &Workspace, fi: usize, cfg: &Config, out: &mut Vec<Finding>) {
    let file = &ws.files[fi];
    for f in &file.parsed.fns {
        if !is_hot(file, f, cfg) {
            continue;
        }
        let evs = events_of(&file.parsed, f);
        for e in &evs {
            if let Some(pat) = alloc_pattern(e) {
                out.push(finding(
                    "hot-path-alloc",
                    file,
                    e.line(),
                    format!("allocating `{pat}` in hot-path fn `{}`", f.name),
                ));
            }
        }
        // One level deep: direct callees.
        let mut checked: Vec<&str> = Vec::new();
        for e in &evs {
            let (name, path, line) = match e {
                Event::Call { name, path, line } => (name.as_str(), path.as_str(), *line),
                _ => continue,
            };
            if checked.contains(&name) {
                continue;
            }
            checked.push(name);
            let Some((cfi, cgi)) = resolve_call(ws, fi, name, !path.is_empty()) else {
                continue;
            };
            let cfile = &ws.files[cfi];
            let callee = &cfile.parsed.fns[cgi];
            // Hot callees get their own direct report; suppressed callees
            // are vetted at their definition.
            if is_hot(cfile, callee, cfg) || has_allow(callee, "hot_path_alloc") {
                continue;
            }
            for ce in events_of(&cfile.parsed, callee) {
                if let Some(pat) = alloc_pattern(&ce) {
                    out.push(finding(
                        "hot-path-alloc",
                        file,
                        line,
                        format!(
                            "hot-path fn `{}` calls `{}` ({}:{}), which allocates \
                             (`{pat}` at line {})",
                            f.name,
                            callee.name,
                            cfile.path,
                            callee.line,
                            ce.line()
                        ),
                    ));
                }
            }
        }
    }
}

// ------------------------------------------------------- panic-in-kernel

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];
const PANIC_CALLS: &[&str] = &["unwrap", "expect"];

/// Rule 6: `panic-in-kernel` — no panicking construct in queue-protocol
/// and runtime-step functions. A panic between reservation and
/// publication strands the reservation for every other thread.
fn panic_in_kernel(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    let Some(scope) = cfg.kernel_scope(&file.path) else {
        return;
    };
    for f in &file.parsed.fns {
        if f.in_test_mod || !scope.fns.contains(&f.name.as_str()) {
            continue;
        }
        for e in events_of(&file.parsed, f) {
            match &e {
                Event::Macro { name, line } if PANIC_MACROS.contains(&name.as_str()) => {
                    out.push(finding(
                        "panic-in-kernel",
                        file,
                        *line,
                        format!("`{name}!` in protocol fn `{}` can abort mid-protocol", f.name),
                    ));
                }
                Event::Call { name, line, .. } if PANIC_CALLS.contains(&name.as_str()) => {
                    out.push(finding(
                        "panic-in-kernel",
                        file,
                        *line,
                        format!(
                            "`{name}()` in protocol fn `{}` can abort mid-protocol; \
                             handle the None/Err arm or use an unchecked accessor with \
                             a SAFETY argument",
                            f.name
                        ),
                    ));
                }
                Event::Index { base, line } if scope.forbid_index => {
                    out.push(finding(
                        "panic-in-kernel",
                        file,
                        *line,
                        format!(
                            "panicking index `{base}[..]` in protocol fn `{}`; use a \
                             bounds-proven unchecked accessor",
                            f.name
                        ),
                    ));
                }
                _ => {}
            }
        }
    }
}

// ------------------------------------------------------ sim-determinism

/// Rule 7: `sim-determinism` — the simulator must be a pure function of
/// its inputs: no wall-clock types, no default-hasher containers (their
/// iteration order is seeded per-process), no thread sleeps.
fn sim_determinism(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.is_sim_path(&file.path) {
        return;
    }
    let toks = &file.parsed.toks;
    let mut seen: Vec<(u32, String)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !cfg.sim_forbidden.contains(&t.text.as_str()) {
            continue;
        }
        // `sleep` only as a call; the rest also in type/use position.
        if t.text == "sleep" && !toks.get(i + 1).map(|n| n.is("(")).unwrap_or(false) {
            continue;
        }
        if let Some(f) = file.parsed.enclosing_fn(i) {
            if f.in_test_mod {
                continue;
            }
        }
        let key = (t.line, t.text.clone());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        out.push(finding(
            "sim-determinism",
            file,
            t.line,
            format!(
                "`{}` in deterministic-simulation code; virtual time and order-stable \
                 containers (BTreeMap/Vec) only",
                t.text
            ),
        ));
    }
}

// -------------------------------------------------------- missing-safety

/// Rule 8: `missing-safety` — every `unsafe` keyword needs a `SAFETY:`
/// comment on the same line or within the 8 preceding lines.
fn missing_safety(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut seen_lines: Vec<u32> = Vec::new();
    for (i, t) in file.parsed.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !t.is("unsafe") {
            continue;
        }
        // `unsafe fn` declarations document their contract with a
        // `# Safety` doc section; the SAFETY-comment convention applies to
        // the sites that *discharge* an obligation (blocks and impls).
        if file.parsed.toks.get(i + 1).is_some_and(|n| n.is("fn")) {
            continue;
        }
        if seen_lines.contains(&t.line) {
            continue;
        }
        seen_lines.push(t.line);
        if !file.parsed.comment_near(t.line, 8, "SAFETY") {
            out.push(finding(
                "missing-safety",
                file,
                t.line,
                "`unsafe` without a `SAFETY:` comment on the same line or within \
                 the 8 preceding lines"
                    .into(),
            ));
        }
    }
}
