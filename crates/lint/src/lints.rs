//! The lint rules.
//!
//! Each rule is a pure function from the parsed workspace to findings;
//! suppression (`#[allow_atos_lint(..)]` attributes, `atos-lint: allow(..)`
//! comments, `lint:skip-file` markers) is applied centrally by
//! [`crate::run`], so rules report every raw site they see.

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::model::{events_of, Event, Ord};
use crate::parse::{FnItem, TokKind};
use crate::summaries::{alloc_vetted, panic_vetted, Summaries, Why};
use crate::taint::{self, TaintResult};
use crate::{Finding, SourceFile, Workspace};

/// All rule identifiers, in report order.
pub const RULES: &[&str] = &[
    "facade-bypass",
    "relaxed-publish",
    "unreleased-write",
    "acquire-pairing",
    "hot-path-alloc",
    "panic-in-kernel",
    "sim-determinism",
    "missing-safety",
    "determinism-taint",
    "barrier-phase",
    "shard-escape",
    "unchecked-guard",
];

/// The interprocedural substrate the rules share: built once per run.
pub struct Analysis {
    /// Resolved call graph.
    pub graph: CallGraph,
    /// Per-function effect summaries at their fixed point.
    pub summaries: Summaries,
    /// Determinism-taint findings and wall-clock key inventory.
    pub taint: TaintResult,
    /// Wall time of each analysis phase (for `--timings`).
    pub phase_timings: Vec<(&'static str, std::time::Duration)>,
}

/// Build the call graph, effect summaries, and taint analysis.
pub fn analyze(ws: &Workspace, cfg: &Config) -> Analysis {
    let t0 = std::time::Instant::now();
    let graph = CallGraph::build(ws);
    let t1 = std::time::Instant::now();
    let summaries = Summaries::compute(ws, cfg, &graph);
    let t2 = std::time::Instant::now();
    let taint = taint::analyze(ws, cfg, &graph);
    let t3 = std::time::Instant::now();
    Analysis {
        graph,
        summaries,
        taint,
        phase_timings: vec![
            ("analysis: call graph", t1 - t0),
            ("analysis: effect summaries", t2 - t1),
            ("analysis: determinism taint", t3 - t2),
        ],
    }
}

/// Run every rule over the workspace (building the analysis internally).
pub fn run_all(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    run_with(ws, cfg, &analyze(ws, cfg))
}

/// Run every rule against a prebuilt [`Analysis`].
pub fn run_with(ws: &Workspace, cfg: &Config, an: &Analysis) -> Vec<Finding> {
    run_timed(ws, cfg, an).0
}

/// [`run_with`], also returning per-rule wall time (for `--timings`).
/// The three ordering rules share one pass and report as one row.
pub fn run_timed(
    ws: &Workspace,
    cfg: &Config,
    an: &Analysis,
) -> (Vec<Finding>, Vec<(&'static str, std::time::Duration)>) {
    let mut out = Vec::new();
    let mut timings: Vec<(&'static str, std::time::Duration)> = Vec::new();
    {
        let mut rule = |name: &'static str,
                        out: &mut Vec<Finding>,
                        f: &mut dyn FnMut(usize, &SourceFile, &mut Vec<Finding>)| {
            let t0 = std::time::Instant::now();
            for (fi, file) in ws.files.iter().enumerate() {
                if !file.skip {
                    f(fi, file, out);
                }
            }
            timings.push((name, t0.elapsed()));
        };
        rule("facade-bypass", &mut out, &mut |_, file, out| {
            facade_bypass(file, cfg, out)
        });
        rule("ordering (3 rules)", &mut out, &mut |_, file, out| {
            ordering_rules(file, cfg, out)
        });
        rule("hot-path-alloc", &mut out, &mut |fi, _, out| {
            hot_path_alloc(ws, fi, cfg, an, out)
        });
        rule("panic-in-kernel", &mut out, &mut |fi, _, out| {
            panic_in_kernel(ws, fi, cfg, an, out)
        });
        rule("sim-determinism", &mut out, &mut |_, file, out| {
            sim_determinism(file, cfg, out)
        });
        rule("missing-safety", &mut out, &mut |_, file, out| {
            missing_safety(file, out)
        });
        rule("barrier-phase", &mut out, &mut |_, file, out| {
            barrier_phase(file, cfg, out)
        });
        rule("shard-escape", &mut out, &mut |fi, _, out| {
            crate::shard::shard_escape(ws, fi, cfg, an, out)
        });
        rule("unchecked-guard", &mut out, &mut |fi, _, out| {
            crate::bounds::unchecked_guard(ws, fi, cfg, an, out)
        });
    }
    let t0 = std::time::Instant::now();
    out.extend(an.taint.findings.iter().cloned());
    timings.push(("determinism-taint", t0.elapsed()));
    (out, timings)
}

fn finding(rule: &'static str, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: file.path.clone(),
        line,
        message,
    }
}

// ---------------------------------------------------------------- facade

/// Rule 1: `facade-bypass` — only the facade, the model checker, and the
/// vendored shims may name `std::sync::atomic` / `std::cell::UnsafeCell`
/// directly. Everything else goes through `atos_queue::sync`, so the
/// whole workspace can be re-pointed at the checker's shadow types with
/// one `--cfg`.
fn facade_bypass(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.is_facade_allowed(&file.path) {
        return;
    }
    let toks = &file.parsed.toks;
    let mut seen_lines = Vec::new();
    for i in 0..toks.len().saturating_sub(4) {
        let root = toks[i].text.as_str();
        if (root == "std" || root == "core")
            && toks[i + 1].is("::")
            && toks[i + 3].is("::")
            && toks[i].kind == TokKind::Ident
        {
            let ns = toks[i + 2].text.as_str();
            let leaf = toks[i + 4].text.as_str();
            let hit = (ns == "sync" && leaf == "atomic")
                || (ns == "cell" && leaf == "UnsafeCell");
            if hit && !seen_lines.contains(&toks[i].line) {
                seen_lines.push(toks[i].line);
                out.push(finding(
                    "facade-bypass",
                    file,
                    toks[i].line,
                    format!(
                        "direct `{root}::{ns}::{}` use; go through the `atos_queue::sync` \
                         facade so `--cfg atos_check` can interpose the model checker",
                        if ns == "sync" { "atomic" } else { leaf }
                    ),
                ));
            }
        }
    }
}

// ------------------------------------------------------------- ordering

/// Rules 2–4: the ordering-dataflow pass. Per non-test function, walk the
/// event list tracking the publication protocol:
///
/// * `relaxed-publish` — a relaxed atomic *write* (store/RMW/CAS-success)
///   while a cell write is still unpublished. Readers that acquire-load
///   the counter would not synchronize-with the slot contents.
/// * `unreleased-write` — a cell write that is never followed by any
///   release-ordered atomic write in the same function: the data has no
///   publication edge at all.
/// * `acquire-pairing` — a relaxed load of a *publish field* (a field
///   that receives release-ordered writes somewhere in the file) followed
///   by a cell read with no intervening acquire: the read may observe
///   pre-publication slot state.
fn ordering_rules(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if cfg.is_ordering_exempt(&file.path) {
        return;
    }
    // Publish fields: receive a release-ordered atomic write in any
    // non-test fn of this file.
    let mut publish_fields: Vec<String> = Vec::new();
    let fn_events: Vec<(usize, Vec<Event>)> = file
        .parsed
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.in_test_mod && !f.body.is_empty())
        .map(|(i, f)| (i, events_of(&file.parsed, f)))
        .collect();
    for (_, evs) in &fn_events {
        for e in evs {
            let (field, ord) = match e {
                Event::AtomicWrite { field, ord, .. } => (field, *ord),
                Event::Cas { field, success, .. } => (field, *success),
                _ => continue,
            };
            if ord.releases() && !field.is_empty() && !publish_fields.contains(field) {
                publish_fields.push(field.clone());
            }
        }
    }

    for (fidx, evs) in &fn_events {
        let f = &file.parsed.fns[*fidx];
        // Pending (unpublished) cell writes, by line.
        let mut pending: Vec<(String, u32)> = Vec::new();
        // Relaxed load of a publish field with no acquire since.
        let mut tainted: Option<(String, u32)> = None;
        for e in evs {
            match e {
                Event::CellWrite { field, line } => pending.push((field.clone(), *line)),
                Event::AtomicWrite { field, ord, line }
                | Event::Cas {
                    field,
                    success: ord,
                    line,
                } => {
                    if ord.releases() {
                        pending.clear();
                    } else if *ord == Ord::Relaxed && !pending.is_empty() {
                        let (_, wline) = pending[0].clone();
                        out.push(finding(
                            "relaxed-publish",
                            file,
                            *line,
                            format!(
                                "relaxed atomic write to `{field}` in `{}` while the cell \
                                 write at line {wline} is unpublished; use Release (or \
                                 stronger) so poppers synchronize-with the slot contents",
                                f.name
                            ),
                        ));
                        // Treat as published to avoid cascading reports.
                        pending.clear();
                    }
                    if ord.acquires() {
                        tainted = None;
                    }
                }
                Event::AtomicLoad { field, ord, line } => {
                    if ord.acquires() {
                        tainted = None;
                    } else if *ord == Ord::Relaxed
                        && publish_fields.contains(field)
                        && tainted.is_none()
                    {
                        tainted = Some((field.clone(), *line));
                    }
                }
                Event::Fence { ord, .. } => {
                    if ord.releases() {
                        pending.clear();
                    }
                    if ord.acquires() {
                        tainted = None;
                    }
                }
                Event::CellRead { line, .. } => {
                    if let Some((lfield, lline)) = &tainted {
                        out.push(finding(
                            "acquire-pairing",
                            file,
                            *line,
                            format!(
                                "cell read in `{}` after relaxed load of publish field \
                                 `{lfield}` (line {lline}) with no acquire in between; \
                                 the read can observe pre-publication slot state",
                                f.name
                            ),
                        ));
                        tainted = None;
                    }
                }
                _ => {}
            }
        }
        for (field, wline) in pending {
            out.push(finding(
                "unreleased-write",
                file,
                wline,
                format!(
                    "cell write to `{field}` in `{}` is never published by a \
                     release-ordered atomic write in this function",
                    f.name
                ),
            ));
        }
    }
}

// ------------------------------------------------------------ hot-path

pub(crate) const ALLOC_METHODS: &[&str] = &[
    "with_capacity",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "into_boxed_slice",
    "reserve",
    "reserve_exact",
];
pub(crate) const ALLOC_NEW_PATHS: &[&str] = &["Box::", "Rc::", "Arc::"];
pub(crate) const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Does this event allocate? Returns a short description if so.
pub(crate) fn alloc_pattern(e: &Event) -> Option<String> {
    match e {
        Event::Macro { name, .. } if ALLOC_MACROS.contains(&name.as_str()) => {
            Some(format!("{name}!"))
        }
        Event::Call { name, path, .. } => {
            if ALLOC_METHODS.contains(&name.as_str()) {
                Some(name.clone())
            } else if name == "new" && ALLOC_NEW_PATHS.contains(&path.as_str()) {
                Some(format!("{path}new"))
            } else if name == "from" && path == "String::" {
                Some("String::from".into())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Is this function hot: annotated `#[atos_hot]` or config-denylisted.
pub(crate) fn is_hot(file: &SourceFile, f: &FnItem, cfg: &Config) -> bool {
    if f.in_test_mod || f.body.is_empty() {
        return false;
    }
    f.attrs.iter().any(|a| a.name == "atos_hot")
        || cfg.hot_fns(&file.path).contains(&f.name.as_str())
}

/// Rule 5: `hot-path-alloc` — no allocating construct in a hot function
/// or, transitively, in anything it calls through the resolved call
/// graph. A direct callee that allocates locally keeps the original
/// one-hop message; deeper chains spell out the call path. Callees
/// vetted at their own definition (hot themselves, `#[atos_alloc_ok]`,
/// or an allow) stop the walk.
fn hot_path_alloc(
    ws: &Workspace,
    fi: usize,
    cfg: &Config,
    an: &Analysis,
    out: &mut Vec<Finding>,
) {
    let file = &ws.files[fi];
    for (gi, f) in file.parsed.fns.iter().enumerate() {
        if !is_hot(file, f, cfg) {
            continue;
        }
        for e in events_of(&file.parsed, f) {
            if let Some(pat) = alloc_pattern(&e) {
                out.push(finding(
                    "hot-path-alloc",
                    file,
                    e.line(),
                    format!("allocating `{pat}` in hot-path fn `{}`", f.name),
                ));
            }
        }
        let mut checked: Vec<&str> = Vec::new();
        for site in an.graph.callees_of((fi, gi)) {
            if checked.contains(&site.name.as_str()) {
                continue;
            }
            checked.push(&site.name);
            if alloc_vetted(ws, cfg, site.callee) {
                continue;
            }
            let (cfi, cgi) = site.callee;
            let cfile = &ws.files[cfi];
            let callee = &cfile.parsed.fns[cgi];
            match an.summaries.of(site.callee).alloc {
                None => {}
                Some(Why::Local { .. }) => {
                    // Depth 1: report every local allocation in the callee.
                    for ce in events_of(&cfile.parsed, callee) {
                        if let Some(pat) = alloc_pattern(&ce) {
                            out.push(finding(
                                "hot-path-alloc",
                                file,
                                site.line,
                                format!(
                                    "hot-path fn `{}` calls `{}` ({}:{}), which allocates \
                                     (`{pat}` at line {})",
                                    f.name,
                                    callee.name,
                                    cfile.path,
                                    callee.line,
                                    ce.line()
                                ),
                            ));
                        }
                    }
                }
                Some(Why::Via { .. }) => {
                    let Some((hops, pat, pfile, pline)) =
                        an.summaries.chain(ws, site.callee, |e| e.alloc.clone())
                    else {
                        continue;
                    };
                    let chain: Vec<String> =
                        hops.iter().map(|(n, _, _)| format!("`{n}`")).collect();
                    out.push(finding(
                        "hot-path-alloc",
                        file,
                        site.line,
                        format!(
                            "hot-path fn `{}` calls `{}` ({}:{}), which allocates \
                             transitively via {} (`{pat}` at {pfile}:{pline})",
                            f.name,
                            callee.name,
                            cfile.path,
                            callee.line,
                            chain.join(" -> ")
                        ),
                    ));
                }
            }
        }
    }
}

// ------------------------------------------------------- panic-in-kernel

pub(crate) const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];
pub(crate) const PANIC_CALLS: &[&str] = &["unwrap", "expect"];

/// Rule 6: `panic-in-kernel` — no panicking construct in queue-protocol
/// and runtime-step functions, nor (transitively) in anything they call
/// through the resolved call graph. A panic between reservation and
/// publication strands the reservation for every other thread. Callees
/// vetted at their own definition (kernel-scope themselves, or carrying
/// an allow) stop the walk; panicking *indexing* stays a local judgment
/// (`forbid_index`) and is not propagated.
fn panic_in_kernel(
    ws: &Workspace,
    fi: usize,
    cfg: &Config,
    an: &Analysis,
    out: &mut Vec<Finding>,
) {
    let file = &ws.files[fi];
    let Some(scope) = cfg.kernel_scope(&file.path) else {
        return;
    };
    for (gi, f) in file.parsed.fns.iter().enumerate() {
        if f.in_test_mod || !scope.fns.contains(&f.name.as_str()) {
            continue;
        }
        let mut checked: Vec<&str> = Vec::new();
        for site in an.graph.callees_of((fi, gi)) {
            if checked.contains(&site.name.as_str()) {
                continue;
            }
            checked.push(&site.name);
            if panic_vetted(ws, cfg, site.callee) {
                continue;
            }
            if an.summaries.of(site.callee).panic.is_none() {
                continue;
            }
            let Some((hops, pat, pfile, pline)) =
                an.summaries.chain(ws, site.callee, |e| e.panic.clone())
            else {
                continue;
            };
            let (cfi, cgi) = site.callee;
            let cfile = &ws.files[cfi];
            let callee = &cfile.parsed.fns[cgi];
            let via = if hops.len() > 1 {
                let chain: Vec<String> =
                    hops.iter().map(|(n, _, _)| format!("`{n}`")).collect();
                format!(" via {}", chain.join(" -> "))
            } else {
                String::new()
            };
            out.push(finding(
                "panic-in-kernel",
                file,
                site.line,
                format!(
                    "protocol fn `{}` calls `{}` ({}:{}), which can panic{via} \
                     (`{pat}` at {pfile}:{pline}); outline the failure path and vet \
                     it, or handle the error arm",
                    f.name, callee.name, cfile.path, callee.line
                ),
            ));
        }
        for e in events_of(&file.parsed, f) {
            match &e {
                Event::Macro { name, line } if PANIC_MACROS.contains(&name.as_str()) => {
                    out.push(finding(
                        "panic-in-kernel",
                        file,
                        *line,
                        format!("`{name}!` in protocol fn `{}` can abort mid-protocol", f.name),
                    ));
                }
                Event::Call { name, line, .. } if PANIC_CALLS.contains(&name.as_str()) => {
                    out.push(finding(
                        "panic-in-kernel",
                        file,
                        *line,
                        format!(
                            "`{name}()` in protocol fn `{}` can abort mid-protocol; \
                             handle the None/Err arm or use an unchecked accessor with \
                             a SAFETY argument",
                            f.name
                        ),
                    ));
                }
                Event::Index { base, line } if scope.forbid_index => {
                    out.push(finding(
                        "panic-in-kernel",
                        file,
                        *line,
                        format!(
                            "panicking index `{base}[..]` in protocol fn `{}`; use a \
                             bounds-proven unchecked accessor",
                            f.name
                        ),
                    ));
                }
                _ => {}
            }
        }
    }
}

// ------------------------------------------------------ sim-determinism

/// Rule 7: `sim-determinism` — the simulator must be a pure function of
/// its inputs: no wall-clock types, no default-hasher containers (their
/// iteration order is seeded per-process), no thread sleeps.
fn sim_determinism(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.is_sim_path(&file.path) {
        return;
    }
    let toks = &file.parsed.toks;
    let mut seen: Vec<(u32, String)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !cfg.sim_forbidden.contains(&t.text.as_str()) {
            continue;
        }
        // `sleep` only as a call; the rest also in type/use position.
        if t.text == "sleep" && !toks.get(i + 1).map(|n| n.is("(")).unwrap_or(false) {
            continue;
        }
        if let Some(f) = file.parsed.enclosing_fn(i) {
            if f.in_test_mod {
                continue;
            }
        }
        let key = (t.line, t.text.clone());
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        out.push(finding(
            "sim-determinism",
            file,
            t.line,
            format!(
                "`{}` in deterministic-simulation code; virtual time and order-stable \
                 containers (BTreeMap/Vec) only",
                t.text
            ),
        ));
    }
}

// -------------------------------------------------------- missing-safety

/// Rule 8: `missing-safety` — every `unsafe` keyword needs a `SAFETY:`
/// comment on the same line or within the 8 preceding lines.
fn missing_safety(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut seen_lines: Vec<u32> = Vec::new();
    for (i, t) in file.parsed.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !t.is("unsafe") {
            continue;
        }
        // `unsafe fn` declarations document their contract with a
        // `# Safety` doc section; the SAFETY-comment convention applies to
        // the sites that *discharge* an obligation (blocks and impls).
        if file.parsed.toks.get(i + 1).is_some_and(|n| n.is("fn")) {
            continue;
        }
        if seen_lines.contains(&t.line) {
            continue;
        }
        seen_lines.push(t.line);
        if !file.parsed.comment_near(t.line, 8, "SAFETY") {
            out.push(finding(
                "missing-safety",
                file,
                t.line,
                "`unsafe` without a `SAFETY:` comment on the same line or within \
                 the 8 preceding lines"
                    .into(),
            ));
        }
    }
}

// --------------------------------------------------------- barrier-phase

/// One phase event in a window loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// `board.publish(..)` — cross-shard row handoff.
    Publish,
    /// `barrier.wait()` — the generation flip that publishes the board.
    Wait,
    /// `board.drain(..)` — absorbing rows published *before* the barrier.
    Drain,
    /// `sub.run_window(..)` — executing the window.
    Run,
}

/// Rule 10: `barrier-phase` — the sharded window loop must order its
/// phases `publish → barrier.wait → drain → barrier.wait → run_window`.
/// The ExchangeBoard's plain cell writes are published only by the
/// SpinBarrier's AcqRel generation flip, so a publish after the first
/// wait is invisible to this window's drains, a drain before it can read
/// torn rows, and running the window before the second wait races the
/// drains of slower shards. The scope (which file, which functions) is
/// configuration, like kernel scopes.
fn barrier_phase(file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    let Some(scope) = cfg.barrier_scope(&file.path) else {
        return;
    };
    for f in &file.parsed.fns {
        if f.in_test_mod || !scope.fns.contains(&f.name.as_str()) {
            continue;
        }
        let mut seq: Vec<(Phase, u32)> = Vec::new();
        for e in events_of(&file.parsed, f) {
            // `board.drain(..)` arrives as a method call; `barrier.wait()`
            // likewise. `recv` filters out unrelated `.drain(..)` /
            // `.wait()` calls on other receivers (outbox drains, condvars).
            let Event::Call {
                name, recv, line, ..
            } = &e
            else {
                continue;
            };
            let phase = match name.as_str() {
                "publish" if recv.contains("board") => Phase::Publish,
                "wait" if recv.contains("barrier") => Phase::Wait,
                "drain" if recv.contains("board") => Phase::Drain,
                "run_window" => Phase::Run,
                _ => continue,
            };
            seq.push((phase, *line));
        }
        let count = |p: Phase| seq.iter().filter(|(q, _)| *q == p).count();
        let missing: Vec<&str> = [
            (Phase::Publish, 1, "publish"),
            (Phase::Wait, 2, "two barrier waits"),
            (Phase::Drain, 1, "drain"),
            (Phase::Run, 1, "run_window"),
        ]
        .iter()
        .filter(|(p, n, _)| count(*p) < *n)
        .map(|(_, _, what)| *what)
        .collect();
        if !missing.is_empty() {
            out.push(finding(
                "barrier-phase",
                file,
                f.line,
                format!(
                    "window loop `{}` misses: {} (expected publish -> barrier.wait \
                     -> drain -> barrier.wait -> run_window)",
                    f.name,
                    missing.join(", ")
                ),
            ));
            continue;
        }
        let first_wait = seq.iter().position(|(p, _)| *p == Phase::Wait).unwrap();
        let second_wait = first_wait
            + 1
            + seq[first_wait + 1..]
                .iter()
                .position(|(p, _)| *p == Phase::Wait)
                .unwrap();
        for (i, (p, line)) in seq.iter().enumerate() {
            let violation = match p {
                Phase::Publish if i > first_wait => Some(
                    "publish after the first barrier wait: the row is invisible \
                     to this window's drains",
                ),
                Phase::Drain if i < first_wait => Some(
                    "drain before the first barrier wait: the board is not yet \
                     published and the read can tear",
                ),
                Phase::Run if i < second_wait => Some(
                    "run_window before the second barrier wait: races the drains \
                     of slower shards",
                ),
                _ => None,
            };
            if let Some(v) = violation {
                out.push(finding(
                    "barrier-phase",
                    file,
                    *line,
                    format!("{v} (in window loop `{}`)", f.name),
                ));
            }
        }
    }
}
