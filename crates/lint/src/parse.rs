//! A small Rust lexer and item scanner.
//!
//! The workspace builds offline with no registry access, so `syn` is not
//! available; this module provides the fraction of it the lints need: a
//! token stream with line numbers, comment capture (for `SAFETY:` and
//! suppression markers), and extraction of `use` declarations and function
//! items with their attributes, signatures, and body token ranges.
//!
//! It is deliberately *not* a full parser. The grammar subset it
//! understands — brace/paren nesting, attributes, `fn` items at any depth,
//! string/char/lifetime disambiguation — is exactly what the rules in
//! [`crate::lints`] consume, and the fixture golden tests pin its
//! behavior. Anything it cannot classify it skips, so unknown syntax
//! degrades to fewer findings, never to crashes.

/// Token kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation (single char, except `::` which is one token).
    Punct,
    /// String/char/numeric literal (content not preserved verbatim for
    /// strings — they only matter as "not code").
    Lit,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Kind.
    pub kind: TokKind,
    /// Token text (`"::"`, `"fn"`, `"("`, …). Literals are reduced to a
    /// placeholder so their contents can never pattern-match as code.
    pub text: String,
    /// For string literals only: the literal's contents. Kept out of
    /// `text` so string contents can never pattern-match as code, but
    /// available to passes that need the value (the determinism-taint
    /// pass reads metric *keys* out of `reg.set("key", …)` calls).
    pub str_lit: Option<String>,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }
}

/// One captured comment (line or block), used for `SAFETY:` checks and
/// `// atos-lint: allow(...)` suppressions.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Full comment text including markers.
    pub text: String,
}

/// Lexer output: code tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in order.
    pub toks: Vec<Tok>,
    /// Comments in order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    let push = |out: &mut Lexed, line: u32, kind: TokKind, text: String| {
        out.toks.push(Tok {
            line,
            kind,
            text,
            str_lit: None,
        });
    };
    let push_str = |out: &mut Lexed, line: u32, contents: String| {
        out.toks.push(Tok {
            line,
            kind: TokKind::Lit,
            text: "\"…\"".into(),
            str_lit: Some(contents),
        });
    };

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: b[start..i].iter().collect(),
                });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: b[start..i.min(n)].iter().collect(),
                });
            }
            '"' => {
                // String literal (escapes honored; contents captured).
                let start_line = line;
                let start = i + 1;
                i += 1;
                while i < n {
                    match b[i] {
                        '\\' => i += 2,
                        '"' => break,
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                let contents: String = b[start..i.min(n)].iter().collect();
                if i < n {
                    i += 1; // closing quote
                }
                push_str(&mut out, start_line, contents);
            }
            'r' if i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') => {
                // Raw string r"..." / r#"..."# (any hash count).
                let start_line = line;
                let mut j = i + 1;
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    j += 1;
                    let start = j;
                    let mut end = j;
                    'raw: while j < n {
                        if b[j] == '\n' {
                            line += 1;
                        } else if b[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                end = j;
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                        end = j;
                    }
                    i = j;
                    let contents: String = b[start..end.min(n)].iter().collect();
                    push_str(&mut out, start_line, contents);
                } else {
                    // `r#ident` raw identifier or plain `r`.
                    let start = i;
                    i += 1;
                    if i < n && b[i] == '#' {
                        i += 1;
                    }
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    push(&mut out, line, TokKind::Ident, b[start..i].iter().collect());
                }
            }
            '\'' => {
                // Char literal vs lifetime: 'x' has a closing quote within
                // a couple of chars; 'ident does not.
                let is_char = if i + 1 < n && b[i + 1] == '\\' {
                    true
                } else {
                    i + 2 < n && b[i + 2] == '\''
                };
                if is_char {
                    let start_line = line;
                    i += 1;
                    while i < n {
                        match b[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    push(&mut out, start_line, TokKind::Lit, "'…'".into());
                } else {
                    // Lifetime: consume 'ident as one token.
                    let start = i;
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    push(&mut out, line, TokKind::Lit, b[start..i].iter().collect());
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // `0..10` range: stop before `..`.
                    if b[i] == '.' && i + 1 < n && b[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
                push(&mut out, line, TokKind::Lit, b[start..i].iter().collect());
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                push(&mut out, line, TokKind::Ident, b[start..i].iter().collect());
            }
            ':' if i + 1 < n && b[i + 1] == ':' => {
                push(&mut out, line, TokKind::Punct, "::".into());
                i += 2;
            }
            _ => {
                push(&mut out, line, TokKind::Punct, c.to_string());
                i += 1;
            }
        }
    }
    out
}

/// A `use` declaration, flattened to its path prefix text (group imports
/// keep the common prefix: `use std::sync::atomic::{A, B}` →
/// `std::sync::atomic::{A,B}`).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// Path text with whitespace removed.
    pub path: String,
}

/// One parsed attribute, e.g. `atos_hot` or `allow_atos_lint(panic_in_kernel)`.
#[derive(Debug, Clone)]
pub struct Attr {
    /// Attribute path (first ident), e.g. `allow_atos_lint`.
    pub name: String,
    /// Raw argument idents inside the parens (empty if none).
    pub args: Vec<String>,
}

/// A function item with its body as a token range.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Attributes immediately preceding the item.
    pub attrs: Vec<Attr>,
    /// Token index range of the body (inside the outer braces, exclusive
    /// of the braces themselves). Empty for bodyless decls.
    pub body: std::ops::Range<usize>,
    /// Whether this item is (transitively) inside a `#[cfg(test)]` module.
    pub in_test_mod: bool,
    /// The `Self` type name if this fn sits inside an `impl` block
    /// (`impl Foo { … }` or `impl Trait for Foo { … }` → `Foo`).
    pub self_ty: Option<String>,
    /// Does the signature take `self` (method rather than associated fn)?
    pub has_self: bool,
    /// Parameter binding names, in order, `self` excluded. Complex
    /// patterns record the identifier immediately left of the `:`, which
    /// is the binding for the `name: Type` common case.
    pub params: Vec<String>,
}

/// Parsed view of one source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Code tokens.
    pub toks: Vec<Tok>,
    /// Comments.
    pub comments: Vec<Comment>,
    /// `use` declarations.
    pub uses: Vec<UseDecl>,
    /// Function items (all nesting depths, including inside impls and
    /// test modules).
    pub fns: Vec<FnItem>,
    /// Import aliases: local name → full path, from `use` declarations.
    /// `use a::b::c` maps `c → a::b::c`; `use a::b as x` maps `x → a::b`;
    /// groups and `self` items are expanded. Globs contribute nothing.
    pub aliases: std::collections::BTreeMap<String, String>,
}

impl ParsedFile {
    /// Does any comment covering `line` (or one of the `back` preceding
    /// lines) contain `needle`?
    pub fn comment_near(&self, line: u32, back: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(back);
        self.comments
            .iter()
            .any(|c| c.end_line >= lo && c.line <= line && c.text.contains(needle))
    }

    /// The innermost function whose body token range contains `tok_idx`.
    pub fn enclosing_fn(&self, tok_idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&tok_idx))
            .min_by_key(|f| f.body.len())
    }
}

/// Parse one file.
pub fn parse(src: &str) -> ParsedFile {
    let Lexed { toks, mut comments } = lex(src);

    // Coalesce runs of `//` comments on consecutive lines into single
    // blocks, so a marker on any line of a comment paragraph is found by
    // a windowed search anchored at the paragraph's last line (the one
    // adjacent to the code it annotates).
    let mut merged: Vec<Comment> = Vec::new();
    for c in comments.drain(..) {
        match merged.last_mut() {
            Some(prev) if prev.end_line + 1 == c.line => {
                prev.end_line = c.end_line;
                prev.text.push('\n');
                prev.text.push_str(&c.text);
            }
            _ => merged.push(c),
        }
    }
    let comments = merged;
    let mut uses = Vec::new();
    let mut fns = Vec::new();
    let mut aliases = std::collections::BTreeMap::new();

    // Pass 1: use declarations (flattened path text, plus the structured
    // alias map for call resolution).
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].is("use") {
            let line = toks[i].line;
            let mut path = String::new();
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is(";") {
                path.push_str(&toks[j].text);
                j += 1;
            }
            collect_use_aliases(&toks[i + 1..j], "", &mut aliases);
            uses.push(UseDecl { line, path });
            i = j;
        }
        i += 1;
    }

    // Pass 2: attributes + fn items + test-module and impl-block
    // tracking.
    //
    // `mod_stack` holds brace depths of `#[cfg(test)] mod` bodies we are
    // inside; `depth` counts `{` nesting. `impl_spans` records each impl
    // block's body token range and `Self` type name, so fns can be
    // assigned their `self_ty` after the scan.
    let mut pending_attrs: Vec<Attr> = Vec::new();
    let mut pending_cfg_test = false;
    let mut test_mod_depths: Vec<usize> = Vec::new();
    let mut impl_spans: Vec<(std::ops::Range<usize>, String)> = Vec::new();
    let mut fn_tok_idx: Vec<usize> = Vec::new();
    let mut depth: usize = 0;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is("#") && i + 1 < toks.len() && toks[i + 1].is("[") {
            // Capture one attribute: `#[ name (args) ]` with arbitrary
            // nesting inside.
            let mut j = i + 2;
            let mut name = String::new();
            let mut args = Vec::new();
            let mut bracket = 1usize;
            let mut text = String::new();
            while j < toks.len() && bracket > 0 {
                match toks[j].text.as_str() {
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    _ => {}
                }
                if bracket > 0 {
                    if name.is_empty() && toks[j].kind == TokKind::Ident {
                        name = toks[j].text.clone();
                    } else if toks[j].kind == TokKind::Ident {
                        args.push(toks[j].text.clone());
                    }
                    text.push_str(&toks[j].text);
                }
                j += 1;
            }
            if name == "cfg" && args.iter().any(|a| a == "test") {
                pending_cfg_test = true;
            }
            pending_attrs.push(Attr { name, args });
            i = j;
            continue;
        }
        match t.text.as_str() {
            // `fn name` — the guard skips `fn` keyword uses in types
            // (`fn(`) which have no following ident.
            "fn" if i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident => {
                let name = toks[i + 1].text.clone();
                let line = t.line;
                // Find the body `{` at angle/paren depth 0, stopping
                // at `;` (bodyless decl). Along the way, scan the
                // signature parens for `self` and parameter bindings
                // (the ident immediately left of a `:` at paren depth 1).
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut body = 0..0;
                let mut has_self = false;
                let mut params = Vec::new();
                let mut in_sig = true;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => paren += 1,
                        ")" | "]" => {
                            paren -= 1;
                            if paren == 0 {
                                in_sig = false;
                            }
                        }
                        "self" if in_sig && paren == 1 => has_self = true,
                        ":" if in_sig && paren == 1 => {
                            if let Some(prev) = toks.get(j - 1) {
                                if prev.kind == TokKind::Ident && !prev.is("self") {
                                    params.push(prev.text.clone());
                                }
                            }
                        }
                        ";" if paren == 0 => break,
                        "{" if paren == 0 => {
                            // Matching close brace.
                            let start = j + 1;
                            let mut d = 1usize;
                            let mut k = start;
                            while k < toks.len() && d > 0 {
                                match toks[k].text.as_str() {
                                    "{" => d += 1,
                                    "}" => d -= 1,
                                    _ => {}
                                }
                                k += 1;
                            }
                            body = start..k.saturating_sub(1);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                fn_tok_idx.push(i);
                fns.push(FnItem {
                    name,
                    line,
                    attrs: std::mem::take(&mut pending_attrs),
                    body,
                    in_test_mod: !test_mod_depths.is_empty() || pending_cfg_test,
                    self_ty: None,
                    has_self,
                    params,
                });
                pending_cfg_test = false;
                // Do NOT skip the body: nested fns are items too.
                i += 1;
                continue;
            }
            // An impl block header. The whitelist on the previous token
            // excludes `impl Trait` in type position (`-> impl Fn()`,
            // `x: impl Into<…>`), which is always preceded by `>`/`(`/
            // `,`/`:`/`&`/`=` rather than an item boundary.
            "impl"
                if i == 0
                    || matches!(toks[i - 1].text.as_str(), "}" | "{" | ";" | "]" | "unsafe") =>
            {
                // Self type: last path ident at angle depth 0 before the
                // body `{`; `for` (trait impls) and `where` reset/stop
                // the collection.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut self_ty = String::new();
                let mut stop_collect = false;
                while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                    match toks[j].text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "for" if angle == 0 => self_ty.clear(),
                        "where" if angle == 0 => stop_collect = true,
                        _ if angle == 0
                            && !stop_collect
                            && toks[j].kind == TokKind::Ident =>
                        {
                            self_ty = toks[j].text.clone();
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].is("{") && !self_ty.is_empty() {
                    let start = j + 1;
                    let mut d = 1usize;
                    let mut k = start;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    impl_spans.push((start..k.saturating_sub(1), self_ty));
                }
                // Do not skip: fns inside the impl are scanned normally.
                pending_attrs.clear();
            }
            "mod" => {
                if pending_cfg_test {
                    // The module body opens at the next `{` (or it's a
                    // `mod name;` decl).
                    let mut j = i + 1;
                    while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                        j += 1;
                    }
                    if j < toks.len() && toks[j].is("{") {
                        test_mod_depths.push(depth);
                    }
                    pending_cfg_test = false;
                }
                pending_attrs.clear();
            }
            "{" => {
                depth += 1;
                pending_attrs.clear();
            }
            "}" => {
                depth = depth.saturating_sub(1);
                if test_mod_depths.last() == Some(&depth) {
                    test_mod_depths.pop();
                }
                pending_attrs.clear();
            }
            ";" => {
                pending_attrs.clear();
                pending_cfg_test = false;
            }
            _ => {}
        }
        i += 1;
    }

    // Assign each fn its innermost enclosing impl's `Self` type.
    for (f, &at) in fns.iter_mut().zip(&fn_tok_idx) {
        f.self_ty = impl_spans
            .iter()
            .filter(|(span, _)| span.contains(&at))
            .min_by_key(|(span, _)| span.len())
            .map(|(_, ty)| ty.clone());
    }

    ParsedFile {
        toks,
        comments,
        uses,
        fns,
        aliases,
    }
}

/// Expand one `use` tree (the tokens between `use` and `;`) into the
/// alias map. Handles plain paths, `as` renames, nested `{…}` groups,
/// and `self` group items; `*` globs are skipped.
fn collect_use_aliases(
    toks: &[Tok],
    prefix: &str,
    out: &mut std::collections::BTreeMap<String, String>,
) {
    // Leading segments up to a group/rename/end.
    let mut path = prefix.to_string();
    let mut last_seg = String::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is("{") {
            // Group: split the balanced region on top-level commas and
            // recurse with the accumulated prefix.
            let mut d = 1usize;
            let mut j = i + 1;
            let mut item_start = j;
            while j < toks.len() && d > 0 {
                match toks[j].text.as_str() {
                    "{" => d += 1,
                    "}" => d -= 1,
                    "," if d == 1 => {
                        collect_use_aliases(&toks[item_start..j], &path, out);
                        item_start = j + 1;
                    }
                    _ => {}
                }
                j += 1;
            }
            let item_end = j.saturating_sub(1).max(item_start);
            collect_use_aliases(&toks[item_start..item_end], &path, out);
            return;
        }
        if t.is("as") {
            // `path as rename`.
            if let Some(rename) = toks.get(i + 1) {
                if !path.is_empty() {
                    out.insert(rename.text.clone(), path);
                }
            }
            return;
        }
        if t.is("*") {
            return; // glob: contributes no aliases
        }
        if t.kind == TokKind::Ident {
            if t.is("self") {
                // `{self, …}` item: the prefix's own last segment.
                if let Some(seg) = prefix.rsplit("::").next() {
                    if !seg.is_empty() {
                        out.insert(seg.to_string(), prefix.to_string());
                    }
                }
                return;
            }
            if t.is("pub") {
                i += 1;
                continue; // `pub use` re-export
            }
            last_seg = t.text.clone();
            if !path.is_empty() {
                path.push_str("::");
            }
            path.push_str(&t.text);
        }
        i += 1;
    }
    if !last_seg.is_empty() {
        out.insert(last_seg, path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_strings_comments_lifetimes() {
        let src = r##"
// a comment with unsafe { inside }
fn f<'a>(x: &'a str) -> char {
    let _s = "quoted } brace";
    let _r = r#"raw " str"#;
    'x'
}
"##;
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        // No brace tokens leaked from the string literals.
        let braces = l.toks.iter().filter(|t| t.is("{") || t.is("}")).count();
        assert_eq!(braces, 2, "{:?}", l.toks);
    }

    #[test]
    fn finds_use_decls() {
        let p = parse("use std::sync::atomic::{AtomicU64, Ordering};\nuse foo::bar;\n");
        assert_eq!(p.uses.len(), 2);
        assert!(p.uses[0].path.starts_with("std::sync::atomic::"));
        assert_eq!(p.uses[0].line, 1);
    }

    #[test]
    fn finds_fns_with_attrs_and_bodies() {
        let src = r#"
impl Foo {
    #[atos_hot]
    #[allow_atos_lint(panic_in_kernel)]
    pub fn step(&mut self, pe: usize) -> u64 {
        self.inner(pe)
    }
}
#[cfg(test)]
mod tests {
    fn helper() { nested(); }
}
"#;
        let p = parse(src);
        let step = p.fns.iter().find(|f| f.name == "step").unwrap();
        assert_eq!(step.attrs.len(), 2);
        assert_eq!(step.attrs[0].name, "atos_hot");
        assert_eq!(step.attrs[1].name, "allow_atos_lint");
        assert_eq!(step.attrs[1].args, vec!["panic_in_kernel"]);
        assert!(!step.in_test_mod);
        assert!(!step.body.is_empty());
        let helper = p.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.in_test_mod);
    }

    #[test]
    fn nested_fn_items_are_separate() {
        let src = "fn outer() { fn inner() { x(); } inner(); }";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        let outer = &p.fns[0];
        let inner = &p.fns[1];
        assert!(outer.body.start < inner.body.start && inner.body.end <= outer.body.end);
    }

    #[test]
    fn comment_near_detects_safety() {
        let src = "fn f() {\n    // SAFETY: fine.\n    unsafe { g() }\n}\n";
        let p = parse(src);
        assert!(p.comment_near(3, 2, "SAFETY:"));
        assert!(!p.comment_near(1, 0, "SAFETY:"));
    }

    #[test]
    fn impl_blocks_give_fns_a_self_ty() {
        let src = r#"
impl Wheel {
    fn push(&mut self, t: u64) {}
    fn capacity(hint: usize) -> usize { hint }
}
impl Iterator for Drain<'_> {
    fn next(&mut self) -> Option<u64> { None }
}
fn free(x: u64) -> impl Fn() -> u64 {
    move || x
}
"#;
        let p = parse(src);
        let push = p.fns.iter().find(|f| f.name == "push").unwrap();
        assert_eq!(push.self_ty.as_deref(), Some("Wheel"));
        assert!(push.has_self);
        assert_eq!(push.params, vec!["t"]);
        let cap = p.fns.iter().find(|f| f.name == "capacity").unwrap();
        assert_eq!(cap.self_ty.as_deref(), Some("Wheel"));
        assert!(!cap.has_self);
        assert_eq!(cap.params, vec!["hint"]);
        let next = p.fns.iter().find(|f| f.name == "next").unwrap();
        assert_eq!(next.self_ty.as_deref(), Some("Drain"));
        let free = p.fns.iter().find(|f| f.name == "free").unwrap();
        assert_eq!(free.self_ty, None);
        assert_eq!(free.params, vec!["x"]);
    }

    #[test]
    fn use_aliases_cover_renames_and_groups() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering as O};\n\
                   use core::cell::UnsafeCell as RawCell;\n\
                   use atos_queue::stats::{self, global_snapshot};\n\
                   use atos_core::prelude::*;\n";
        let p = parse(src);
        assert_eq!(
            p.aliases.get("AtomicU64").map(String::as_str),
            Some("std::sync::atomic::AtomicU64")
        );
        assert_eq!(
            p.aliases.get("O").map(String::as_str),
            Some("std::sync::atomic::Ordering")
        );
        assert_eq!(
            p.aliases.get("RawCell").map(String::as_str),
            Some("core::cell::UnsafeCell")
        );
        assert_eq!(
            p.aliases.get("stats").map(String::as_str),
            Some("atos_queue::stats")
        );
        assert_eq!(
            p.aliases.get("global_snapshot").map(String::as_str),
            Some("atos_queue::stats::global_snapshot")
        );
        assert!(!p.aliases.keys().any(|k| k == "*"));
    }

    #[test]
    fn string_literal_contents_are_captured() {
        let p = parse(r##"fn f() { reg.set("queue.cas_retries", v); let _r = r#"raw"#; }"##);
        let lits: Vec<&str> = p
            .toks
            .iter()
            .filter_map(|t| t.str_lit.as_deref())
            .collect();
        assert_eq!(lits, vec!["queue.cas_retries", "raw"]);
    }

    #[test]
    fn cfg_test_fn_marked_without_mod() {
        let src = "#[cfg(test)]\nfn only_in_tests() {}\nfn prod() {}\n";
        let p = parse(src);
        assert!(p.fns[0].in_test_mod);
        assert!(!p.fns[1].in_test_mod);
    }
}
