//! Property-based tests for the queue family: semantic invariants over
//! arbitrary operation sequences, plus randomized multi-threaded
//! conservation checks.

use proptest::prelude::*;

use atos_queue::broker::BrokerQueue;
use atos_queue::cas::CasQueue;
use atos_queue::counter::CounterQueue;
use atos_queue::{ConcurrentQueue, PopState};

/// Drive any queue single-threaded with an arbitrary push/pop script and
/// check exact FIFO semantics against a model VecDeque.
fn check_fifo_model<Q: ConcurrentQueue<u64>>(q: &Q, script: &[(bool, u8)]) {
    let mut model: std::collections::VecDeque<u64> = Default::default();
    let mut st = PopState::new();
    let mut next = 0u64;
    let mut out = Vec::new();
    for &(is_push, amount) in script {
        let k = amount as usize % 40 + 1;
        if is_push {
            let items: Vec<u64> = (next..next + k as u64).collect();
            next += k as u64;
            if q.push_group(&items).is_ok() {
                model.extend(items);
            }
        } else {
            out.clear();
            let got = q.pop_group(&mut st, k, &mut out);
            assert!(got <= k);
            for &v in &out[..got] {
                assert_eq!(Some(v), model.pop_front(), "FIFO order violated");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn counter_queue_is_fifo(script in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..200)) {
        let q = CounterQueue::with_capacity(16 * 1024);
        check_fifo_model(&q, &script);
    }

    #[test]
    fn cas_queue_is_fifo(script in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..200)) {
        let q = CasQueue::with_capacity(16 * 1024);
        check_fifo_model(&q, &script);
    }

    #[test]
    fn broker_queue_is_fifo(script in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..200)) {
        let q = BrokerQueue::with_capacity(16 * 1024);
        check_fifo_model(&q, &script);
    }

    /// Arena overflow never corrupts already-queued items.
    #[test]
    fn counter_overflow_preserves_prefix(cap in 1usize..64, extra in 1usize..64) {
        let q = CounterQueue::with_capacity(cap);
        let first: Vec<u64> = (0..cap as u64).collect();
        q.push_group(&first).unwrap();
        let over: Vec<u64> = (0..extra as u64).map(|v| v + 1000).collect();
        prop_assert!(q.push_group(&over).is_err());
        let mut st = PopState::new();
        let mut out = Vec::new();
        while q.pop_group(&mut st, 8, &mut out) > 0 {}
        prop_assert_eq!(out, first);
    }

    /// Randomized concurrent conservation: P producers push disjoint
    /// ranges in arbitrary group sizes, C consumers drain; every item is
    /// seen exactly once.
    #[test]
    fn counter_concurrent_conservation(
        producers in 1usize..5,
        consumers in 1usize..5,
        per in 64usize..512,
        group in 1usize..64,
    ) {
        let total = producers * per;
        let q = std::sync::Arc::new(CounterQueue::<u64>::with_capacity(total));
        let mut harvested: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|s| {
            for t in 0..producers {
                let q = q.clone();
                s.spawn(move || {
                    let items: Vec<u64> = (0..per as u64).map(|i| (t * per) as u64 + i).collect();
                    for chunk in items.chunks(group) {
                        q.push_group(chunk).unwrap();
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..consumers {
                let q = q.clone();
                handles.push(s.spawn(move || {
                    let mut st = PopState::new();
                    let mut mine = Vec::new();
                    loop {
                        let got = q.pop_group(&mut st, group, &mut mine);
                        if got == 0 {
                            if q.published() == total as u64 && q.is_empty() {
                                st.abandon();
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                    mine
                }));
            }
            for h in handles {
                harvested.push(h.join().unwrap());
            }
        });
        let mut seen: Vec<u64> = harvested.into_iter().flatten().collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..total as u64).collect();
        prop_assert_eq!(seen, expect);
    }
}

// The three families agree on any single-threaded script (differential
// test: same script, same results).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn families_agree(script in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..120)) {
        fn run<Q: ConcurrentQueue<u64>>(q: &Q, script: &[(bool, u8)]) -> Vec<u64> {
            let mut st = PopState::new();
            let mut popped = Vec::new();
            let mut next = 0u64;
            for &(is_push, amount) in script {
                let k = amount as usize % 16 + 1;
                if is_push {
                    let items: Vec<u64> = (next..next + k as u64).collect();
                    next += k as u64;
                    let _ = q.push_group(&items);
                } else {
                    q.pop_group(&mut st, k, &mut popped);
                }
            }
            popped
        }
        let counter = CounterQueue::with_capacity(8192);
        let cas = CasQueue::with_capacity(8192);
        let broker = BrokerQueue::with_capacity(8192);
        let a = run(&counter, &script);
        let b = run(&cas, &script);
        let c = run(&broker, &script);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }
}
