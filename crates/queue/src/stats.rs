//! Contention observability counters for the queue families.
//!
//! The paper's Figure 1 argument is *statistical* — "CAS failure
//! probability increases significantly with increasing contention" — so
//! the queues count the contention events themselves: CAS retry loop
//! iterations ([`crate::cas::CasQueue`]), pop-reservation overshoots past
//! the publication frontier ([`crate::counter::CounterQueue`]), and
//! occupancy high-water marks (both). Counters are per-queue [`Padded`]
//! relaxed atomics updated off the reservation fast path (retries are
//! tallied locally and added once per operation), so instrumentation does
//! not itself add a contended cache line to the protocol under study.
//!
//! On drop each queue folds its totals into a process-wide tally,
//! [`global_snapshot`], which the bench binaries' `--metrics` flag dumps.

// atos-lint: allow(facade_bypass) — observability counters are deliberately
// invisible to the model checker (they carry no synchronization and would
// only multiply the explored state space), so they stay on raw atomics.
use core::sync::atomic::{AtomicU64, Ordering};

use crate::padded::Padded;

/// Per-queue contention counters. All updates are `Relaxed`: these are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct ContentionCounters {
    cas_retries: Padded<AtomicU64>,
    reservation_conflicts: Padded<AtomicU64>,
    occupancy_hwm: Padded<AtomicU64>,
}

impl ContentionCounters {
    /// Fresh zeroed counters.
    pub const fn new() -> Self {
        ContentionCounters {
            cas_retries: Padded::new(AtomicU64::new(0)),
            reservation_conflicts: Padded::new(AtomicU64::new(0)),
            occupancy_hwm: Padded::new(AtomicU64::new(0)),
        }
    }

    /// Add `n` failed compare-exchange iterations (no-op for `n == 0`, the
    /// uncontended common case, so the counter line stays cold).
    #[inline]
    pub fn add_cas_retries(&self, n: u64) {
        if n > 0 {
            self.cas_retries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one pop reservation that overshot the publication frontier
    /// (the claim could not be filled immediately).
    #[inline]
    pub fn add_reservation_conflict(&self) {
        self.reservation_conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// Raise the occupancy high-water mark to `occupancy` if larger.
    #[inline]
    pub fn raise_occupancy(&self, occupancy: u64) {
        self.occupancy_hwm.fetch_max(occupancy, Ordering::Relaxed);
    }

    /// Copy out the current values.
    pub fn snapshot(&self) -> ContentionSnapshot {
        ContentionSnapshot {
            cas_retries: self.cas_retries.load(Ordering::Relaxed),
            reservation_conflicts: self.reservation_conflicts.load(Ordering::Relaxed),
            occupancy_hwm: self.occupancy_hwm.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters (exclusive access, used by `reset`).
    pub fn clear(&mut self) {
        *self.cas_retries.get_mut() = 0;
        *self.reservation_conflicts.get_mut() = 0;
        *self.occupancy_hwm.get_mut() = 0;
    }
}

/// A point-in-time copy of one queue's (or the process's) counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContentionSnapshot {
    /// Failed compare-exchange iterations across all CAS retry loops.
    pub cas_retries: u64,
    /// Pop reservations that overshot the publication frontier.
    pub reservation_conflicts: u64,
    /// Largest published-minus-reserved occupancy ever observed.
    pub occupancy_hwm: u64,
}

impl ContentionSnapshot {
    /// Fold `other` into `self`: counts add, high-water marks take max.
    pub fn merge(&mut self, other: &ContentionSnapshot) {
        self.cas_retries += other.cas_retries;
        self.reservation_conflicts += other.reservation_conflicts;
        self.occupancy_hwm = self.occupancy_hwm.max(other.occupancy_hwm);
    }
}

static GLOBAL_CAS_RETRIES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_RESERVATION_CONFLICTS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_OCCUPANCY_HWM: AtomicU64 = AtomicU64::new(0);

/// Fold a (usually dropping) queue's totals into the process-wide tally.
pub fn absorb(s: ContentionSnapshot) {
    if s.cas_retries > 0 {
        GLOBAL_CAS_RETRIES.fetch_add(s.cas_retries, Ordering::Relaxed);
    }
    if s.reservation_conflicts > 0 {
        GLOBAL_RESERVATION_CONFLICTS.fetch_add(s.reservation_conflicts, Ordering::Relaxed);
    }
    GLOBAL_OCCUPANCY_HWM.fetch_max(s.occupancy_hwm, Ordering::Relaxed);
}

/// Process-wide contention tally over every queue dropped (or absorbed)
/// so far. Monotone within a process; intended for end-of-run metrics
/// dumps, not for assertions in parallel test suites.
pub fn global_snapshot() -> ContentionSnapshot {
    ContentionSnapshot {
        cas_retries: GLOBAL_CAS_RETRIES.load(Ordering::Relaxed),
        reservation_conflicts: GLOBAL_RESERVATION_CONFLICTS.load(Ordering::Relaxed),
        occupancy_hwm: GLOBAL_OCCUPANCY_HWM.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = ContentionCounters::new();
        c.add_cas_retries(0); // no-op path
        c.add_cas_retries(3);
        c.add_reservation_conflict();
        c.raise_occupancy(10);
        c.raise_occupancy(4); // lower: ignored
        let s = c.snapshot();
        assert_eq!(
            s,
            ContentionSnapshot {
                cas_retries: 3,
                reservation_conflicts: 1,
                occupancy_hwm: 10
            }
        );
    }

    #[test]
    fn clear_zeroes() {
        let mut c = ContentionCounters::new();
        c.add_cas_retries(5);
        c.raise_occupancy(7);
        c.clear();
        assert_eq!(c.snapshot(), ContentionSnapshot::default());
    }

    #[test]
    fn merge_adds_counts_maxes_hwm() {
        let mut a = ContentionSnapshot {
            cas_retries: 1,
            reservation_conflicts: 2,
            occupancy_hwm: 5,
        };
        a.merge(&ContentionSnapshot {
            cas_retries: 10,
            reservation_conflicts: 0,
            occupancy_hwm: 3,
        });
        assert_eq!(a.cas_retries, 11);
        assert_eq!(a.reservation_conflicts, 2);
        assert_eq!(a.occupancy_hwm, 5);
    }

    #[test]
    fn global_tally_is_monotone() {
        let before = global_snapshot();
        absorb(ContentionSnapshot {
            cas_retries: 2,
            reservation_conflicts: 1,
            occupancy_hwm: 123,
        });
        let after = global_snapshot();
        assert!(after.cas_retries >= before.cas_retries + 2);
        assert!(after.reservation_conflicts > before.reservation_conflicts);
        assert!(after.occupancy_hwm >= 123);
    }
}
