//! Compare-and-swap reservation queue — the paper's own baseline.
//!
//! Identical storage and publication protocol to [`crate::counter`] (so the
//! comparison isolates exactly one variable), but every cursor movement uses
//! a CAS retry loop instead of `fetch_add`. The paper: "our choice of an
//! `atomicAdd` synchronization primitive instead of `atomicCAS` enables
//! higher performance under high-contention concurrent popping, as CAS
//! failure probability increases significantly with increasing contention."
//!
//! Like the paper's CAS queue (footnote 1), this implementation still uses
//! the group-leader ("warp intrinsic") optimization: one CAS loop per group,
//! not per item, so the measured gap is add-vs-CAS, not grouping.

use core::mem::MaybeUninit;

use crate::padded::Padded;
use crate::sync::{AtomicU64, Ordering, UnsafeCell};
use crate::stats::{self, ContentionCounters, ContentionSnapshot};
use crate::{ConcurrentQueue, PopState, QueueFull};

/// MPMC FIFO arena queue with CAS-based reservations.
pub struct CasQueue<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    start: Padded<AtomicU64>,
    end: Padded<AtomicU64>,
    end_alloc: Padded<AtomicU64>,
    end_max: Padded<AtomicU64>,
    end_count: Padded<AtomicU64>,
    counters: ContentionCounters,
}

// SAFETY: same argument as CounterQueue — reservation ranges are exclusive,
// publication is Release/Acquire ordered through `end`.
unsafe impl<T: Copy + Send> Sync for CasQueue<T> {}
unsafe impl<T: Copy + Send> Send for CasQueue<T> {}

impl<T: Copy + Send> CasQueue<T> {
    /// Create a queue with a fixed arena of `capacity` slots.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            start: Padded::new(AtomicU64::new(0)),
            end: Padded::new(AtomicU64::new(0)),
            end_alloc: Padded::new(AtomicU64::new(0)),
            end_max: Padded::new(AtomicU64::new(0)),
            end_count: Padded::new(AtomicU64::new(0)),
            counters: ContentionCounters::new(),
        }
    }

    /// Arena capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The slot at `idx`, without the bounds check — a bounds panic inside
    /// the protocol would strand a published reservation (`panic-in-kernel`
    /// lint), so protocol code proves its indices instead.
    ///
    /// # Safety
    ///
    /// `idx < self.slots.len() as u64`.
    #[inline]
    unsafe fn slot(&self, idx: u64) -> &UnsafeCell<MaybeUninit<T>> {
        debug_assert!(idx < self.slots.len() as u64);
        // SAFETY: caller proves `idx` is within the arena.
        unsafe { self.slots.get_unchecked(idx as usize) }
    }

    /// Push a group of items; the leader reserves with a CAS retry loop.
    pub fn push_group(&self, items: &[T]) -> Result<(), QueueFull> {
        if items.is_empty() {
            return Ok(());
        }
        let n = items.len() as u64;
        // Failed compare-exchange iterations across all four loops below,
        // tallied locally and added once so the instrumentation does not
        // itself contend (Fig. 1 measures these loops).
        let mut retries = 0u64;
        // CAS reservation loop (the contended operation under study).
        let mut idx = self.end_alloc.load(Ordering::Relaxed);
        loop {
            if idx + n > self.slots.len() as u64 {
                self.counters.add_cas_retries(retries);
                return Err(QueueFull {
                    capacity: self.slots.len(),
                });
            }
            match self.end_alloc.compare_exchange_weak(
                idx,
                idx + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => {
                    retries += 1;
                    idx = cur;
                }
            }
        }
        for (i, &item) in items.iter().enumerate() {
            // SAFETY: `[idx, idx+n)` exclusively reserved (successful CAS on
            // the monotone `end_alloc`), below capacity (checked in the
            // reservation loop); published to readers only through the
            // AcqRel CAS chain on `end_max`/`end_count`/`end` below
            // (checker-verified edge).
            let slot = unsafe { self.slot(idx + i as u64) };
            slot.with_mut(|p| unsafe { (*p).write(item) });
        }
        // Publication protocol shared with CounterQueue; end_max/end_count
        // also via CAS loops to keep the design pure.
        let mut cur = self.end_max.load(Ordering::Relaxed);
        while cur < idx + n {
            match self.end_max.compare_exchange_weak(
                cur,
                idx + n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => {
                    retries += 1;
                    cur = c;
                }
            }
        }
        let mut cnt = self.end_count.load(Ordering::Relaxed);
        loop {
            match self.end_count.compare_exchange_weak(
                cnt,
                cnt + n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => {
                    retries += 1;
                    cnt = c;
                }
            }
        }
        let m = self.end_max.load(Ordering::Acquire);
        if cnt + n == m {
            let mut e = self.end.load(Ordering::Relaxed);
            while e < m {
                match self
                    .end
                    .compare_exchange_weak(e, m, Ordering::AcqRel, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(c) => {
                        retries += 1;
                        e = c;
                    }
                }
            }
        }
        self.counters.add_cas_retries(retries);
        // Observability only; compiled out under the model checker (no
        // synchronization role, would only multiply the state space).
        #[cfg(not(atos_check))]
        {
            let e = self.end.load(Ordering::Relaxed);
            let s = self.start.load(Ordering::Relaxed);
            self.counters.raise_occupancy(e.saturating_sub(s));
        }
        Ok(())
    }

    /// Push one item.
    pub fn push(&self, item: T) -> Result<(), QueueFull> {
        self.push_group(core::slice::from_ref(&item))
    }

    /// Pop up to `max` items with one CAS-reserved group claim.
    ///
    /// CAS lets the claim be bounded *exactly* by the published `end` (no
    /// overshoot), so no claim state persists; `_state` is accepted for
    /// interface parity.
    pub fn pop_group(&self, _state: &mut PopState, max: usize, out: &mut Vec<T>) -> usize {
        if max == 0 {
            return 0;
        }
        let mut retries = 0u64;
        loop {
            let s = self.start.load(Ordering::Relaxed);
            let e = self.end.load(Ordering::Acquire);
            if e <= s {
                self.counters.add_cas_retries(retries);
                return 0;
            }
            let take = (max as u64).min(e - s);
            // The *success* ordering here is deliberately Relaxed: `start`
            // guards no data, only claim disjointness, which the CAS gives
            // under any ordering (each value of `start` is won by exactly
            // one popper). The happens-before edge that makes the slot
            // reads below safe is the Acquire load of `end` above, which
            // synchronizes with the publisher's AcqRel advance of `end` —
            // `start` needs no release chain of its own because arena slots
            // are never reused, so no information ever flows back from
            // poppers to pushers through `start`. Model-checked by the
            // `cas_pop_reservation_relaxed_is_sound` suite; weakening the
            // `end` load instead is mutation 3, which the checker rejects.
            if self
                .start
                .compare_exchange_weak(s, s + take, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                retries += 1;
                continue;
            }
            for i in 0..take {
                // SAFETY: `s + i < e <= capacity` (`end` only advances over
                // successful, capacity-checked reservations), and the
                // Acquire load of `end` above synchronizes with the
                // publishing AcqRel CAS on `end`, ordering the slot writes
                // before these reads; the range is exclusively claimed by
                // the successful CAS on `start` (checker-verified edge).
                let slot = unsafe { self.slot(s + i) };
                let v = slot.with(|p| unsafe { (*p).assume_init() });
                out.push(v);
            }
            self.counters.add_cas_retries(retries);
            return take as usize;
        }
    }

    /// Pop one item.
    pub fn pop(&self) -> Option<T> {
        let mut buf = Vec::with_capacity(1);
        let mut st = PopState::new();
        if self.pop_group(&mut st, 1, &mut buf) == 1 {
            Some(buf[0])
        } else {
            None
        }
    }

    /// Published-but-unclaimed item count.
    pub fn len(&self) -> usize {
        let e = self.end.load(Ordering::Acquire);
        let s = self.start.load(Ordering::Relaxed);
        e.saturating_sub(s) as usize
    }

    /// Whether the queue currently looks empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publication frontier (diagnostics / tests).
    pub fn published(&self) -> u64 {
        self.end.load(Ordering::Acquire)
    }

    /// Reset for a new epoch (exclusive access). Contention counters are
    /// lifetime totals and are not reset.
    pub fn reset(&mut self) {
        *self.start.get_mut() = 0;
        *self.end.get_mut() = 0;
        *self.end_alloc.get_mut() = 0;
        *self.end_max.get_mut() = 0;
        *self.end_count.get_mut() = 0;
    }

    /// Lifetime contention totals: CAS retry iterations and occupancy
    /// high-water (no reservation conflicts — CAS claims never overshoot).
    pub fn contention(&self) -> ContentionSnapshot {
        self.counters.snapshot()
    }
}

impl<T> Drop for CasQueue<T> {
    fn drop(&mut self) {
        stats::absorb(self.counters.snapshot());
    }
}

impl<T: Copy + Send> ConcurrentQueue<T> for CasQueue<T> {
    fn push_group(&self, items: &[T]) -> Result<(), QueueFull> {
        CasQueue::push_group(self, items)
    }
    fn pop_group(&self, state: &mut PopState, max: usize, out: &mut Vec<T>) -> usize {
        CasQueue::pop_group(self, state, max, out)
    }
    fn len(&self) -> usize {
        CasQueue::len(self)
    }
}

impl<T> core::fmt::Debug for CasQueue<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CasQueue")
            .field("capacity", &self.slots.len())
            .field("start", &self.start.load(Ordering::Relaxed))
            .field("end", &self.end.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = CasQueue::with_capacity(8);
        q.push_group(&[1u32, 2, 3]).unwrap();
        let mut st = PopState::new();
        let mut out = Vec::new();
        assert_eq!(q.pop_group(&mut st, 2, &mut out), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_detected_without_corruption() {
        let q = CasQueue::with_capacity(2);
        q.push_group(&[1u8, 2]).unwrap();
        assert!(q.push(3).is_err());
        // CAS reservation is not consumed on failure: a smaller push that
        // fits can still proceed after poppers drain... (arena: it cannot,
        // but the cursor was not inflated by the failed attempt).
        let mut st = PopState::new();
        let mut out = Vec::new();
        assert_eq!(q.pop_group(&mut st, 4, &mut out), 2);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn pop_never_exceeds_published() {
        let q = CasQueue::with_capacity(16);
        q.push_group(&[9u32; 5]).unwrap();
        let mut st = PopState::new();
        let mut out = Vec::new();
        assert_eq!(q.pop_group(&mut st, 100, &mut out), 5);
        assert_eq!(q.pop_group(&mut st, 100, &mut out), 0);
    }

    #[test]
    fn contention_counters_under_contention() {
        // Single-threaded: occupancy tracked, no retries possible.
        let q = CasQueue::with_capacity(16);
        q.push_group(&[1u32, 2, 3]).unwrap();
        assert_eq!(q.contention().occupancy_hwm, 3);
        assert_eq!(q.contention().cas_retries, 0);

        // Heavy multi-thread pushing: retries are *possible* (not certain
        // on any single run), so assert only that counting never loses the
        // occupancy signal and stays self-consistent.
        let per = 2_000;
        let threads = 8;
        let q = Arc::new(CasQueue::with_capacity(per * threads));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per as u64 {
                        q.push(i).unwrap();
                    }
                });
            }
        });
        let snap = q.contention();
        assert_eq!(snap.occupancy_hwm, (per * threads) as u64);
    }

    #[test]
    fn concurrent_push_pop_conserves() {
        let producers = 4;
        let per = 5_000;
        let q = Arc::new(CasQueue::with_capacity(producers * per));
        let mut all: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|s| {
            for t in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for chunk in (0..per as u64).collect::<Vec<_>>().chunks(32) {
                        let items: Vec<u64> =
                            chunk.iter().map(|i| (t * per) as u64 + i).collect();
                        q.push_group(&items).unwrap();
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..4 {
                let q = Arc::clone(&q);
                handles.push(s.spawn(move || {
                    let mut st = PopState::new();
                    let mut mine = Vec::new();
                    let goal = (producers * per) as u64;
                    loop {
                        let got = q.pop_group(&mut st, 19, &mut mine);
                        if got == 0 {
                            if q.published() == goal && q.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                    mine
                }));
            }
            for h in handles {
                all.push(h.join().unwrap());
            }
        });
        let mut seen: Vec<u64> = all.into_iter().flatten().collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..(producers * per) as u64).collect();
        assert_eq!(seen, expect);
    }
}
