//! The three Figure 1 experiments as a reusable library.
//!
//! Paper, Section III-A.2: "We characterize queue performance with three
//! experiments, each with high contention: (1) n concurrent threads each
//! push to the queue 10 times; (2) n concurrent threads each pop from the
//! queue 10 times; and (3) n concurrent threads each push and then pop from
//! the queue 10 times without synchronization between push and pop."
//!
//! On the GPU, `n` is the number of resident CUDA threads and a warp/CTA
//! worker issues one reservation per 32/512 lanes. On the host we map the
//! `n` *virtual* threads onto a fixed pool of OS threads: the total
//! operation count (`n × 10`) and the reservation count (`n × 10 / G` for
//! group size `G`) are preserved, which is what drives the contention curves
//! the figure shows.

// atos-lint: allow(facade_bypass) — the harness *measures* real hardware
// atomics (Figure 1); its own completion counters must not be rerouted to
// the checker's shadow types, which would serialize the measured section.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::broker::BrokerQueue;
use crate::cas::CasQueue;
use crate::counter::CounterQueue;
use crate::{ConcurrentQueue, PopState};

/// Which queue implementation to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Counter queue, warp-sized groups (32).
    CounterWarp,
    /// Counter queue, CTA-sized groups (256).
    CounterCta,
    /// Broker queue (per-item flags; no grouping).
    Broker,
    /// CAS queue, warp-sized groups (32).
    CasWarp,
    /// CAS queue, CTA-sized groups (256).
    CasCta,
}

impl QueueKind {
    /// All kinds, in the order Figure 1's legend lists them.
    pub const ALL: [QueueKind; 5] = [
        QueueKind::CounterWarp,
        QueueKind::CounterCta,
        QueueKind::Broker,
        QueueKind::CasWarp,
        QueueKind::CasCta,
    ];

    /// Group ("worker") size used for reservations.
    pub fn group_size(self) -> usize {
        match self {
            QueueKind::CounterWarp | QueueKind::CasWarp => 32,
            QueueKind::CounterCta | QueueKind::CasCta => 256,
            QueueKind::Broker => 1,
        }
    }

    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            QueueKind::CounterWarp => "our queue(warp)",
            QueueKind::CounterCta => "our queue(cta)",
            QueueKind::Broker => "Broker queue",
            QueueKind::CasWarp => "CAS queue(warp)",
            QueueKind::CasCta => "CAS queue(cta)",
        }
    }
}

/// Which of the three Figure 1 experiments to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// n virtual threads each push 10 items.
    ConcurrentPush,
    /// n virtual threads each pop 10 items (queue pre-filled).
    ConcurrentPop,
    /// n virtual threads each push 10 then pop 10, unsynchronized.
    ConcurrentPopPush,
}

impl Experiment {
    /// All experiments in figure order.
    pub const ALL: [Experiment; 3] = [
        Experiment::ConcurrentPush,
        Experiment::ConcurrentPop,
        Experiment::ConcurrentPopPush,
    ];

    /// Panel title as in Figure 1.
    pub fn label(self) -> &'static str {
        match self {
            Experiment::ConcurrentPush => "concurrent push",
            Experiment::ConcurrentPop => "concurrent pop",
            Experiment::ConcurrentPopPush => "concurrent pop and push",
        }
    }
}

/// Ops each virtual thread performs (fixed at 10 by the paper).
pub const OPS_PER_VIRTUAL_THREAD: usize = 10;

/// One measured point: total wall time for all `n × 10` operations.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Virtual thread count (the figure's x-axis).
    pub virtual_threads: usize,
    /// Wall time for the whole experiment.
    pub elapsed: Duration,
}

fn host_threads() -> usize {
    // Oversubscribe low-core hosts: contention phenomena need several
    // threads even if they timeslice; cap to keep scheduling noise down.
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(8, 16)
}

/// Run one experiment point: `virtual_threads × 10` operations against a
/// fresh queue of `kind`, using all available host threads.
pub fn run(kind: QueueKind, exp: Experiment, virtual_threads: usize) -> Sample {
    let total_ops = virtual_threads * OPS_PER_VIRTUAL_THREAD;
    let elapsed = match kind {
        QueueKind::CounterWarp | QueueKind::CounterCta => {
            let q = CounterQueue::<u64>::with_capacity(2 * total_ops + 1024);
            time_queue(&q, exp, total_ops, kind.group_size())
        }
        QueueKind::CasWarp | QueueKind::CasCta => {
            let q = CasQueue::<u64>::with_capacity(2 * total_ops + 1024);
            time_queue(&q, exp, total_ops, kind.group_size())
        }
        QueueKind::Broker => {
            let q = BrokerQueue::<u64>::with_capacity(2 * total_ops + 1024);
            time_queue(&q, exp, total_ops, kind.group_size())
        }
    };
    Sample {
        virtual_threads,
        elapsed,
    }
}

fn time_queue<Q: ConcurrentQueue<u64>>(
    q: &Q,
    exp: Experiment,
    total_ops: usize,
    group: usize,
) -> Duration {
    let workers = host_threads();
    match exp {
        Experiment::ConcurrentPush => {
            let start = Instant::now();
            run_push(q, total_ops, group, workers);
            start.elapsed()
        }
        Experiment::ConcurrentPop => {
            run_push(q, total_ops, group, workers);
            let start = Instant::now();
            run_pop(q, total_ops, group, workers);
            start.elapsed()
        }
        Experiment::ConcurrentPopPush => {
            let start = Instant::now();
            run_pop_push(q, total_ops, group, workers);
            start.elapsed()
        }
    }
}

fn run_push<Q: ConcurrentQueue<u64>>(q: &Q, total_ops: usize, group: usize, workers: usize) {
    let cursor = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..workers {
            let cursor = Arc::clone(&cursor);
            s.spawn(move || {
                let buf: Vec<u64> = (0..group as u64).collect();
                loop {
                    let base = cursor.fetch_add(group as u64, Ordering::Relaxed);
                    if base >= total_ops as u64 {
                        break;
                    }
                    let n = group.min((total_ops as u64 - base) as usize);
                    q.push_group(&buf[..n]).expect("bench queue sized for ops");
                }
            });
        }
    });
}

fn run_pop<Q: ConcurrentQueue<u64>>(q: &Q, total_ops: usize, group: usize, workers: usize) {
    let popped = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..workers {
            let popped = Arc::clone(&popped);
            s.spawn(move || {
                let mut st = PopState::new();
                let mut out = Vec::with_capacity(group);
                loop {
                    if popped.load(Ordering::Relaxed) >= total_ops as u64 {
                        break;
                    }
                    out.clear();
                    let got = q.pop_group(&mut st, group, &mut out);
                    if got > 0 {
                        popped.fetch_add(got as u64, Ordering::Relaxed);
                    } else if q.is_empty() {
                        // Pre-filled benchmark: empty means others took the
                        // remainder.
                        st.abandon();
                        break;
                    } else {
                        // Oversubscribed hosts: let the thread holding the
                        // unpublished slot run.
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
}

fn run_pop_push<Q: ConcurrentQueue<u64>>(q: &Q, total_ops: usize, group: usize, workers: usize) {
    let cursor = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for _ in 0..workers {
            let cursor = Arc::clone(&cursor);
            s.spawn(move || {
                let buf: Vec<u64> = (0..group as u64).collect();
                let mut st = PopState::new();
                let mut out = Vec::with_capacity(group);
                loop {
                    let base = cursor.fetch_add(group as u64, Ordering::Relaxed);
                    if base >= total_ops as u64 {
                        break;
                    }
                    let n = group.min((total_ops as u64 - base) as usize);
                    q.push_group(&buf[..n]).expect("bench queue sized for ops");
                    out.clear();
                    // Unsynchronized pop immediately after push, as in the
                    // paper's experiment (3); may legitimately get 0..n.
                    q.pop_group(&mut st, n, &mut out);
                }
                st.abandon();
            });
        }
    });
}

/// Sweep an experiment over virtual-thread counts, returning one sample per
/// point (the series a Figure 1 panel plots for one queue kind).
pub fn sweep(kind: QueueKind, exp: Experiment, points: &[usize]) -> Vec<Sample> {
    points.iter().map(|&n| run(kind, exp, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kind_experiment_pairs_complete() {
        for kind in QueueKind::ALL {
            for exp in Experiment::ALL {
                let s = run(kind, exp, 512);
                assert_eq!(s.virtual_threads, 512);
                assert!(s.elapsed > Duration::ZERO);
            }
        }
    }

    #[test]
    fn sweep_returns_point_per_input() {
        let pts = [64, 256];
        let out = sweep(QueueKind::CounterWarp, Experiment::ConcurrentPush, &pts);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].virtual_threads, 64);
        assert_eq!(out[1].virtual_threads, 256);
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(QueueKind::CounterWarp.label(), "our queue(warp)");
        assert_eq!(Experiment::ConcurrentPop.label(), "concurrent pop");
        assert_eq!(QueueKind::Broker.group_size(), 1);
    }
}
