//! Flag-per-slot ("broker") queue, the paper's published comparison point.
//!
//! Kerbl et al.'s broker queue (and Troendle et al.'s design) wrap every
//! queue item in a tuple with a ready flag. Pushing takes three steps: write
//! the item to the reserved slot, fence, set the flag to ready. Popping must
//! read a valid flag before consuming the slot.
//!
//! The paper's critique, which this implementation lets you measure on host
//! hardware (Figure 1):
//!
//! 1. the flag costs memory (a full word per item for alignment), and
//! 2. discovering `k` new items costs `k` flag loads spread over `k` cache
//!    lines, where the counter queue needs a single `end` broadcast.

use core::mem::MaybeUninit;

use crate::padded::Padded;
use crate::sync::{hint, AtomicU32, AtomicU64, Ordering, UnsafeCell};
use crate::{ConcurrentQueue, PopState, QueueFull};

const EMPTY: u32 = 0;
const READY: u32 = 1;

/// MPMC FIFO arena queue with a ready flag per slot.
pub struct BrokerQueue<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    flags: Box<[AtomicU32]>,
    head: Padded<AtomicU64>,
    tail: Padded<AtomicU64>,
}

// SAFETY: slot access is mediated by the per-slot flag: a slot is written
// only in its reserver's private range before the Release flag store, and
// read only after an Acquire flag load observes READY.
unsafe impl<T: Copy + Send> Sync for BrokerQueue<T> {}
unsafe impl<T: Copy + Send> Send for BrokerQueue<T> {}

impl<T: Copy + Send> BrokerQueue<T> {
    /// Create a queue with a fixed arena of `capacity` slots.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            flags: (0..capacity).map(|_| AtomicU32::new(EMPTY)).collect(),
            head: Padded::new(AtomicU64::new(0)),
            tail: Padded::new(AtomicU64::new(0)),
        }
    }

    /// Arena capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The slot at `idx`, without the bounds check — protocol code proves
    /// its indices instead of risking a mid-protocol panic
    /// (`panic-in-kernel` lint).
    ///
    /// # Safety
    ///
    /// `idx < self.slots.len() as u64`.
    #[inline]
    unsafe fn slot(&self, idx: u64) -> &UnsafeCell<MaybeUninit<T>> {
        debug_assert!(idx < self.slots.len() as u64);
        // SAFETY: caller proves `idx` is within the arena.
        unsafe { self.slots.get_unchecked(idx as usize) }
    }

    /// The ready flag at `idx`, without the bounds check.
    ///
    /// # Safety
    ///
    /// `idx < self.flags.len() as u64` (flags and slots have equal length).
    #[inline]
    unsafe fn flag(&self, idx: u64) -> &AtomicU32 {
        debug_assert!(idx < self.flags.len() as u64);
        // SAFETY: caller proves `idx` is within the arena.
        unsafe { self.flags.get_unchecked(idx as usize) }
    }

    /// Push one item: reserve, write, fence, set flag (the three-step
    /// protocol the paper describes).
    pub fn push(&self, item: T) -> Result<(), QueueFull> {
        let idx = self.tail.fetch_add(1, Ordering::Relaxed);
        if idx >= self.slots.len() as u64 {
            return Err(QueueFull {
                capacity: self.slots.len(),
            });
        }
        // SAFETY: `idx < capacity` (checked above) and is exclusively ours
        // (monotone `tail.fetch_add`) until the Release flag store below
        // publishes it; a popper reads the slot only after an Acquire load
        // observes READY (checker-verified edge).
        let slot = unsafe { self.slot(idx) };
        slot.with_mut(|p| unsafe { (*p).write(item) });
        // SAFETY: same bound as above; flags and slots have equal length.
        let flag = unsafe { self.flag(idx) };
        flag.store(READY, Ordering::Release);
        Ok(())
    }

    /// Pop one item if its slot's flag is ready.
    ///
    /// Reserves an index and polls the flag a bounded number of times (a
    /// producer that has reserved the slot is mid-write and will set it
    /// imminently). Returns `None` without reserving when the queue looks
    /// empty.
    pub fn pop(&self) -> Option<T> {
        loop {
            let h = self.head.load(Ordering::Relaxed);
            let t = self.tail.load(Ordering::Acquire);
            if h >= t.min(self.slots.len() as u64) {
                return None;
            }
            // Claim the slot; CAS here (not fetch_add) so an empty-looking
            // queue is never over-reserved — the broker design has no claim
            // carry-over mechanism.
            if self
                .head
                .compare_exchange_weak(h, h + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // SAFETY: `h < min(tail, capacity)` was checked above and the
            // head CAS gave us the exclusive claim on exactly this index.
            let flag = unsafe { self.flag(h) };
            // The producer reserved before we saw tail > h, so READY arrives
            // after a bounded number of its instructions.
            while flag.load(Ordering::Acquire) != READY {
                hint::spin_loop();
            }
            // SAFETY: same bound as the flag above; the Acquire flag load
            // observed the producer's Release READY store, so the slot write
            // happens-before this read; the head CAS gave us the exclusive
            // claim (checker-verified edge).
            let slot = unsafe { self.slot(h) };
            let v = slot.with(|p| unsafe { (*p).assume_init() });
            return Some(v);
        }
    }

    /// Number of reserved-but-unclaimed items (flags may still be in flight).
    pub fn len(&self) -> usize {
        let t = self
            .tail
            .load(Ordering::Acquire)
            .min(self.slots.len() as u64);
        let h = self.head.load(Ordering::Relaxed);
        t.saturating_sub(h) as usize
    }

    /// Whether the queue currently looks empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reset for a new epoch (exclusive access).
    pub fn reset(&mut self) {
        *self.head.get_mut() = 0;
        *self.tail.get_mut() = 0;
        for f in self.flags.iter() {
            f.store(EMPTY, Ordering::Relaxed);
        }
    }
}

impl<T: Copy + Send> ConcurrentQueue<T> for BrokerQueue<T> {
    fn push_group(&self, items: &[T]) -> Result<(), QueueFull> {
        // No native group API: the broker design pays per-item flag traffic.
        for &it in items {
            self.push(it)?;
        }
        Ok(())
    }

    fn pop_group(&self, _state: &mut PopState, max: usize, out: &mut Vec<T>) -> usize {
        let mut got = 0;
        while got < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    fn len(&self) -> usize {
        BrokerQueue::len(self)
    }
}

impl<T> core::fmt::Debug for BrokerQueue<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BrokerQueue")
            .field("capacity", &self.slots.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("tail", &self.tail.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = BrokerQueue::with_capacity(8);
        q.push(1u32).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_detected() {
        let q = BrokerQueue::with_capacity(1);
        q.push(1u8).unwrap();
        assert!(q.push(2).is_err());
    }

    #[test]
    fn reset_recycles() {
        let mut q = BrokerQueue::with_capacity(1);
        q.push(1u8).unwrap();
        assert_eq!(q.pop(), Some(1));
        q.reset();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn concurrent_push_pop_conserves() {
        let producers = 4;
        let per = 5_000;
        let q = Arc::new(BrokerQueue::with_capacity(producers * per));
        let mut all: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|s| {
            for t in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per {
                        q.push((t * per + i) as u64).unwrap();
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..4 {
                let q = Arc::clone(&q);
                handles.push(s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        match q.pop() {
                            Some(v) => mine.push(v),
                            None => {
                                let t = q.tail.load(Ordering::Relaxed);
                                if t >= (producers * per) as u64 && q.is_empty() {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    mine
                }));
            }
            for h in handles {
                all.push(h.join().unwrap());
            }
        });
        let mut seen: Vec<u64> = all.into_iter().flatten().collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..(producers * per) as u64).collect();
        assert_eq!(seen, expect);
    }
}
