//! Cache-line padding for contended atomics.
//!
//! Section III-A.2: "We pad the memory to ensure `end`, `start`,
//! `end_alloc`, `end_max`, and `end_count` are stored in different cache
//! lines because those counters are each updated through atomics and storing
//! them in the same cache line would otherwise serialize the updates."

/// Wrapper aligning (and therefore padding) its contents to 128 bytes.
///
/// 128 rather than 64 because modern x86 prefetchers pull adjacent line
/// pairs, and Apple/ARM big cores use 128-byte lines; over-aligning is cheap
/// for five counters.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct Padded<T>(pub T);

impl<T> Padded<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Padded(value)
    }
}

impl<T> core::ops::Deref for Padded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> core::ops::DerefMut for Padded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::AtomicU64;

    #[test]
    fn padded_is_cache_line_sized() {
        assert!(core::mem::size_of::<Padded<AtomicU64>>() >= 128);
        assert_eq!(core::mem::align_of::<Padded<AtomicU64>>(), 128);
    }

    #[test]
    fn adjacent_padded_fields_do_not_share_lines() {
        struct Counters {
            a: Padded<AtomicU64>,
            b: Padded<AtomicU64>,
        }
        let c = Counters {
            a: Padded::new(AtomicU64::new(0)),
            b: Padded::new(AtomicU64::new(0)),
        };
        let pa = &c.a as *const _ as usize;
        let pb = &c.b as *const _ as usize;
        assert!(pa.abs_diff(pb) >= 128);
    }

    #[test]
    fn deref_round_trips() {
        let mut p = Padded::new(7u32);
        assert_eq!(*p, 7);
        *p = 9;
        assert_eq!(p.0, 9);
    }
}
