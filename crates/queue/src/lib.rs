//! Lock-free concurrent queues reproducing Section III-A.2 of *Scalable
//! Irregular Parallelism with GPUs: Getting CPUs Out of the Way* (SC 2022).
//!
//! The paper's central data structure is a FIFO queue that lets hundreds of
//! thousands of GPU workers push and pop concurrently *without* kernel-level
//! synchronization. Its key ideas translate directly to host atomics:
//!
//! * **Counter-based publication** instead of per-item ready flags: all slots
//!   below a single `end` counter are valid, so consumers discover new work
//!   with one atomic load (a "broadcast") rather than polling one flag per
//!   item. [`counter::CounterQueue`] implements the paper's Listing 6
//!   protocol with `end`, `end_alloc`, `end_max`, and `end_count` counters.
//! * **`fetch_add` instead of compare-and-swap** for reservations, because
//!   CAS failure probability rises steeply with contention.
//!   [`cas::CasQueue`] is the paper's own CAS-based comparison point.
//! * **Group (warp/CTA) reservation**: a worker computes the total number of
//!   push/pop requests for all of its lanes first, and only the leader issues
//!   the atomic. On the host, a group push of `G` items is one reservation
//!   plus `G` plain writes.
//! * **Cache-line padding** of the counters so the atomics on `start`, `end`,
//!   `end_alloc`, `end_max`, and `end_count` never false-share.
//!
//! [`broker::BrokerQueue`] reimplements the flag-per-slot design of Kerbl et
//! al.'s broker queue, the paper's main published comparison.
//!
//! All queues here are *arena* queues: storage indices grow monotonically and
//! slots are never reused until [`reset`](counter::CounterQueue::reset). This
//! matches the paper's usage — `DistributedQueues::init` takes `local_cap` /
//! `recv_cap` sized for the whole computation — and removes ABA and
//! wrap-around hazards from the concurrency argument.
//!
//! # Example
//!
//! ```
//! use atos_queue::counter::{CounterQueue, PopHandle};
//!
//! let q: CounterQueue<u32> = CounterQueue::with_capacity(1024);
//! q.push_group(&[1, 2, 3, 4]).unwrap();
//!
//! let mut h = PopHandle::new();
//! let mut out = Vec::new();
//! let got = q.pop_group(&mut h, 4, &mut out);
//! assert_eq!(got, 4);
//! assert_eq!(out, vec![1, 2, 3, 4]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bench_harness;
pub mod broker;
pub mod cas;
pub mod counter;
#[cfg(atos_check)]
pub mod mutations;
pub mod padded;
pub mod stats;
pub mod sync;

pub use stats::ContentionSnapshot;

/// Error returned when a push would exceed the queue's fixed arena capacity.
///
/// The Atos model sizes queues up front (`local_cap`, `recv_cap`) so overflow
/// indicates a mis-sized queue, not a transient condition: once reservations
/// pass the arena end the queue stays saturated until `reset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// Arena capacity of the queue that rejected the push.
    pub capacity: usize,
}

impl core::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "queue arena capacity {} exhausted", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// Common interface over the three queue families so the Figure 1 benchmark
/// harness can drive them uniformly.
///
/// `G` is the group ("worker") size: how many items one reservation covers.
/// Implementations with native group support perform one atomic reservation
/// per group; per-item designs (the broker queue) loop.
pub trait ConcurrentQueue<T: Copy + Send>: Sync {
    /// Push `items` as one worker-group operation.
    fn push_group(&self, items: &[T]) -> Result<(), QueueFull>;

    /// Pop up to `max` items as one worker-group operation, appending to
    /// `out`. Returns the number of items obtained (0 = queue looked empty).
    fn pop_group(&self, state: &mut PopState, max: usize, out: &mut Vec<T>) -> usize;

    /// Number of published-but-unclaimed items (approximate under
    /// concurrency; exact when quiescent).
    fn len(&self) -> usize;

    /// Whether the queue currently looks empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-worker pop state.
///
/// The counter queue's `fetch_add`-based pop reserves a *claim* of indices
/// that may momentarily run ahead of the published `end`; the claim is held
/// here and drained on later calls, which is exactly how a persistent-kernel
/// GPU worker re-polls the queue each scheduler loop. Designs without claims
/// ignore this state.
#[derive(Debug, Default, Clone)]
pub struct PopState {
    pub(crate) claim_lo: u64,
    pub(crate) claim_hi: u64,
    pub(crate) cursor: u64,
}

impl PopState {
    /// Fresh state with no outstanding claim.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indices reserved but not yet consumed (waiting for publication).
    pub fn outstanding(&self) -> u64 {
        self.claim_hi - self.cursor
    }

    /// Drop the outstanding claim.
    ///
    /// Only sound at termination: the caller must guarantee no further items
    /// will be published into the claimed range (i.e. the queue's publication
    /// frontier has reached its final value at or below the claim), otherwise
    /// items later published there would be stranded — claims are disjoint,
    /// so no other worker can ever consume them.
    pub fn abandon(&mut self) {
        self.claim_lo = self.cursor;
        self.claim_hi = self.cursor;
    }
}
