//! Synchronization facade: `std` primitives normally, `atos-check` shadow
//! types under `--cfg atos_check`.
//!
//! Every atomic, cell, fence, spin hint, and thread operation the queue
//! protocols (and `atos-core`'s host path) perform is imported from this
//! module instead of `std`, so the exact same protocol code runs in
//! production and inside the model checker:
//!
//! ```text
//! cargo build                                  → std atomics (zero cost)
//! RUSTFLAGS="--cfg atos_check" cargo test -p atos-check
//!                                              → shadow types, every
//!                                                interleaving explored
//! ```
//!
//! The std path wraps `UnsafeCell` in a `#[repr(transparent)]` newtype with
//! `#[inline(always)]` accessors, so release builds are byte-identical to
//! using `std::cell::UnsafeCell` directly (pinned by the existing
//! `alloc_count` and trace-golden tests). The build is driven by a `cfg`
//! rather than a cargo feature so that feature unification can never leak
//! shadow types into production test binaries.

#[cfg(not(atos_check))]
mod imp {
    pub use core::sync::atomic::{fence, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    /// Thin `UnsafeCell` wrapper exposing the closure-style accessors the
    /// shadow type requires; compiles to the raw pointer accesses.
    #[repr(transparent)]
    pub struct UnsafeCell<T>(core::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wrap a value.
        #[inline(always)]
        pub fn new(v: T) -> Self {
            Self(core::cell::UnsafeCell::new(v))
        }

        /// Shared access to the contents via raw pointer.
        #[inline(always)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Exclusive access to the contents via raw pointer. The *caller*
        /// guarantees exclusivity (reserved index ranges); the checker
        /// build verifies that guarantee.
        #[inline(always)]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Safe exclusive access through `&mut`.
        #[inline(always)]
        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut()
        }

        /// Consume, returning the wrapped value.
        #[inline(always)]
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    /// Spin/yield hints.
    pub mod hint {
        pub use core::hint::spin_loop;
    }

    /// Threading primitives.
    pub mod thread {
        pub use std::thread::{
            park_timeout, scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle,
        };
    }

    /// Hardware threads available to this process (1 when unknown).
    pub fn host_parallelism() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

#[cfg(atos_check)]
mod imp {
    pub use atos_check::sync::{
        fence, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering, UnsafeCell,
    };

    /// Spin/yield hints (model-scheduled).
    pub mod hint {
        pub use atos_check::sync::spin_loop;
    }

    /// Threading primitives (model-scheduled).
    pub mod thread {
        pub use atos_check::thread::{
            scope, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle,
        };

        /// Model-scheduled stand-in for `std::thread::park_timeout`: a
        /// timed park may wake spuriously at any point, so a scheduler
        /// yield is a sound model — the checker stays free to schedule
        /// the parked thread whenever it chooses.
        pub fn park_timeout(_dur: core::time::Duration) {
            yield_now();
        }
    }

    /// Fixed small parallelism under the model checker: enough to exercise
    /// multi-thread protocols without exploding the interleaving space.
    pub fn host_parallelism() -> usize {
        2
    }
}

pub use imp::*;
