// lint:skip-file — this module exists to carry deliberately seeded bugs.
//! Mutation twins: deliberately broken queue variants that validate the
//! model checker.
//!
//! Each twin reproduces the real protocol from [`crate::counter`] /
//! [`crate::cas`] with exactly one weakened step, marked `BUG (mutation N)`.
//! The `atos-check` mutation suite asserts that the checker reports a
//! failure (data race, uninitialized read, or assertion) with a
//! deterministic, replayable schedule for every twin, while the unmutated
//! queues pass the same drivers. Compiled only under `--cfg atos_check`;
//! never part of a production build.

use core::mem::MaybeUninit;

use crate::sync::{AtomicU64, Ordering, UnsafeCell};
use crate::{PopState, QueueFull};

/// Mutation 1: the counter queue with its publication chain
/// (`end_max`/`end_count`/`end`, the `AcqRel` RMWs in
/// `counter.rs`) weakened to `Relaxed`. Nothing releases the slot writes,
/// so a popper's slot read races with the pusher's slot write even though
/// it Acquire-loads `end`.
pub struct CounterQueueRelaxedPub<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    start: AtomicU64,
    end: AtomicU64,
    end_alloc: AtomicU64,
    end_max: AtomicU64,
    end_count: AtomicU64,
}

unsafe impl<T: Copy + Send> Sync for CounterQueueRelaxedPub<T> {}
unsafe impl<T: Copy + Send> Send for CounterQueueRelaxedPub<T> {}

impl<T: Copy + Send> CounterQueueRelaxedPub<T> {
    /// Fixed-arena constructor (mirrors `CounterQueue::with_capacity`).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            end_alloc: AtomicU64::new(0),
            end_max: AtomicU64::new(0),
            end_count: AtomicU64::new(0),
        }
    }

    /// `CounterQueue::push_group` with the publication orderings weakened.
    pub fn push_group(&self, items: &[T]) -> Result<(), QueueFull> {
        if items.is_empty() {
            return Ok(());
        }
        let n = items.len() as u64;
        let idx = self.end_alloc.fetch_add(n, Ordering::Relaxed);
        if idx + n > self.slots.len() as u64 {
            return Err(QueueFull {
                capacity: self.slots.len(),
            });
        }
        for (i, &item) in items.iter().enumerate() {
            self.slots[(idx + i as u64) as usize].with_mut(|p| unsafe { (*p).write(item) });
        }
        // BUG (mutation 1): AcqRel weakened to Relaxed — no release edge
        // orders the slot writes before publication.
        self.end_max.fetch_max(idx + n, Ordering::Relaxed);
        let prev = self.end_count.fetch_add(n, Ordering::Relaxed);
        let m = self.end_max.load(Ordering::Relaxed);
        if prev + n == m {
            self.end.fetch_max(m, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Unmodified pop side (identical to `CounterQueue::pop_group`).
    pub fn pop_group(&self, state: &mut PopState, max: usize, out: &mut Vec<T>) -> usize {
        pop_group_counter_protocol(
            &self.slots,
            &self.start,
            &self.end,
            state,
            max,
            out,
        )
    }
}

/// Mutation 2: the counter queue with the CUDA listing's *double read* of
/// `end_max` restored. The correct code snapshots `end_max` once and
/// publishes that snapshot; re-reading it inside the publication lets a
/// racing group bump `end_max` over a still-unwritten middle range, so
/// `end` publishes a hole.
pub struct CounterQueueHolePub<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    start: AtomicU64,
    end: AtomicU64,
    end_alloc: AtomicU64,
    end_max: AtomicU64,
    end_count: AtomicU64,
}

unsafe impl<T: Copy + Send> Sync for CounterQueueHolePub<T> {}
unsafe impl<T: Copy + Send> Send for CounterQueueHolePub<T> {}

impl<T: Copy + Send> CounterQueueHolePub<T> {
    /// Fixed-arena constructor (mirrors `CounterQueue::with_capacity`).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            end_alloc: AtomicU64::new(0),
            end_max: AtomicU64::new(0),
            end_count: AtomicU64::new(0),
        }
    }

    /// `CounterQueue::push_group` with the `end_max` snapshot dropped.
    pub fn push_group(&self, items: &[T]) -> Result<(), QueueFull> {
        if items.is_empty() {
            return Ok(());
        }
        let n = items.len() as u64;
        let idx = self.end_alloc.fetch_add(n, Ordering::Relaxed);
        if idx + n > self.slots.len() as u64 {
            return Err(QueueFull {
                capacity: self.slots.len(),
            });
        }
        for (i, &item) in items.iter().enumerate() {
            self.slots[(idx + i as u64) as usize].with_mut(|p| unsafe { (*p).write(item) });
        }
        self.end_max.fetch_max(idx + n, Ordering::AcqRel);
        let prev = self.end_count.fetch_add(n, Ordering::AcqRel);
        let m = self.end_max.load(Ordering::Acquire);
        if prev + n == m {
            // BUG (mutation 2): re-reads `end_max` instead of publishing the
            // snapshot `m` the equality check was made against (the CUDA
            // listing's two-read shape). A group writing a *higher* range
            // between the two reads makes this publish a hole over a
            // still-unwritten middle range.
            let m2 = self.end_max.load(Ordering::Acquire);
            self.end.fetch_max(m2, Ordering::AcqRel);
        }
        Ok(())
    }

    /// Unmodified pop side (identical to `CounterQueue::pop_group`).
    pub fn pop_group(&self, state: &mut PopState, max: usize, out: &mut Vec<T>) -> usize {
        pop_group_counter_protocol(
            &self.slots,
            &self.start,
            &self.end,
            state,
            max,
            out,
        )
    }
}

/// Mutation 3: the CAS queue's pop with its `end` load weakened from
/// `Acquire` to `Relaxed` (`cas.rs` pop_group). This severs the one
/// happens-before edge that makes the slot reads safe; the checker reports
/// the write/read race even though the reservation CAS is untouched.
pub struct CasQueueRelaxedEnd<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    start: AtomicU64,
    end: AtomicU64,
    end_alloc: AtomicU64,
    end_max: AtomicU64,
    end_count: AtomicU64,
}

unsafe impl<T: Copy + Send> Sync for CasQueueRelaxedEnd<T> {}
unsafe impl<T: Copy + Send> Send for CasQueueRelaxedEnd<T> {}

impl<T: Copy + Send> CasQueueRelaxedEnd<T> {
    /// Fixed-arena constructor (mirrors `CasQueue::with_capacity`).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            end_alloc: AtomicU64::new(0),
            end_max: AtomicU64::new(0),
            end_count: AtomicU64::new(0),
        }
    }

    /// Unmodified push side (identical to `CasQueue::push_group`).
    pub fn push_group(&self, items: &[T]) -> Result<(), QueueFull> {
        if items.is_empty() {
            return Ok(());
        }
        let n = items.len() as u64;
        let mut idx = self.end_alloc.load(Ordering::Relaxed);
        loop {
            if idx + n > self.slots.len() as u64 {
                return Err(QueueFull {
                    capacity: self.slots.len(),
                });
            }
            match self.end_alloc.compare_exchange_weak(
                idx,
                idx + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => idx = cur,
            }
        }
        for (i, &item) in items.iter().enumerate() {
            self.slots[(idx + i as u64) as usize].with_mut(|p| unsafe { (*p).write(item) });
        }
        let mut cur = self.end_max.load(Ordering::Relaxed);
        while cur < idx + n {
            match self.end_max.compare_exchange_weak(
                cur,
                idx + n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        let mut cnt = self.end_count.load(Ordering::Relaxed);
        let prev = loop {
            match self.end_count.compare_exchange_weak(
                cnt,
                cnt + n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break cnt,
                Err(c) => cnt = c,
            }
        };
        let m = self.end_max.load(Ordering::Acquire);
        if prev + n == m {
            let mut e = self.end.load(Ordering::Relaxed);
            while e < m {
                match self
                    .end
                    .compare_exchange_weak(e, m, Ordering::AcqRel, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(c) => e = c,
                }
            }
        }
        Ok(())
    }

    /// `CasQueue::pop_group` with the `end` load weakened.
    pub fn pop_group(&self, max: usize, out: &mut Vec<T>) -> usize {
        if max == 0 {
            return 0;
        }
        loop {
            let s = self.start.load(Ordering::Relaxed);
            // BUG (mutation 3): Acquire weakened to Relaxed — observing
            // `end > s` no longer brings the publisher's slot writes into
            // view.
            let e = self.end.load(Ordering::Relaxed);
            if e <= s {
                return 0;
            }
            let take = (max as u64).min(e - s);
            if self
                .start
                .compare_exchange_weak(s, s + take, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            for i in 0..take {
                let v = self.slots[(s + i) as usize].with(|p| unsafe { (*p).assume_init() });
                out.push(v);
            }
            return take as usize;
        }
    }
}

/// Mutation 4: the counter queue with the *pop-side* publication-frontier
/// loads weakened `Acquire`→`Relaxed`. This is the steal-protocol twin:
/// a stealer pops from a victim's queue through the exact same
/// `pop_group`/`PopState` path the owner uses, and the only edge that
/// makes its slot reads safe is the Acquire load of `end` synchronizing
/// with the victim-side pusher's AcqRel publication. Weakening that load
/// means observing `end > start` no longer brings the pusher's slot
/// writes into view — the cross-PE steal reads a slot that was never
/// released to it. Push side is byte-for-byte the real protocol.
pub struct CounterQueueRelaxedSteal<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    start: AtomicU64,
    end: AtomicU64,
    end_alloc: AtomicU64,
    end_max: AtomicU64,
    end_count: AtomicU64,
}

unsafe impl<T: Copy + Send> Sync for CounterQueueRelaxedSteal<T> {}
unsafe impl<T: Copy + Send> Send for CounterQueueRelaxedSteal<T> {}

impl<T: Copy + Send> CounterQueueRelaxedSteal<T> {
    /// Fixed-arena constructor (mirrors `CounterQueue::with_capacity`).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            end_alloc: AtomicU64::new(0),
            end_max: AtomicU64::new(0),
            end_count: AtomicU64::new(0),
        }
    }

    /// Unmodified push side (identical to `CounterQueue::push_group`).
    pub fn push_group(&self, items: &[T]) -> Result<(), QueueFull> {
        if items.is_empty() {
            return Ok(());
        }
        let n = items.len() as u64;
        let idx = self.end_alloc.fetch_add(n, Ordering::Relaxed);
        if idx + n > self.slots.len() as u64 {
            return Err(QueueFull {
                capacity: self.slots.len(),
            });
        }
        for (i, &item) in items.iter().enumerate() {
            self.slots[(idx + i as u64) as usize].with_mut(|p| unsafe { (*p).write(item) });
        }
        self.end_max.fetch_max(idx + n, Ordering::AcqRel);
        let prev = self.end_count.fetch_add(n, Ordering::AcqRel);
        let m = self.end_max.load(Ordering::Acquire);
        if prev + n == m {
            self.end.fetch_max(m, Ordering::AcqRel);
        }
        Ok(())
    }

    /// `CounterQueue::pop_group` with every `end` load weakened.
    pub fn pop_group(&self, state: &mut PopState, max: usize, out: &mut Vec<T>) -> usize {
        fn drain<T: Copy>(
            slots: &[UnsafeCell<MaybeUninit<T>>],
            end: &AtomicU64,
            state: &mut PopState,
            max: usize,
            out: &mut Vec<T>,
        ) -> usize {
            if state.cursor == state.claim_hi {
                return 0;
            }
            // BUG (mutation 4): Acquire weakened to Relaxed — the claim
            // bound is still numerically correct, but the load no longer
            // synchronizes with the pusher's AcqRel `fetch_max` on `end`,
            // so the slot reads below race with the slot writes.
            let e = end.load(Ordering::Relaxed);
            let hi = state.claim_hi.min(e);
            let take = (hi.saturating_sub(state.cursor)).min(max as u64);
            for i in 0..take {
                let v = slots[(state.cursor + i) as usize].with(|p| unsafe { (*p).assume_init() });
                out.push(v);
            }
            state.cursor += take;
            take as usize
        }

        if max == 0 {
            return 0;
        }
        let mut produced = drain(&self.slots, &self.end, state, max, out);
        if produced == max {
            return produced;
        }
        if state.cursor == state.claim_hi {
            // BUG (mutation 4): same weakening on the availability estimate.
            let e = self.end.load(Ordering::Relaxed);
            let s = self.start.load(Ordering::Relaxed);
            if e <= s {
                return produced;
            }
            let want = ((max - produced) as u64).min(e - s);
            let old = self.start.fetch_add(want, Ordering::Relaxed);
            state.claim_lo = old;
            state.cursor = old;
            state.claim_hi = old + want;
            produced += drain(&self.slots, &self.end, state, max - produced, out);
        }
        produced
    }
}

/// The real `CounterQueue::pop_group` body, shared by the twins whose bug
/// is on the push side so their pop path stays byte-for-byte faithful.
fn pop_group_counter_protocol<T: Copy>(
    slots: &[UnsafeCell<MaybeUninit<T>>],
    start: &AtomicU64,
    end: &AtomicU64,
    state: &mut PopState,
    max: usize,
    out: &mut Vec<T>,
) -> usize {
    fn drain<T: Copy>(
        slots: &[UnsafeCell<MaybeUninit<T>>],
        end: &AtomicU64,
        state: &mut PopState,
        max: usize,
        out: &mut Vec<T>,
    ) -> usize {
        if state.cursor == state.claim_hi {
            return 0;
        }
        let e = end.load(Ordering::Acquire);
        let hi = state.claim_hi.min(e);
        let take = (hi.saturating_sub(state.cursor)).min(max as u64);
        for i in 0..take {
            let v = slots[(state.cursor + i) as usize].with(|p| unsafe { (*p).assume_init() });
            out.push(v);
        }
        state.cursor += take;
        take as usize
    }

    if max == 0 {
        return 0;
    }
    let mut produced = drain(slots, end, state, max, out);
    if produced == max {
        return produced;
    }
    if state.cursor == state.claim_hi {
        let e = end.load(Ordering::Acquire);
        let s = start.load(Ordering::Relaxed);
        if e <= s {
            return produced;
        }
        let want = ((max - produced) as u64).min(e - s);
        let old = start.fetch_add(want, Ordering::Relaxed);
        state.claim_lo = old;
        state.cursor = old;
        state.claim_hi = old + want;
        produced += drain(slots, end, state, max - produced, out);
    }
    produced
}
