//! The Atos counter-based concurrent queue (paper Listing 6).
//!
//! # Protocol
//!
//! Five monotone counters coordinate concurrent group pushes and pops over a
//! fixed arena of slots:
//!
//! * `end_alloc` — push reservation cursor. A group push of `n` items does
//!   one `fetch_add(n)`; the returned index is the group's private range.
//! * `end_max` — high-water mark of *completed* group writes
//!   (`fetch_max(idx + n)` after the slot writes).
//! * `end_count` — total number of items whose writes have completed
//!   (`fetch_add(n)` after updating `end_max`).
//! * `end` — publication frontier: every slot `< end` is fully written and
//!   safe to read. Advanced to `end_max` by whichever group observes
//!   `end_count == end_max`, i.e. the moment completed writes exactly tile
//!   the prefix `[0, end_max)`.
//! * `start` — pop reservation cursor (`fetch_add`, never CAS).
//!
//! Consumers learn about any amount of new work from a single `Acquire` load
//! of `end` — the "counter broadcast" the paper contrasts with per-item flag
//! polling (see [`crate::broker`]).
//!
//! # Why `end` only moves when `end_count == end_max`
//!
//! Completed group ranges are disjoint subranges of `[0, end_alloc)`. Their
//! total size (`end_count`) equals their maximum upper bound (`end_max`) if
//! and only if they exactly tile `[0, end_max)` with no unwritten hole, so
//! the check is both safe (never exposes an unwritten slot) and live (the
//! last writer of any quiescent prefix observes equality and publishes).
//!
//! One deliberate difference from the CUDA listing: the listing reads
//! `end_max` twice (once in the comparison, once inside `atomicMax`). Between
//! those reads another group touching a *higher* range can bump `end_max`
//! while a middle range is still unwritten, publishing a hole. We read
//! `end_max` once into a local and publish that snapshot, which the tiling
//! argument proves safe.
//!
//! # Pop claims
//!
//! Pops reserve with `fetch_add` on `start`, bounded by an optimistic read of
//! `end - start`. Because another pop can race in between, a reservation may
//! overshoot `end`; the overshot *claim* is retained in the caller's
//! [`PopState`] and drained on subsequent calls once publication catches up
//! (a persistent-kernel worker re-polls every scheduler iteration, so this is
//! the natural shape). Claims are disjoint by monotonicity of `fetch_add`, so
//! no slot is ever popped twice, and a claim is never abandoned while the
//! queue can still grow — the run loop only stops at global termination,
//! when `end` has reached its final value and unfilled claims provably refer
//! to indices that were never pushed.

use core::mem::MaybeUninit;

use crate::padded::Padded;
use crate::sync::{AtomicU64, Ordering, UnsafeCell};
use crate::stats::{self, ContentionCounters, ContentionSnapshot};
use crate::{ConcurrentQueue, PopState, QueueFull};

/// Re-export so `use atos_queue::counter::PopHandle` reads naturally in
/// examples; the state type is shared across queue families.
pub use crate::PopState as PopHandle;

/// MPMC FIFO arena queue with counter-based publication (paper Listing 6).
///
/// `T: Copy` mirrors the paper's queues of vertex ids; copies keep slot reads
/// free of drop obligations.
pub struct CounterQueue<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    start: Padded<AtomicU64>,
    end: Padded<AtomicU64>,
    end_alloc: Padded<AtomicU64>,
    end_max: Padded<AtomicU64>,
    end_count: Padded<AtomicU64>,
    counters: ContentionCounters,
}

// SAFETY: slots are plain memory; all cross-thread slot access is mediated by
// the counter protocol (writes happen in a privately reserved range before
// publication; reads happen in a privately claimed range after an Acquire
// load of `end` that synchronizes with the publishing `fetch_max`).
unsafe impl<T: Copy + Send> Sync for CounterQueue<T> {}
unsafe impl<T: Copy + Send> Send for CounterQueue<T> {}

impl<T: Copy + Send> CounterQueue<T> {
    /// Create a queue with a fixed arena of `capacity` slots.
    ///
    /// Capacity bounds the *total* number of items pushed between
    /// [`reset`](Self::reset)s, exactly like the paper's `local_cap` /
    /// `recv_cap` init parameters.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Self {
            slots,
            start: Padded::new(AtomicU64::new(0)),
            end: Padded::new(AtomicU64::new(0)),
            end_alloc: Padded::new(AtomicU64::new(0)),
            end_max: Padded::new(AtomicU64::new(0)),
            end_count: Padded::new(AtomicU64::new(0)),
            counters: ContentionCounters::new(),
        }
    }

    /// Arena capacity (total pushes accepted before `reset`).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The slot at `idx`, without the bounds check. A bounds panic inside
    /// the push/pop protocol would strand a published reservation for
    /// every other thread, so protocol code proves its indices instead
    /// (`panic-in-kernel` lint).
    ///
    /// # Safety
    ///
    /// `idx < self.slots.len() as u64`.
    #[inline]
    unsafe fn slot(&self, idx: u64) -> &UnsafeCell<MaybeUninit<T>> {
        debug_assert!(idx < self.slots.len() as u64);
        // SAFETY: caller proves `idx` is within the arena.
        unsafe { self.slots.get_unchecked(idx as usize) }
    }

    /// Push a group of items with a single reservation (the host analog of
    /// `push_warp`/`push_cta`: leader does one `atomicAdd`, lanes write).
    pub fn push_group(&self, items: &[T]) -> Result<(), QueueFull> {
        if items.is_empty() {
            return Ok(());
        }
        let n = items.len() as u64;
        // Leader reservation. Monotone: a failed (overflowing) reservation is
        // not rolled back — rollback would let ranges be re-issued and break
        // the disjointness invariant. The queue saturates instead.
        let idx = self.end_alloc.fetch_add(n, Ordering::Relaxed);
        if idx + n > self.slots.len() as u64 {
            return Err(QueueFull {
                capacity: self.slots.len(),
            });
        }
        // Lane writes into the privately reserved range.
        for (i, &item) in items.iter().enumerate() {
            // SAFETY: `[idx, idx+n)` is exclusively ours (disjoint
            // reservations off the monotone `end_alloc`) and below capacity
            // (checked above); no reader sees the slot until this write is
            // sequenced before the AcqRel `fetch_max`/`fetch_add`
            // publication chain below and a popper Acquire-loads `end`
            // (checker-verified edge).
            let slot = unsafe { self.slot(idx + i as u64) };
            slot.with_mut(|p| unsafe { (*p).write(item) });
        }
        // Completion bookkeeping. The Release in these RMWs orders the slot
        // writes before publication; poppers Acquire `end`.
        self.end_max.fetch_max(idx + n, Ordering::AcqRel);
        let prev = self.end_count.fetch_add(n, Ordering::AcqRel);
        let m = self.end_max.load(Ordering::Acquire);
        if prev + n == m {
            self.end.fetch_max(m, Ordering::AcqRel);
        }
        // Observability only (off the counter-protocol cache lines): how
        // full did the queue get after this push. Compiled out under the
        // model checker — these loads carry no synchronization and would
        // only multiply the explored state space.
        #[cfg(not(atos_check))]
        {
            let e = self.end.load(Ordering::Relaxed);
            let s = self.start.load(Ordering::Relaxed);
            self.counters.raise_occupancy(e.saturating_sub(s));
        }
        Ok(())
    }

    /// Push one item (thread-sized worker).
    pub fn push(&self, item: T) -> Result<(), QueueFull> {
        self.push_group(core::slice::from_ref(&item))
    }

    /// Pop up to `max` items as one group reservation, appending to `out`.
    ///
    /// Returns how many items were produced. `0` means the queue *looked*
    /// empty (the scheduler's `f2` path); an outstanding claim in `state` may
    /// still fill on a later call once publication advances.
    pub fn pop_group(&self, state: &mut PopState, max: usize, out: &mut Vec<T>) -> usize {
        if max == 0 {
            return 0;
        }
        let mut produced = 0usize;

        // Drain any previously claimed, now-published indices first.
        produced += self.drain_claim(state, max, out);
        if produced == max {
            return produced;
        }

        if state.cursor == state.claim_hi {
            // No outstanding claim: make a new reservation bounded by the
            // optimistic availability estimate (one `end` broadcast).
            let e = self.end.load(Ordering::Acquire);
            let s = self.start.load(Ordering::Relaxed);
            if e <= s {
                return produced;
            }
            let want = ((max - produced) as u64).min(e - s);
            let old = self.start.fetch_add(want, Ordering::Relaxed);
            if old + want > e {
                // Racing poppers moved `start` past our availability
                // estimate: part of this claim waits for publication.
                self.counters.add_reservation_conflict();
            }
            state.claim_lo = old;
            state.cursor = old;
            state.claim_hi = old + want;
            produced += self.drain_claim(state, max - produced, out);
        }
        produced
    }

    /// Pop a single item if one is available to this worker right now.
    pub fn pop(&self, state: &mut PopState) -> Option<T> {
        let mut buf = Vec::with_capacity(1);
        if self.pop_group(state, 1, &mut buf) == 1 {
            Some(buf[0])
        } else {
            None
        }
    }

    fn drain_claim(&self, state: &mut PopState, max: usize, out: &mut Vec<T>) -> usize {
        if state.cursor == state.claim_hi {
            return 0;
        }
        let e = self.end.load(Ordering::Acquire);
        let hi = state.claim_hi.min(e);
        let take = (hi.saturating_sub(state.cursor)).min(max as u64);
        for i in 0..take {
            // SAFETY: `cursor + i < end <= capacity` (`end` only advances
            // over successful, capacity-checked reservations), and the
            // Acquire load of `end` above synchronizes with the publisher's
            // AcqRel `fetch_max` on `end`, which in turn is ordered after
            // the AcqRel completion RMWs and the slot writes — so the slot
            // is fully written and visible. The claim range
            // `[claim_lo, claim_hi)` is exclusively ours by monotonicity of
            // `start.fetch_add` (checker-verified).
            let slot = unsafe { self.slot(state.cursor + i) };
            let v = slot.with(|p| unsafe { (*p).assume_init() });
            out.push(v);
        }
        state.cursor += take;
        take as usize
    }

    /// Number of published-but-unreserved items. Exact when quiescent.
    pub fn len(&self) -> usize {
        let e = self.end.load(Ordering::Acquire);
        let s = self.start.load(Ordering::Relaxed);
        e.saturating_sub(s) as usize
    }

    /// Whether the queue currently looks empty to a new popper.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total items ever pushed (reservations that fit the arena).
    pub fn total_pushed(&self) -> usize {
        self.end_alloc
            .load(Ordering::Relaxed)
            .min(self.slots.len() as u64) as usize
    }

    /// Publication frontier (diagnostics / tests).
    pub fn published(&self) -> u64 {
        self.end.load(Ordering::Acquire)
    }

    /// Reset the queue for a new epoch. Exclusive access makes this race-free.
    /// Contention counters are *not* reset: they are lifetime totals,
    /// folded into [`stats::global_snapshot`] when the queue drops.
    pub fn reset(&mut self) {
        *self.start.get_mut() = 0;
        *self.end.get_mut() = 0;
        *self.end_alloc.get_mut() = 0;
        *self.end_max.get_mut() = 0;
        *self.end_count.get_mut() = 0;
    }

    /// Lifetime contention totals for this queue (reservation conflicts
    /// and occupancy high-water; `cas_retries` stays 0 — this family has
    /// no CAS loop, which is its whole point).
    pub fn contention(&self) -> ContentionSnapshot {
        self.counters.snapshot()
    }
}

impl<T> Drop for CounterQueue<T> {
    fn drop(&mut self) {
        stats::absorb(self.counters.snapshot());
    }
}

impl<T: Copy + Send> ConcurrentQueue<T> for CounterQueue<T> {
    fn push_group(&self, items: &[T]) -> Result<(), QueueFull> {
        CounterQueue::push_group(self, items)
    }
    fn pop_group(&self, state: &mut PopState, max: usize, out: &mut Vec<T>) -> usize {
        CounterQueue::pop_group(self, state, max, out)
    }
    fn len(&self) -> usize {
        CounterQueue::len(self)
    }
}

impl<T> core::fmt::Debug for CounterQueue<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CounterQueue")
            .field("capacity", &self.slots.len())
            .field("start", &self.start.load(Ordering::Relaxed))
            .field("end", &self.end.load(Ordering::Relaxed))
            .field("end_alloc", &self.end_alloc.load(Ordering::Relaxed))
            .field("end_max", &self.end_max.load(Ordering::Relaxed))
            .field("end_count", &self.end_count.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::AtomicUsize;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = CounterQueue::with_capacity(16);
        q.push_group(&[1u32, 2, 3]).unwrap();
        let mut h = PopState::new();
        let mut out = Vec::new();
        assert_eq!(q.pop_group(&mut h, 2, &mut out), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.pop(&mut h), Some(3));
        assert_eq!(q.pop(&mut h), None);
    }

    #[test]
    fn empty_pop_returns_zero() {
        let q: CounterQueue<u64> = CounterQueue::with_capacity(8);
        let mut h = PopState::new();
        let mut out = Vec::new();
        assert_eq!(q.pop_group(&mut h, 4, &mut out), 0);
        assert!(out.is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_reports_queue_full() {
        let q = CounterQueue::with_capacity(4);
        q.push_group(&[1u8, 2, 3]).unwrap();
        assert_eq!(q.push_group(&[4, 5]), Err(QueueFull { capacity: 4 }));
        // Queue stays usable for the already-published prefix.
        let mut h = PopState::new();
        let mut out = Vec::new();
        assert_eq!(q.pop_group(&mut h, 8, &mut out), 3);
    }

    #[test]
    fn saturated_queue_rejects_all_later_pushes() {
        let q = CounterQueue::with_capacity(2);
        q.push(7u32).unwrap();
        assert!(q.push_group(&[8, 9]).is_err());
        // A 1-item push would fit the remaining slot arithmetically, but the
        // failed reservation above already consumed index space (monotone
        // cursor, no rollback).
        assert!(q.push(10).is_err());
    }

    #[test]
    fn reset_recycles_arena() {
        let mut q = CounterQueue::with_capacity(2);
        q.push_group(&[1u8, 2]).unwrap();
        assert!(q.push(3).is_err());
        q.reset();
        q.push_group(&[4, 5]).unwrap();
        let mut h = PopState::new();
        let mut out = Vec::new();
        assert_eq!(q.pop_group(&mut h, 2, &mut out), 2);
        assert_eq!(out, vec![4, 5]);
    }

    #[test]
    fn pop_handle_drains_claim_across_calls() {
        let q = CounterQueue::with_capacity(64);
        q.push_group(&[1u32, 2, 3, 4, 5, 6]).unwrap();
        let mut h = PopState::new();
        let mut out = Vec::new();
        // Ask for more than we consume per call.
        assert_eq!(q.pop_group(&mut h, 4, &mut out), 4);
        assert_eq!(q.pop_group(&mut h, 4, &mut out), 2);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn contention_counters_track_occupancy_and_conflicts() {
        let q = CounterQueue::with_capacity(64);
        q.push_group(&[1u32, 2, 3, 4, 5]).unwrap();
        let s = q.contention();
        assert_eq!(s.occupancy_hwm, 5);
        assert_eq!(s.cas_retries, 0, "counter queue has no CAS loop");
        assert_eq!(
            s.reservation_conflicts, 0,
            "single-threaded pops never overshoot"
        );
        let mut h = PopState::new();
        let mut out = Vec::new();
        q.pop_group(&mut h, 5, &mut out);
        q.push_group(&[6, 7]).unwrap();
        // High-water mark is sticky even though occupancy dropped.
        assert_eq!(q.contention().occupancy_hwm, 5);
    }

    #[test]
    fn concurrent_push_publishes_everything() {
        let threads = 8;
        let per = 1000;
        let q = Arc::new(CounterQueue::with_capacity(threads * per));
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per / 4 {
                        let base = (t * per + i * 4) as u64;
                        q.push_group(&[base, base + 1, base + 2, base + 3]).unwrap();
                    }
                });
            }
        });
        assert_eq!(q.published(), (threads * per) as u64);
        let mut h = PopState::new();
        let mut out = Vec::new();
        while q.pop_group(&mut h, 128, &mut out) > 0 {}
        assert_eq!(out.len(), threads * per);
        let set: HashSet<u64> = out.iter().copied().collect();
        assert_eq!(set.len(), threads * per, "duplicate or lost items");
    }

    #[test]
    fn concurrent_pop_yields_each_item_once() {
        let n = 20_000u64;
        let q = Arc::new(CounterQueue::with_capacity(n as usize));
        let chunk: Vec<u64> = (0..n).collect();
        for c in chunk.chunks(64) {
            q.push_group(c).unwrap();
        }
        let threads = 8;
        let total = Arc::new(AtomicUsize::new(0));
        let mut all: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                let q = Arc::clone(&q);
                let total = Arc::clone(&total);
                handles.push(s.spawn(move || {
                    let mut h = PopState::new();
                    let mut mine = Vec::new();
                    loop {
                        let got = q.pop_group(&mut h, 33, &mut mine);
                        if got == 0 {
                            // Pre-filled queue: `end` is final, so a zero
                            // return means our claim can never fill again.
                            h.abandon();
                            break;
                        }
                        total.fetch_add(got, Ordering::Relaxed);
                    }
                    mine
                }));
            }
            for hnd in handles {
                all.push(hnd.join().unwrap());
            }
        });
        let mut seen: Vec<u64> = all.into_iter().flatten().collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..n).collect();
        assert_eq!(seen, expect, "every item popped exactly once");
    }

    #[test]
    fn concurrent_push_and_pop_conserves_items() {
        let producers = 4;
        let consumers = 4;
        let per = 5_000usize;
        let q = Arc::new(CounterQueue::with_capacity(producers * per));
        let mut harvested: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|s| {
            for t in 0..producers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per {
                        q.push((t * per + i) as u64).unwrap();
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..consumers {
                let q = Arc::clone(&q);
                handles.push(s.spawn(move || {
                    let mut h = PopState::new();
                    let mut mine: Vec<u64> = Vec::new();
                    let goal = (producers * per) as u64;
                    loop {
                        let got = q.pop_group(&mut h, 17, &mut mine);
                        if got == 0 {
                            // Only stop once every produced item has been
                            // *published* — claims can then never refill.
                            if q.published() == goal {
                                h.abandon();
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                    mine
                }));
            }
            for hnd in handles {
                harvested.push(hnd.join().unwrap());
            }
        });
        let mut seen: Vec<u64> = harvested.into_iter().flatten().collect();
        seen.sort_unstable();
        seen.dedup();
        // No duplicates (dedup is a no-op on unique data) and no losses
        // except items stranded in abandoned claims, which cannot happen
        // here because consumers only stop when the queue is fully drained.
        assert_eq!(seen.len(), producers * per);
    }

    #[test]
    fn publication_never_exposes_unwritten_slots() {
        // Writers push marked values; a reader continuously validates that
        // everything below `end` reads back as a written marker.
        let q = Arc::new(CounterQueue::with_capacity(100_000));
        let writers = 6;
        let per_writer = 10_000;
        std::thread::scope(|s| {
            for _ in 0..writers {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let group = [0xDEAD_BEEFu64; 5];
                    for _ in 0..per_writer / 5 {
                        q.push_group(&group).unwrap();
                    }
                });
            }
            let qv = Arc::clone(&q);
            s.spawn(move || {
                let mut h = PopState::new();
                let mut out = Vec::new();
                let goal = writers * per_writer;
                let mut got = 0;
                while got < goal {
                    let n = qv.pop_group(&mut h, 64, &mut out);
                    got += n;
                    for &v in &out[out.len() - n..] {
                        assert_eq!(v, 0xDEAD_BEEF, "unpublished slot leaked");
                    }
                }
            });
        });
    }
}
