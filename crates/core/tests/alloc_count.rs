//! Steady-state allocation accounting for the runtime's hot paths.
//!
//! The dispatcher used to build a `BTreeMap<usize, Vec<Task>>` per flush
//! and `to_vec()` every chunk it sent — at least two heap allocations per
//! message. With per-PE staging buffers and the pooled payload free-list,
//! the steady state sends and receives without touching the allocator.
//! This test pins that down with a counting global allocator: a relay
//! workload pushing tens of thousands of messages must stay within a small
//! constant allocation budget (warm-up growth of queues, heap, and pool).

use std::alloc::{GlobalAlloc, Layout, System};
// atos-lint: allow(facade_bypass) — the counting allocator is a measurement
// instrument; routing its counter through the facade would make the
// instrument depend on the machinery it is measuring around.
use std::sync::atomic::{AtomicU64, Ordering};

use atos_core::{
    Application, AtosConfig, CommMode, Emitter, NullTracer, Runtime, RuntimeTuning, ShardableApp,
};
use atos_sim::Fabric;
use atos_sim::GpuCostModel;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator; the only addition is
// a Relaxed counter bump, which does not allocate or touch the layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; delegated unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract, same layout, delegated to System.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; delegated unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator (System underneath).
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; delegated unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from this allocator; layout/new_size forwarded.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// A task forwards itself to the next PE until its hop count runs out:
/// every hop is one remote message, so allocation cost per message shows
/// up directly.
struct Relay {
    n_pes: usize,
}

impl Application for Relay {
    type Task = u32;

    fn process(&mut self, pe: usize, task: u32, out: &mut Emitter<u32>) {
        if task > 0 {
            out.push((pe + 1) % self.n_pes, task - 1);
        }
    }

    fn on_receive(&mut self, _pe: usize, task: u32) -> Option<u32> {
        Some(task)
    }

    fn task_edges(&self, _t: &u32) -> u64 {
        1
    }
}

impl ShardableApp for Relay {
    fn fork(&self, _lo: usize, _hi: usize) -> Self {
        Relay { n_pes: self.n_pes }
    }

    fn join(&mut self, _shard: Self, _lo: usize, _hi: usize) {}
}

/// Both scenarios live in one test so the process-global counter is never
/// polluted by a concurrently running sibling test.
#[test]
fn steady_state_send_paths_do_not_allocate_per_task() {
    // Direct (fine-grained) mode: 20k hops = 20k messages. The old
    // dispatcher allocated a BTreeMap node plus a payload vector per
    // message (>= 40k allocations); the pooled path needs only warm-up.
    const HOPS: u32 = 20_000;
    let mut rt = Runtime::new(
        Relay { n_pes: 2 },
        Fabric::daisy(2),
        AtosConfig {
            comm: CommMode::Direct { group: 32 },
            ..AtosConfig::standard_persistent()
        },
    );
    rt.seed(0, [HOPS]);
    let before = alloc_calls();
    let stats = rt.run();
    let during = alloc_calls() - before;
    assert_eq!(stats.total_tasks(), HOPS as u64 + 1);
    assert_eq!(stats.messages, HOPS as u64);
    assert!(
        during < 2_000,
        "direct mode: {during} allocations for {HOPS} messages (expected warm-up only)"
    );

    // Aggregated mode: every hop opens a bundle that the age trigger
    // flushes, so the aggregator flush path (bundle hand-off + payload
    // recycle) runs once per message.
    const AGG_HOPS: u32 = 5_000;
    let mut rt = Runtime::new(
        Relay { n_pes: 2 },
        Fabric::ib_cluster(2),
        AtosConfig::ib_pagerank(),
    );
    rt.seed(0, [AGG_HOPS]);
    let before = alloc_calls();
    let stats = rt.run();
    let during = alloc_calls() - before;
    assert_eq!(stats.total_tasks(), AGG_HOPS as u64 + 1);
    assert_eq!(stats.agg_flushes, stats.messages);
    assert_eq!(stats.agg_flushed_tasks, AGG_HOPS as u64);
    assert!(stats.agg_flushes > 0);
    assert!(
        during < 2_000,
        "aggregated mode: {during} allocations for {} bundles (expected warm-up only)",
        stats.agg_flushes
    );

    // Tracing disabled (`NullTracer`, spelled out explicitly): the
    // instrumentation hooks in step/route/arrive/flush must compile down
    // to nothing — same warm-up-only budget as the untraced baseline.
    let mut rt = Runtime::with_tracer(
        Relay { n_pes: 2 },
        Fabric::daisy(2),
        AtosConfig {
            comm: CommMode::Direct { group: 32 },
            ..AtosConfig::standard_persistent()
        },
        GpuCostModel::v100(),
        RuntimeTuning::default(),
        NullTracer,
    );
    rt.seed(0, [HOPS]);
    let before = alloc_calls();
    let stats = rt.run();
    let during = alloc_calls() - before;
    assert_eq!(stats.messages, HOPS as u64);
    assert!(
        during < 2_000,
        "NullTracer: {during} allocations for {HOPS} messages (disabled tracing must not allocate)"
    );

    // Steady-state engine churn: after warm-up, the timing wheel's
    // schedule→pop cycle recycles arena slots, bucket vectors, and heap
    // storage — zero allocations, exactly (not a budget).
    let mut e: atos_sim::Engine<u64> = atos_sim::Engine::with_capacity(1024);
    for i in 0..512u64 {
        e.schedule_at(i * 173 % 50_000, i);
    }
    // Warm-up: cycle long enough that every bucket, the imminent heap,
    // and the far heap reach their steady capacities. The delta mix keeps
    // events flowing through all three structures (level 0, level 1, far).
    let churn = |e: &mut atos_sim::Engine<u64>, rounds: u64| {
        for _ in 0..rounds {
            let (t, v) = e.pop().unwrap();
            let delta = if v % 3 == 0 {
                (v % 70) * 100_000 // up to 7 ms: level 1 / far heap
            } else {
                v % 7_000 // level 0
            };
            e.schedule_at(t + delta, v);
        }
    };
    churn(&mut e, 20_000);
    let before = alloc_calls();
    churn(&mut e, 50_000);
    let during = alloc_calls() - before;
    assert_eq!(e.pending(), 512);
    assert_eq!(
        during, 0,
        "steady-state engine churn must not allocate (schedule→pop is arena-recycled)"
    );

    // Sharded window-barrier mode: the same 20k-hop relay split across two
    // shards on two real threads. Every hop crosses the shard boundary, so
    // each window runs the full publish → barrier → drain → merge cycle.
    // Vector capacities circulate between the shard outboxes and the
    // exchange-board slots by swap/append, so after warm-up (thread spawn,
    // sub-runtime forks, board and buffer growth) the per-window cost must
    // be allocation-free — a per-hop leak would blow this budget ~20x.
    let mut rt = Runtime::new(
        Relay { n_pes: 2 },
        Fabric::daisy(2),
        AtosConfig {
            comm: CommMode::Direct { group: 32 },
            ..AtosConfig::standard_persistent()
        },
    );
    rt.seed(0, [HOPS]);
    let before = alloc_calls();
    let stats = rt.run_sharded_on(2, 2);
    let during = alloc_calls() - before;
    assert_eq!(stats.messages, HOPS as u64);
    assert!(
        during < 3_000,
        "sharded mode: {during} allocations for {HOPS} cross-shard messages \
         (expected warm-up only; exchange buffers must recycle)"
    );

    // Work stealing: a skewed seed (every task on PE 0) forces PE 1
    // through the full steal path — idle-peer wake, victim scan, group
    // steal — a few hundred times. The steal machinery reuses the step's
    // pop scratch and never builds candidate lists, so the budget stays
    // warm-up-only.
    use atos_core::LoadBalance;
    const SKEW_TASKS: usize = 20_000;
    for lb in [LoadBalance::Steal, LoadBalance::Chunk] {
        let mut rt = Runtime::new(
            Relay { n_pes: 2 },
            Fabric::daisy(2),
            AtosConfig {
                comm: CommMode::Direct { group: 32 },
                ..AtosConfig::standard_persistent()
            }
            .with_lb(lb),
        );
        rt.seed(0, std::iter::repeat_n(0u32, SKEW_TASKS));
        let before = alloc_calls();
        let stats = rt.run();
        let during = alloc_calls() - before;
        assert_eq!(stats.total_tasks(), SKEW_TASKS as u64);
        assert!(
            stats.lb_steals > 0,
            "{:?}: skewed seed must trigger steals",
            lb
        );
        assert_eq!(stats.lb_stolen_tasks, stats.lb_stolen_edges, "unit-degree tasks");
        assert!(
            during < 2_000,
            "{lb:?} mode: {during} allocations across {} steals (expected warm-up only)",
            stats.lb_steals
        );
    }

    // Profiling-layer record paths (exact-zero, see the scenario's doc).
    histogram_record_and_flight_push_scenario();
}

/// The profiling layer's record paths are on the shard-worker hot loop:
/// `Histogram::record` and `FlightRecorder::push` must perform *zero*
/// allocations after construction — not a budget, exactly none. Runs
/// inside the single mega-test (below) because the allocation counter is
/// process-global: a concurrently scheduled sibling test would pollute
/// the exact-zero window.
fn histogram_record_and_flight_push_scenario() {
    use atos_core::{FlightRecorder, WindowRecord};
    use atos_trace::Histogram;

    let mut h = Histogram::new();
    let mut f = FlightRecorder::new(64);
    // Warm-up is construction itself; the record paths have no lazy init.
    let before = alloc_calls();
    for i in 0..100_000u64 {
        // Mixed magnitudes walk the linear region and many octaves.
        h.record(i.wrapping_mul(0x9E37_79B9).rotate_left((i % 31) as u32));
        f.push(WindowRecord {
            window: i,
            t_min: i * 10,
            horizon: i * 10 + 7,
            events: i % 17,
            published: i % 5,
            drained: i % 3,
            barrier_wait_ns: i % 1_000,
        });
    }
    let during = alloc_calls() - before;
    assert_eq!(h.count(), 100_000);
    assert_eq!(f.total(), 100_000);
    assert_eq!(f.len(), 64);
    assert_eq!(
        during, 0,
        "histogram record / flight push allocated {during} times in steady state"
    );
    // Merging into a preallocated histogram is also allocation-free.
    let other = h.clone();
    let before = alloc_calls();
    h.merge(&other);
    assert_eq!(alloc_calls() - before, 0, "Histogram::merge allocated");
    assert_eq!(h.count(), 200_000);
}

/// Extract the names of `#[atos_hot]`-annotated functions from a source
/// file (same shape the `atos-lint` hot-path rule keys on).
fn hot_fns(src: &str) -> Vec<String> {
    let mut hot: Vec<String> = Vec::new();
    let mut pending_hot = false;
    for line in src.lines() {
        let t = line.trim();
        if t == "#[atos_hot]" {
            pending_hot = true;
            continue;
        }
        if t.starts_with("#[") || t.starts_with("//") {
            continue;
        }
        if pending_hot {
            let rest = t.strip_prefix("pub ").unwrap_or(t);
            if let Some(name) = rest.strip_prefix("fn ") {
                hot.push(name.split(['(', '<']).next().unwrap().to_string());
            }
            pending_hot = false;
        }
    }
    hot.sort();
    hot
}

/// Every `#[atos_hot]` function in the runtime and the engine must be
/// exercised by one of the counted scenarios in this file, so the
/// allocation budget actually covers the whole annotated hot path
/// (`atos-lint` checks the annotated functions statically; this test keeps
/// the dynamic guard aligned). Annotating a new function fails this test
/// until a counted scenario exercises it and the maps below record which.
#[test]
fn every_hot_runtime_fn_is_covered_by_a_counted_scenario() {
    const COVERED: &[(&str, &str)] = &[
        ("note_queue_depth", "both relays: depth accounting on every push/pop"),
        ("wake", "both relays: remote arrivals wake the idle peer PE"),
        ("step", "both relays: every scheduling step"),
        ("absorb_local", "both relays: emitter drain after each step"),
        ("dispatch_remote", "both relays: every hop is a remote push"),
        ("flush_bundle", "aggregated relay: age trigger flushes each bundle"),
        ("route", "both relays: fabric routing for every message"),
        ("arrive", "both relays: message delivery at the destination PE"),
        ("stage_arrival", "both relays: every arrival staged (merge check per message)"),
        ("schedule_agg_poll", "aggregated relay: poll armed per open bundle"),
        ("agg_poll", "aggregated relay: age-trigger poll per bundle"),
        ("run_window", "all relays: every execution window drains through it"),
        ("merge_records", "all relays: staged messages merged at every window boundary"),
        ("pick_victim", "steal/chunk relays: victim scan on every empty pop"),
        ("steal_from", "steal/chunk relays: group steal from the skewed PE"),
        ("wake_idle_peers", "steal/chunk relays: backlogged steps wake the idle peer"),
    ];
    const COVERED_ENGINE: &[(&str, &str)] = &[
        ("schedule_at", "engine churn scenario + every relay event"),
        ("pop", "engine churn scenario + both relays' event loops"),
        ("pop_before", "all relays: every window pop is horizon-bounded"),
    ];

    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let runtime_src = std::fs::read_to_string(manifest.join("src/runtime.rs"))
        .expect("read runtime.rs");
    let engine_src = std::fs::read_to_string(manifest.join("../sim/src/engine.rs"))
        .expect("read engine.rs");

    let mut covered: Vec<&str> = COVERED.iter().map(|(n, _)| *n).collect();
    covered.sort();
    assert_eq!(
        hot_fns(&runtime_src),
        covered,
        "the #[atos_hot] set in runtime.rs and the counted-scenario map in \
         this test must stay in sync"
    );

    let mut covered_engine: Vec<&str> = COVERED_ENGINE.iter().map(|(n, _)| *n).collect();
    covered_engine.sort();
    assert_eq!(
        hot_fns(&engine_src),
        covered_engine,
        "the #[atos_hot] set in engine.rs and the counted-scenario map in \
         this test must stay in sync"
    );
}
