//! Property-based tests for the runtime's scheduling data structures.

use proptest::prelude::*;

use atos_core::aggregator::AggBuffer;
use atos_core::config::AGGREGATOR_POLL_NS;
use atos_core::workqueue::WorkQueue;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both disciplines conserve tasks: everything pushed is popped
    /// exactly once, in some order.
    #[test]
    fn workqueues_conserve(
        tasks in proptest::collection::vec((0u32..1000, 0u32..16), 0..300),
        batch in 1usize..32,
    ) {
        for mut q in [WorkQueue::standard(), WorkQueue::priority(1, 1)] {
            for &(id, prio) in &tasks {
                q.push(id, prio);
            }
            prop_assert_eq!(q.len(), tasks.len());
            let mut out = Vec::new();
            while q.pop_batch(batch, &mut out) > 0 {}
            prop_assert!(q.is_empty());
            let mut got = out.clone();
            got.sort_unstable();
            let mut want: Vec<u32> = tasks.iter().map(|&(id, _)| id).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Priority pops are nondecreasing in priority when the queue is
    /// loaded up front (delta-stepping order).
    #[test]
    fn priority_order_nondecreasing(
        tasks in proptest::collection::vec((0u32..100, 0u32..12), 1..200),
        threshold in 0u32..4,
        delta in 1u32..4,
    ) {
        let mut q = WorkQueue::priority(threshold, delta);
        for &(id, prio) in &tasks {
            // Encode the priority in the task so we can check the order.
            q.push(prio * 1000 + id, prio);
        }
        let mut out = Vec::new();
        while q.pop_batch(7, &mut out) > 0 {}
        let prios: Vec<u32> = out.iter().map(|t| t / 1000).collect();
        prop_assert!(prios.windows(2).all(|w| w[0] <= w[1]), "{prios:?}");
    }

    /// The aggregator conserves items and bytes across any push/flush
    /// interleaving, and `should_flush` is exact at the byte threshold.
    #[test]
    fn aggregator_conserves(
        pushes in proptest::collection::vec(1u64..64, 1..100),
        batch in 1u64..4096,
    ) {
        let mut buf = AggBuffer::new(0);
        let mut now = 0u64;
        let mut pushed_items = 0u64;
        let mut flushed_items = 0u64;
        let mut pending_bytes = 0u64;
        for (i, &bytes) in pushes.iter().enumerate() {
            buf.push(i as u64, bytes, now);
            pushed_items += 1;
            pending_bytes += bytes;
            prop_assert_eq!(buf.bytes(), pending_bytes);
            prop_assert_eq!(buf.should_flush(now, batch, u32::MAX), pending_bytes >= batch);
            if buf.should_flush(now, batch, u32::MAX) {
                let (items, b) = buf.flush();
                prop_assert_eq!(b, pending_bytes);
                flushed_items += items.len() as u64;
                pending_bytes = 0;
            }
            now += 10;
        }
        let (items, b) = buf.flush();
        prop_assert_eq!(b, pending_bytes);
        flushed_items += items.len() as u64;
        prop_assert_eq!(flushed_items, pushed_items);
    }

    /// The age deadline is exactly first-push time + WAIT_TIME polls.
    #[test]
    fn aggregator_age_deadline(t0 in 0u64..1_000_000, wait in 0u32..100) {
        let mut buf = AggBuffer::new(1);
        prop_assert_eq!(buf.age_deadline(wait), None);
        buf.push(1u32, 8, t0);
        let deadline = t0 + wait as u64 * AGGREGATOR_POLL_NS;
        prop_assert_eq!(buf.age_deadline(wait), Some(deadline));
        prop_assert!(!buf.should_flush(deadline.saturating_sub(1), u64::MAX, wait) || wait == 0);
        prop_assert!(buf.should_flush(deadline, u64::MAX, wait));
    }
}
