// lint:skip-file — this module exists to carry a deliberately seeded bug.
//! Mutation twin of [`crate::sharded::SpinBarrier`]: the generation flip
//! weakened to `Relaxed` in both directions.
//!
//! The real barrier's soundness rests on exactly one edge: the last
//! arrival's `Release` store of the new generation, paired with every
//! waiter's `Acquire` load. Weaken that pair and the barrier still
//! *arrives* correctly (the `fetch_add` keeps counting), but it no longer
//! publishes the pre-barrier cell writes — so an [`crate::ExchangeBoard`]
//! drain races with the publish it was supposed to be ordered after. The
//! `atos-check` exchange-model suite asserts the checker reports that
//! race with a deterministic, replayable schedule, while the unmutated
//! barrier passes the identical driver. Compiled only under
//! `--cfg atos_check`; never part of a production build.

use atos_queue::sync::{hint, thread, AtomicUsize, Ordering};

/// Spin budget mirroring the production barrier.
const SPIN_LIMIT: u32 = 64;

/// [`crate::sharded::SpinBarrier`] with the generation store/load pair
/// weakened `Release`/`Acquire` → `Relaxed`/`Relaxed`.
pub struct RelaxedBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    n: usize,
}

impl RelaxedBarrier {
    /// Barrier for `n >= 1` parties (mirrors `SpinBarrier::new`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one party");
        RelaxedBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            n,
        }
    }

    /// `SpinBarrier::wait` with the happens-before edge removed.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Relaxed);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            // BUG (mutation): Release → Relaxed. The generation still
            // advances, but no longer publishes pre-barrier writes.
            self.generation.store(gen + 1, Ordering::Relaxed);
            return;
        }
        let mut spins = 0u32;
        // BUG (mutation): Acquire → Relaxed on the waiters' side too.
        while self.generation.load(Ordering::Relaxed) == gen {
            if spins < SPIN_LIMIT {
                spins += 1;
                hint::spin_loop();
            } else {
                thread::yield_now();
            }
        }
    }
}
