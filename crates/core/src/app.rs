//! The application interface: tasks, their processing function, and their
//! cost/priority annotations.
//!
//! This is the Rust rendering of the paper's framework API (Listing 4):
//! the application provides `f1` (process a popped task — [`Application::
//! process`]) and `f2` (what to do on pop failure — [`Application::
//! on_idle`]); the runtime owns popping, pushing, and communication.

use crate::emitter::Emitter;

/// Owner-computes witness: debug-assert that vertex `$v`'s owner under
/// `$partition` is the executing PE `$pe`.
///
/// This is the canonical guard for authoritative writes in
/// [`Application::on_receive`]: a task arriving from a remote PE may
/// only mutate owner-indexed state at indices the receiving PE owns (the
/// paper's one-sided `atomicMin` lands in the *owner's* memory). The
/// `shard-escape` lint recognizes this macro — or a raw
/// `debug_assert_eq!(partition.owner(v), pe)` — as the dominating owner
/// proof; an unwitnessed write to an `owner(..)`-classified array is a
/// finding.
#[macro_export]
macro_rules! assert_owner {
    ($partition:expr, $v:expr, $pe:expr) => {
        debug_assert_eq!(
            ($partition).owner($v),
            $pe,
            "owner-computes violation: vertex not owned by this PE"
        )
    };
}

/// What a PE's idle handler did (the `f2` path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleOutcome {
    /// Nothing to add; the PE may go idle.
    Quiescent,
    /// New work was emitted; keep scheduling.
    Refilled,
}

/// An Atos application: defines the task type, how tasks are processed,
/// and the annotations (cost, priority, size) the runtime needs.
pub trait Application {
    /// The unit of work flowing through the distributed queues. `Copy`
    /// mirrors the paper's queues of plain vertex ids / id+payload tuples.
    type Task: Copy + Send + std::fmt::Debug;

    /// Process one popped task on PE `pe` (the paper's `f1`), emitting new
    /// tasks. Runs inside the simulated kernel; mutating real application
    /// state here is what makes runs checkable.
    fn process(&mut self, pe: usize, task: Self::Task, out: &mut Emitter<Self::Task>);

    /// Apply a task arriving from a remote PE *before* it is enqueued:
    /// this is where one-sided remote updates (the paper's RDMA
    /// `atomicMin`) take effect. Return `Some(task)` to enqueue work at
    /// the destination, `None` to drop it (e.g. the remote atomic did not
    /// improve the value, or a PageRank contribution did not cross the
    /// threshold).
    fn on_receive(&mut self, pe: usize, task: Self::Task) -> Option<Self::Task>;

    /// Pop-failure handler (the paper's `f2`, default noop). May emit new
    /// work (e.g. PageRank's rescan for unconverged vertices).
    fn on_idle(&mut self, _pe: usize, _out: &mut Emitter<Self::Task>) -> IdleOutcome {
        IdleOutcome::Quiescent
    }

    /// Priority bucket of a task (lower = sooner). Only consulted by
    /// priority-queue configurations.
    fn priority(&self, _task: &Self::Task) -> u32 {
        0
    }

    /// Edges (cost-model work units) this task will expand.
    fn task_edges(&self, task: &Self::Task) -> u64;

    /// Serialized size of one task on the wire, bytes.
    fn task_bytes(&self) -> u64 {
        8
    }

    /// Whether the computation's global state has converged (diagnostic;
    /// termination itself is queue emptiness).
    fn converged(&self) -> bool {
        true
    }
}

/// An application whose state can be forked across shards and joined back
/// — the contract for the parallel window-barrier runtime
/// (`Runtime::run_sharded`).
///
/// A fork carries everything the shard needs to process PEs `lo..hi`:
/// typically full-size state arrays where entries owned by other shards
/// are read-only stale mirrors. For the fork/join round trip to be exact
/// (sharded runs must be byte-identical to sequential ones), processing a
/// task on PE `p` may mutate only state that `join` adopts from `p`'s
/// shard — PE-owned entries plus send-side bookkeeping that never crosses
/// the shard boundary.
pub trait ShardableApp: Application + Send {
    /// Clone the state one shard needs to process PEs `lo..hi`.
    fn fork(&self, lo: usize, hi: usize) -> Self;

    /// Fold a finished shard back in, adopting every result owned by PEs
    /// `lo..hi` (the same range the shard was forked for).
    fn join(&mut self, shard: Self, lo: usize, hi: usize);
}
