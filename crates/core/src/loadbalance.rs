//! Programmable frontier→PE load balancing (ROADMAP item 3; DESIGN.md §10).
//!
//! The paper's scheduling loop hard-codes *owner-computes*: every task is
//! processed by the PE that owns its vertex, so a skewed frontier leaves
//! some PEs idle while the hub owner grinds (the `atos-profile` "skewed"
//! verdict). gunrock-loops argues the fix is to decouple *load balancing*
//! from *work processing* behind a programmable interface; this module is
//! that interface for the simulated runtime.
//!
//! A [`LoadBalancer`] decides, at the moment a PE pops an empty queue,
//! whether and how it may *pull* work from a busier in-shard peer. The
//! pull happens at pop time — queues never hold foreign tasks, and every
//! stolen task is still **processed under the victim's identity**
//! (`process(victim, task)`), so owner-computes state, sender-side
//! mirrors, and the shard-escape discipline are untouched. Only the
//! *busy time* of the work moves to the thief, which is exactly the
//! hardware analogy: a stolen `pop_group` executes on the thief's SMs
//! while the data it touches stays where it lives.
//!
//! Four disciplines ship (selected via [`LoadBalance`] on
//! `AtosConfig::lb` / `--load-balance`):
//!
//! * [`LoadBalance::Owner`] — the paper's static owner-computes; never
//!   steals. Byte-identical to the pre-trait runtime at every shard
//!   count.
//! * [`LoadBalance::Steal`] — work stealing: an idle PE pulls up to one
//!   group (the queue substrate's `pop_group` reservation width, = the
//!   `CommMode::Direct` coalescing group of 32) from the longest
//!   in-shard queue.
//! * [`LoadBalance::Chunk`] — chunked/merge-path partitioning for
//!   power-law skew: victims are ranked by *pending edge count* (the
//!   merge-path diagonal), and a steal pulls tasks until half the
//!   victim's pending edges move, so a hub vertex's adjacency work
//!   splits by edges rather than by vertex count.
//! * [`LoadBalance::Priority`] — priority-aware scheduling: no stealing;
//!   instead the runtime normalizes FIFO queues to priority buckets
//!   (threshold 1, delta 1) so applications that expose a bucket
//!   priority — delta-stepping SSSP's light/heavy split — run in
//!   near-priority order.
//!
//! Steals only move work *within* an engine shard, so each shard's event
//! order stays sequential and the sharded runtime's conservative-PDES
//! determinism is preserved: for a fixed `(config, K)` every run is
//! bit-identical, and `Owner` remains byte-identical across all `K`.

/// Steal granularity: tasks one steal may claim. Mirrors the queue
/// substrate's group reservation width (`pop_group`) and the NVLink
/// direct-comm coalescing group — one warp's worth of tasks is the unit
/// that can be claimed with a single counter reservation, so it is the
/// safe steal quantum.
pub const STEAL_GRAIN: usize = 32;

/// Load-balance discipline selector (the `--load-balance` flag; stored in
/// `AtosConfig::lb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LoadBalance {
    /// Static owner-computes (the paper's scheduling; the default).
    Owner,
    /// Cross-PE work stealing at group granularity.
    Steal,
    /// Edge-count-aware chunked stealing (merge-path style).
    Chunk,
    /// Priority-aware scheduling (bucketed worklists, no stealing).
    Priority,
}

impl LoadBalance {
    /// All disciplines, in reporting order.
    pub const ALL: [LoadBalance; 4] = [
        LoadBalance::Owner,
        LoadBalance::Steal,
        LoadBalance::Chunk,
        LoadBalance::Priority,
    ];

    /// Stable lowercase name (flag value, metric key fragment).
    pub const fn name(self) -> &'static str {
        match self {
            LoadBalance::Owner => "owner",
            LoadBalance::Steal => "steal",
            LoadBalance::Chunk => "chunk",
            LoadBalance::Priority => "priority",
        }
    }

    /// Stable numeric code recorded in `RunStats::lb_discipline` (metric
    /// `lb.discipline`), so profiles can name the active balancer.
    pub const fn code(self) -> u8 {
        match self {
            LoadBalance::Owner => 0,
            LoadBalance::Steal => 1,
            LoadBalance::Chunk => 2,
            LoadBalance::Priority => 3,
        }
    }

    /// Parse a `--load-balance` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        LoadBalance::ALL.into_iter().find(|lb| lb.name() == s)
    }

    /// Inverse of [`LoadBalance::code`] (profile rendering).
    pub fn from_code(code: u8) -> Option<Self> {
        LoadBalance::ALL.into_iter().find(|lb| lb.code() == code)
    }
}

/// One frontier→PE work-assignment discipline.
///
/// The runtime consults the balancer from a PE's step path, so every
/// method must be allocation-free and O(1); the victim scan itself is
/// done by the runtime (a linear pass over the shard's PEs) using
/// [`victim_score`](LoadBalancer::victim_score) so no candidate list is
/// ever materialized.
pub trait LoadBalancer: Send {
    /// Stable lowercase discipline name.
    fn name(&self) -> &'static str;

    /// Stable numeric code (see [`LoadBalance::code`]).
    fn code(&self) -> u8;

    /// Maximum tasks one steal may pull; `0` disables stealing entirely
    /// (the runtime then skips the victim scan).
    fn steal_grain(&self) -> usize {
        0
    }

    /// Whether the runtime must maintain per-PE pending-edge estimates
    /// (needed by edge-aware victim ranking; costs one `task_edges` call
    /// per push).
    fn tracks_edges(&self) -> bool {
        false
    }

    /// Whether a PE that finishes a step with a still-deep queue should
    /// wake idle in-shard peers so they get a chance to steal.
    fn wakes_idle_peers(&self) -> bool {
        false
    }

    /// Score a candidate victim; the runtime steals from the
    /// highest-scoring PE (ties to the lowest index), and a score of `0`
    /// marks the candidate not stealable.
    fn victim_score(&self, _queue_len: usize, _pending_edges: u64) -> u64 {
        0
    }

    /// How many tasks to pull from the chosen victim (already capped by
    /// [`steal_grain`](LoadBalancer::steal_grain) by the runtime).
    fn steal_count(&self, _victim_len: usize) -> usize {
        0
    }

    /// Edge budget bounding one steal: the runtime stops pulling once the
    /// stolen tasks' `task_edges` reach this. `u64::MAX` = unbounded
    /// (task-count-bounded stealing).
    fn edge_budget(&self, _victim_pending_edges: u64) -> u64 {
        u64::MAX
    }
}

/// The paper's static owner-computes assignment: work never moves.
#[derive(Debug, Default, Clone, Copy)]
pub struct OwnerComputes;

impl LoadBalancer for OwnerComputes {
    fn name(&self) -> &'static str {
        LoadBalance::Owner.name()
    }

    fn code(&self) -> u8 {
        LoadBalance::Owner.code()
    }
}

/// Group-granularity work stealing: idle PEs pull up to [`STEAL_GRAIN`]
/// tasks from the longest in-shard queue, leaving the victim at least
/// half its backlog.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkStealing;

impl LoadBalancer for WorkStealing {
    fn name(&self) -> &'static str {
        LoadBalance::Steal.name()
    }

    fn code(&self) -> u8 {
        LoadBalance::Steal.code()
    }

    fn steal_grain(&self) -> usize {
        STEAL_GRAIN
    }

    fn wakes_idle_peers(&self) -> bool {
        true
    }

    fn victim_score(&self, queue_len: usize, _pending_edges: u64) -> u64 {
        // A victim must keep at least one task, so a queue of one is not
        // worth a reservation.
        if queue_len >= 2 {
            queue_len as u64
        } else {
            0
        }
    }

    fn steal_count(&self, victim_len: usize) -> usize {
        victim_len / 2
    }
}

/// Merge-path-style chunked stealing: victims are ranked by pending
/// *edge* count and a steal moves roughly half the victim's pending
/// edges, so power-law hubs split by adjacency size instead of vertex
/// count.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChunkedFrontier;

impl LoadBalancer for ChunkedFrontier {
    fn name(&self) -> &'static str {
        LoadBalance::Chunk.name()
    }

    fn code(&self) -> u8 {
        LoadBalance::Chunk.code()
    }

    fn steal_grain(&self) -> usize {
        STEAL_GRAIN
    }

    fn tracks_edges(&self) -> bool {
        true
    }

    fn wakes_idle_peers(&self) -> bool {
        true
    }

    fn victim_score(&self, queue_len: usize, pending_edges: u64) -> u64 {
        if queue_len >= 2 {
            // Rank by edges; `max(1)` keeps an edge-free but deep queue
            // stealable (zero-degree frontiers still cost task overhead).
            pending_edges.max(1)
        } else {
            0
        }
    }

    fn steal_count(&self, victim_len: usize) -> usize {
        // Edge budget is the binding constraint; the count bound merely
        // keeps zero-edge tasks from draining the whole queue.
        victim_len / 2
    }

    fn edge_budget(&self, victim_pending_edges: u64) -> u64 {
        (victim_pending_edges / 2).max(1)
    }
}

/// Priority-aware scheduling: no work movement; the runtime instead
/// normalizes FIFO queues to priority buckets (threshold 1, delta 1) so
/// the application's `priority()` — e.g. delta-stepping SSSP's bucket
/// index — orders processing.
#[derive(Debug, Default, Clone, Copy)]
pub struct PriorityAware;

impl LoadBalancer for PriorityAware {
    fn name(&self) -> &'static str {
        LoadBalance::Priority.name()
    }

    fn code(&self) -> u8 {
        LoadBalance::Priority.code()
    }
}

/// Construct the balancer for a discipline selector.
pub fn make_balancer(lb: LoadBalance) -> Box<dyn LoadBalancer> {
    match lb {
        LoadBalance::Owner => Box::new(OwnerComputes),
        LoadBalance::Steal => Box::new(WorkStealing),
        LoadBalance::Chunk => Box::new(ChunkedFrontier),
        LoadBalance::Priority => Box::new(PriorityAware),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_codes_round_trip() {
        for lb in LoadBalance::ALL {
            assert_eq!(LoadBalance::parse(lb.name()), Some(lb));
            assert_eq!(LoadBalance::from_code(lb.code()), Some(lb));
            let b = make_balancer(lb);
            assert_eq!(b.name(), lb.name());
            assert_eq!(b.code(), lb.code());
        }
        assert_eq!(LoadBalance::parse("merge-path"), None);
        assert_eq!(LoadBalance::from_code(99), None);
    }

    #[test]
    fn owner_and_priority_never_steal() {
        for lb in [LoadBalance::Owner, LoadBalance::Priority] {
            let b = make_balancer(lb);
            assert_eq!(b.steal_grain(), 0);
            assert_eq!(b.victim_score(1_000, 1_000_000), 0);
            assert_eq!(b.steal_count(1_000), 0);
            assert!(!b.wakes_idle_peers());
            assert!(!b.tracks_edges());
        }
    }

    #[test]
    fn stealing_ranks_by_queue_length_and_leaves_half() {
        let b = WorkStealing;
        assert_eq!(b.victim_score(0, 0), 0);
        assert_eq!(b.victim_score(1, 0), 0, "victim keeps its last task");
        assert_eq!(b.victim_score(10, 0), 10);
        assert!(b.victim_score(64, 0) > b.victim_score(8, 0));
        assert_eq!(b.steal_count(10), 5);
        assert_eq!(b.edge_budget(123), u64::MAX, "count-bounded, not edge-bounded");
        assert!(b.wakes_idle_peers());
        assert_eq!(b.steal_grain(), STEAL_GRAIN);
    }

    #[test]
    fn chunking_ranks_by_edges_and_budgets_half() {
        let b = ChunkedFrontier;
        assert!(b.tracks_edges());
        // A short queue with a hub beats a long queue of leaves.
        assert!(b.victim_score(2, 10_000) > b.victim_score(100, 100));
        assert_eq!(b.victim_score(1, 10_000), 0, "victim keeps its last task");
        assert_eq!(b.edge_budget(10_000), 5_000);
        assert_eq!(b.edge_budget(0), 1, "zero-edge steals still move one task");
    }
}
